"""Extension experiment: multi-iteration customization.

Paper §V-B: "Both ethmac and tinyRocket exhibit timing violations, as only
a single iteration was executed. However, logic synthesis is inherently an
iterative process... Additional iterations are required to further resolve
timing issues."  This bench runs the iterations the paper did not and
shows the residual violations close.
"""

import pytest

from repro.core import ChatLS
from repro.designs.opencores import get_benchmark
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script


@pytest.fixture(scope="module")
def histories(expert_database):
    chatls = ChatLS(expert_database)
    out = {}
    for name in ("ethmac", "tinyRocket"):
        bench = get_benchmark(name)
        out[name] = chatls.customize_iteratively(
            bench.verilog, bench.name, baseline_script(bench),
            TIMING_REQUIREMENT, rounds=3, k=2,
            top=bench.top, clock_period=bench.clock_period,
        )
    return out


class TestIterativeClosure:
    def test_round_one_still_violated(self, histories):
        for name, history in histories.items():
            assert history[0].qor.wns < 0, name

    def test_later_rounds_improve(self, histories):
        for name, history in histories.items():
            assert len(history) >= 2, name
            assert history[-1].qor.wns > history[0].qor.wns, name

    def test_timing_eventually_closes(self, histories):
        for name, history in histories.items():
            assert history[-1].qor.wns == 0.0, (
                name,
                [h.qor.wns if h.qor else None for h in history],
            )

    def test_stops_early_once_met(self, histories):
        for name, history in histories.items():
            met = [h.qor.wns >= 0 for h in history if h.qor]
            if any(met):
                assert met[-1]  # last round is the one that closed

    def test_monotone_non_regressing(self, histories):
        for name, history in histories.items():
            wns = [h.qor.wns for h in history if h.qor]
            # The carried-forward script never regresses between rounds.
            for earlier, later in zip(wns, wns[1:]):
                assert later >= earlier - 1e-9, name

    def test_print_progression(self, histories):
        for name, history in histories.items():
            wns = [round(h.qor.wns, 3) if h.qor else None for h in history]
            print(f"\n{name}: WNS per iteration: {wns}")
