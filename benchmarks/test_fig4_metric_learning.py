"""Fig. 4: metric-learning embedding evolution.

Before training, embeddings of circuit-design families are scattered;
after training, same-family embeddings converge and cross-family ones
diverge into distinct clusters (paper Fig. 4 a/b).
"""

import pytest

from repro.eval.harness import run_fig4_metric_learning


@pytest.fixture(scope="module")
def fig4():
    return run_fig4_metric_learning(variants_per_family=3, epochs=40)


class TestFig4Shape:
    def test_training_separates_clusters(self, fig4):
        assert fig4.after["ratio"] < fig4.before["ratio"]

    def test_final_clusters_distinct(self, fig4):
        # Intra-cluster distances well below inter-cluster after training.
        assert fig4.after["separated"]
        assert fig4.after["ratio"] < 0.5

    def test_loss_decreases(self, fig4):
        early = sum(fig4.losses[:5]) / 5
        late = sum(fig4.losses[-5:]) / 5
        assert late <= early

    def test_render(self, fig4):
        text = fig4.render()
        assert "before" in text and "after" in text
        print("\n" + text)


class TestMultiSimilarityVariant:
    def test_ms_loss_also_separates(self):
        result = run_fig4_metric_learning(
            variants_per_family=2, epochs=25, loss="multi_similarity"
        )
        assert result.after["ratio"] <= result.before["ratio"] + 0.05


def test_benchmark_training_epoch(benchmark):
    """pytest-benchmark target: fig-4 style training, small setup."""
    result = benchmark.pedantic(
        lambda: run_fig4_metric_learning(variants_per_family=2, epochs=5),
        iterations=1,
        rounds=1,
    )
    assert result.losses
