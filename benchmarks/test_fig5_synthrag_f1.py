"""Fig. 5: SynthRAG retrieval performance (F1).

Held-out Chipyard-like variants query the expert database; relevance is
same-family membership.  Asserts the paper's finding that SynthRAG
"successfully retrieved relevant designs and modules".
"""

import pytest

from repro.eval.harness import run_fig5_synthrag


@pytest.fixture(scope="module")
def fig5(trained_database):
    return run_fig5_synthrag(database=trained_database)


class TestFig5Shape:
    def test_design_retrieval_perfect_at_k1(self, fig5):
        assert fig5.f1("design_reranked", 1) >= 0.9

    def test_design_retrieval_high_at_k2(self, fig5):
        assert fig5.f1("design_reranked", 2) >= 0.8

    def test_module_retrieval_high(self, fig5):
        assert fig5.f1("module_reranked", 1) >= 0.8

    def test_manual_retrieval_high(self, fig5):
        assert fig5.f1("manual", 1) >= 0.9

    def test_reranking_preserves_relevance(self, fig5):
        """Eq. 5 reranking must not sacrifice F1 vs pure similarity."""
        for k in (1, 2):
            assert (
                fig5.f1("design_reranked", k)
                >= fig5.f1("design_similarity_only", k) - 0.05
            )

    def test_render(self, fig5):
        text = fig5.render()
        assert "design_reranked" in text
        print("\n" + text)


def test_benchmark_retrieval_latency(benchmark, trained_database):
    """pytest-benchmark target: one design-embedding retrieval."""
    import numpy as np

    from repro.rag import EmbeddingRetriever

    retriever = EmbeddingRetriever(trained_database)
    rng = np.random.default_rng(0)
    query = rng.normal(size=trained_database.encoder.embedding_dim)

    hits = benchmark(lambda: retriever.retrieve_designs(query, k=3))
    assert len(hits) == 3
