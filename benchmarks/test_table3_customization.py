"""Table III: Pass@5 script-customization comparison.

GPT-4o (simulated) vs Claude 3.5 (simulated) vs ChatLS on the seven
designs.  Shape assertions follow the paper's findings:

* every model improves timing relative to the Table IV baseline;
* ChatLS delivers the best (or tied-best) WNS on every design;
* aes is fully fixed by ChatLS;
* ethmac and tinyRocket stay violated after the single iteration, but
  ChatLS leaves the smallest violation;
* on timing-met designs ChatLS trades slack for area.
"""

import pytest

from repro.core import BaselineRunner, ChatLS
from repro.designs.opencores import benchmark_names, get_benchmark
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script
from repro.llm import claude35, gpt4o


@pytest.fixture(scope="module")
def table3(expert_database, table4):
    """Run the full comparison once; reuse across assertions."""
    runners = {
        "GPT-4o": BaselineRunner(gpt4o()),
        "Claude-3.5": BaselineRunner(claude35()),
    }
    chatls = ChatLS(expert_database)
    results = {name: {} for name in ("GPT-4o", "Claude-3.5", "ChatLS")}
    for design in benchmark_names():
        bench = get_benchmark(design)
        script = baseline_script(bench)
        report = table4.reports[design]
        for model, runner in runners.items():
            run = runner.run_pass_at_k(
                bench.verilog, bench.name, script, TIMING_REQUIREMENT,
                k=5, tool_report=report, top=bench.top,
            )
            results[model][design] = run.qor
        run = chatls.customize_pass_at_k(
            bench.verilog, bench.name, script, TIMING_REQUIREMENT,
            k=5, tool_report=report, top=bench.top,
            clock_period=bench.clock_period,
        )
        results["ChatLS"][design] = run.qor
    return results


class TestTable3Shape:
    def test_all_models_produce_executable_best(self, table3):
        for model, rows in table3.items():
            for design, qor in rows.items():
                assert qor is not None, f"{model} failed all 5 samples on {design}"

    def test_every_model_improves_or_matches_baseline(self, table3, table4):
        for model, rows in table3.items():
            for design, qor in rows.items():
                base = table4.rows[design]
                assert qor.wns >= base.wns - 1e-6, (model, design)

    def test_chatls_best_wns_everywhere(self, table3):
        for design in benchmark_names():
            chatls_wns = table3["ChatLS"][design].wns
            for model in ("GPT-4o", "Claude-3.5"):
                assert chatls_wns >= table3[model][design].wns - 1e-6, (
                    design,
                    model,
                )

    def test_chatls_strictly_best_somewhere(self, table3):
        strictly_better = 0
        for design in benchmark_names():
            chatls = table3["ChatLS"][design]
            if all(
                chatls.wns > table3[m][design].wns + 1e-6
                or (
                    chatls.wns == pytest.approx(table3[m][design].wns)
                    and chatls.tns > table3[m][design].tns + 1e-6
                )
                for m in ("GPT-4o", "Claude-3.5")
            ):
                strictly_better += 1
        assert strictly_better >= 1

    def test_aes_fixed_by_chatls(self, table3):
        assert table3["ChatLS"]["aes"].wns == 0.0
        assert table3["ChatLS"]["aes"].tns == 0.0

    def test_jpeg_fixed_by_chatls(self, table3):
        # Paper: every model closes jpeg; at minimum ChatLS must.
        assert table3["ChatLS"]["jpeg"].wns == 0.0

    def test_ethmac_remains_violated(self, table3):
        # One iteration is not enough for ethmac (paper §V-B discussion).
        for model in table3:
            assert table3[model]["ethmac"].wns < 0, model

    def test_tinyrocket_chatls_small_residual(self, table3, table4):
        chatls = table3["ChatLS"]["tinyRocket"]
        base = table4.rows["tinyRocket"]
        assert chatls.wns < 0  # still violated after one iteration
        assert chatls.wns > base.wns * 0.5  # but much improved

    def test_met_designs_stay_met(self, table3):
        for model in table3:
            for design in ("riscv32i", "swerv"):
                assert table3[model][design].wns == 0.0, (model, design)

    def test_chatls_trades_slack_for_area_on_met_designs(self, table3, table4):
        for design in ("riscv32i", "swerv"):
            assert (
                table3["ChatLS"][design].area <= table4.rows[design].area + 1e-6
            ), design

    def test_render_table(self, table3, table4):
        from repro.eval.harness import Table3Result

        result = Table3Result(baseline=table4.rows, models=table3)
        text = result.render()
        assert "ChatLS" in text
        print("\n" + text)


def test_benchmark_single_customization(benchmark, expert_database, table4):
    """pytest-benchmark target: one ChatLS customization (tinyRocket)."""
    bench = get_benchmark("tinyRocket")
    chatls = ChatLS(expert_database)

    def run():
        return chatls.customize_and_evaluate(
            bench.verilog, bench.name, baseline_script(bench),
            TIMING_REQUIREMENT, tool_report=table4.reports["tinyRocket"],
            top=bench.top, clock_period=bench.clock_period, seed=0,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.executable
