"""Table II: the expert design database over the component families.

Builds the database and asserts the paper's category structure plus the
fact that different families genuinely prefer different strategies.
"""

import pytest

from repro.designs.chipyard import FAMILIES
from repro.designs.database import STRATEGIES
from repro.eval.tables import render_table


class TestTable2Shape:
    def test_all_families_present(self, expert_database):
        assert set(expert_database.families()) == set(FAMILIES)

    def test_categories_match_paper(self, expert_database):
        rows = expert_database.table2()
        categories = {r["category"] for r in rows}
        assert categories == {
            "Processor Core",
            "Machine Learning Accelerator",
            "Vector Arithmetic",
            "Signal Processing",
            "Cryptographic Arithmetic",
        }

    def test_processor_category_has_two_components(self, expert_database):
        rows = {r["category"]: r["components"] for r in expert_database.table2()}
        assert rows["Processor Core"] == ["rocket", "sodor"]
        assert rows["Machine Learning Accelerator"] == ["gemmini", "nvdla"]

    def test_every_entry_has_qor_and_expert_script(self, expert_database):
        for entry in expert_database.entries.values():
            assert entry.qor, entry.design.name
            assert "read_verilog" in entry.expert_script
            assert entry.best_strategy in STRATEGIES

    def test_strategy_choice_varies_across_designs(self, expert_database):
        winners = {e.best_strategy for e in expert_database.entries.values()}
        assert len(winners) >= 2  # not one-size-fits-all

    def test_embeddings_normalized(self, expert_database):
        import numpy as np

        for entry in expert_database.entries.values():
            assert np.linalg.norm(entry.embedding) == pytest.approx(1.0, abs=1e-6)

    def test_render_table2(self, expert_database):
        rows = [
            [r["category"], ", ".join(r["components"])]
            for r in expert_database.table2()
        ]
        text = render_table(
            ["Category", "Components"],
            rows,
            title="TABLE II: Overview of Hardware Designs in the Database",
        )
        print("\n" + text)
        assert "Processor Core" in text


def test_benchmark_database_entry(benchmark):
    """pytest-benchmark target: adding one design to a fresh database."""
    from repro.designs.chipyard import generate_family_variant
    from repro.designs.database import ExpertDatabase
    from repro.mentor import CircuitEncoder

    design = generate_family_variant("simd", 9)

    def add():
        db = ExpertDatabase(CircuitEncoder())
        return db.add_design(design, strategies=["baseline_compile"])

    entry = benchmark.pedantic(add, iterations=1, rounds=1)
    assert entry.qor
