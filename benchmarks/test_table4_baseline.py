"""Table IV: baseline QoR of the seven evaluation designs.

Regenerates the paper's baseline table (adapted OpenROAD scripts through
the synthesis engine) and asserts its qualitative shape: which designs
violate timing, which meet it, and the relative severity ordering.
"""

import pytest

from repro.designs.opencores import benchmark_names, get_benchmark
from repro.eval.harness import baseline_script, run_table4_baseline
from repro.synth import DCShell


class TestTable4Shape:
    def test_renders_all_designs(self, table4):
        text = table4.render()
        for name in benchmark_names():
            assert name in text
        print("\n" + text)

    def test_violated_set_matches_paper(self, table4):
        # Paper Table IV: aes, dynamic_node, ethmac, jpeg, tinyRocket < 0.
        for name in ("aes", "dynamic_node", "ethmac", "jpeg", "tinyRocket"):
            assert table4.rows[name].wns < 0, name

    def test_met_set_matches_paper(self, table4):
        # Paper Table IV: riscv32i and swerv meet timing with margin.
        for name in ("riscv32i", "swerv"):
            assert table4.rows[name].wns == 0.0
            assert table4.rows[name].cps > 0.3

    def test_ethmac_and_tinyrocket_worst_tns(self, table4):
        # These two remain violated even after customization in the paper;
        # their baselines carry the deepest structural problems.
        tns = {n: q.tns for n, q in table4.rows.items()}
        assert tns["ethmac"] == min(tns.values())

    def test_wns_equals_cps_when_violated(self, table4):
        for name, qor in table4.rows.items():
            if qor.wns < 0:
                assert qor.wns == pytest.approx(qor.cps)

    def test_area_ordering(self, table4):
        areas = {n: q.area for n, q in table4.rows.items()}
        assert areas["swerv"] > areas["riscv32i"]
        assert areas["swerv"] > areas["tinyRocket"]


def test_benchmark_baseline_synthesis_speed(benchmark):
    """pytest-benchmark target: one baseline synthesis (aes)."""
    bench = get_benchmark("aes")

    def run():
        shell = DCShell()
        shell.add_design(bench.name, bench.verilog, top=bench.top)
        result = shell.run_script(baseline_script(bench))
        assert result.success
        return result.qor

    qor = benchmark(run)
    assert qor.area > 0
