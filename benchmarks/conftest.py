"""Shared fixtures for the benchmark suite.

The expert database and Table IV baselines are expensive; build them once
per session.
"""

from __future__ import annotations

import pytest

from repro.designs.database import build_default_database
from repro.eval.harness import _trained_database, run_table4_baseline


@pytest.fixture(scope="session")
def expert_database():
    """Small expert database (one variant per family, three strategies)."""
    return build_default_database(
        variants_per_family=1,
        strategies=[
            "baseline_compile",
            "high_effort",
            "ultra_flatten",
            "ultra_retime",
            "fanout_buffered",
            "area_recovery",
        ],
    )


@pytest.fixture(scope="session")
def trained_database():
    """Database with a metric-learning-trained encoder (Fig. 5 setup)."""
    return _trained_database(variants_per_family=2)


@pytest.fixture(scope="session")
def table4():
    """Table IV baseline QoR for all seven designs."""
    return run_table4_baseline()


def pytest_sessionfinish(session, exitstatus):
    """With REPRO_TRACE set, every harness run ends with its run report."""
    from repro import obs

    tracer = obs.get_tracer()
    if tracer.enabled and tracer.format == "jsonl":
        tracer.flush()
        from repro.obs.report import load_events, render_report

        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        write = reporter.write_line if reporter else print
        write("")
        for line in render_report(load_events(tracer.path)).splitlines():
            write(line)
