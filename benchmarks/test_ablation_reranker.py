"""Ablation: the domain-specific reranker (paper Eq. 5) alpha/beta sweep,
and hierarchical vs flat design embedding (single-module collapse case)."""

import numpy as np
import pytest

from repro.designs.chipyard import generate_family_variant
from repro.eval.metrics import mean_f1, precision_recall_f1
from repro.mentor import build_circuit_graph
from repro.rag import EmbeddingRetriever


class TestRerankerSweep:
    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (0.7, 0.3), (0.3, 0.7)])
    def test_f1_across_weights(self, trained_database, alpha, beta):
        """Relevance holds while similarity keeps a majority weight."""
        retriever = EmbeddingRetriever(trained_database, alpha=alpha, beta=beta)
        families = trained_database.families()
        scores = []
        for family in families:
            query = generate_family_variant(family, 9)
            circuit = build_circuit_graph(query.verilog, query.name, top=query.top)
            emb = trained_database.encoder.embed_design(circuit)
            hits = retriever.retrieve_designs(emb, k=2)
            scores.append(precision_recall_f1([h.key for h in hits], families[family], k=2))
        f1 = mean_f1(scores)
        if alpha >= 0.7:
            assert f1 >= 0.8
        print(f"\nalpha={alpha} beta={beta}: F1={f1:.3f}")

    def test_beta_prefers_better_qor_within_family(self, trained_database):
        """With beta > 0, equal-relevance candidates reorder by QoR."""
        retriever_sim = EmbeddingRetriever(trained_database, alpha=1.0, beta=0.0)
        retriever_mix = EmbeddingRetriever(trained_database, alpha=0.5, beta=0.5)
        families = trained_database.families()
        reordered = 0
        for family in families:
            query = generate_family_variant(family, 9)
            circuit = build_circuit_graph(query.verilog, query.name, top=query.top)
            emb = trained_database.encoder.embed_design(circuit)
            order_sim = [h.key for h in retriever_sim.retrieve_designs(emb, k=3)]
            order_mix = [h.key for h in retriever_mix.retrieve_designs(emb, k=3)]
            if order_sim != order_mix:
                reordered += 1
        # The characteristic term must have *some* effect somewhere.
        assert reordered >= 1


class TestHierarchicalEmbedding:
    def test_single_module_design_still_embeds(self, trained_database):
        """The flattened/single-module degenerate case (paper §IV-A)."""
        from repro.mentor import CircuitEncoder

        encoder = trained_database.encoder
        single = """
        module lonely(input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = a ^ b;
        endmodule
        """
        circuit = build_circuit_graph(single, "lonely", top="lonely")
        emb = encoder.embed_design(circuit)
        assert emb.shape == (encoder.embedding_dim,)
        assert np.linalg.norm(emb) == pytest.approx(1.0, abs=1e-6)

    def test_design_embedding_is_mean_of_modules(self, trained_database):
        encoder = trained_database.encoder
        design = generate_family_variant("simd", 5)
        circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
        modules = encoder.embed_modules(circuit)
        expected = np.mean(list(modules.values()), axis=0)
        expected /= np.linalg.norm(expected)
        np.testing.assert_allclose(encoder.embed_design(circuit), expected, atol=1e-9)
