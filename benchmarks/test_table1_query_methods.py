"""Table I: SynthRAG's query-method matrix, exercised end to end.

The paper's Table I is descriptive; this bench proves each row is real by
performing an actual retrieval of that category through SynthRAG.
"""

import pytest

from repro.designs.opencores import get_benchmark
from repro.eval.tables import render_table
from repro.llm import chatls_core
from repro.mentor import build_circuit_graph
from repro.rag import SynthRAG


@pytest.fixture(scope="module")
def rag(expert_database):
    bench = get_benchmark("aes")
    circuit = build_circuit_graph(bench.verilog, bench.name, top=bench.top)
    return SynthRAG.build(expert_database, circuit=circuit, llm=chatls_core())


class TestTable1Rows:
    def test_row1_graph_embedding_strategy_retrieval(self, rag, expert_database):
        entry = next(iter(expert_database.entries.values()))
        hits = rag.retrieve_strategies(entry.embedding, k=2)
        assert hits
        assert all(h.commands for h in hits)

    def test_row2_graph_structure_module_code(self, rag):
        code = rag.module_code("aes_sbox")
        assert code is not None
        assert "module aes_sbox" in code

    def test_row3_graph_structure_cell_info(self, rag):
        info = rag.cell_info("NAND2_X1")
        assert info is not None
        assert any("area" in key for key in info)

    def test_row4_llm_embedding_manual(self, rag):
        hits = rag.manual("how do I retime registers", k=2)
        assert hits
        assert any(h.command == "optimize_registers" for h in hits)

    def test_table1_rendering(self, rag):
        rows = [
            [r["category"], r["representation"], r["query_method"], r["retrieval_content"]]
            for r in rag.table1()
        ]
        text = render_table(
            ["Category", "Representation", "Query Method", "Retrieval Content"],
            rows,
            title="TABLE I: Summary of Query Methods",
        )
        assert "Graph Embedding" in text
        print("\n" + text)


def test_benchmark_cypher_query(benchmark, rag):
    """pytest-benchmark target: one Cypher structure retrieval."""
    result = benchmark(
        lambda: rag.cypher("MATCH (m:Module) RETURN m.name, m.category")
    )
    assert result
