"""Ablation: SynthExpert on/off (paper §IV-C motivation).

Without the CoT+RAG refinement loop, hallucinated commands survive into
the final script and kill executability; with it, every sample should run.
"""

import pytest

from repro.core import ChatLS
from repro.designs.opencores import get_benchmark
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script
from repro.llm import ModelProfile, SimulatedLLM


@pytest.fixture(scope="module")
def hallucinating_llm():
    """A deliberately sloppy core model to stress the repair loop."""
    return SimulatedLLM(
        ModelProfile(
            name="sloppy-core",
            context_window=8000,
            hallucination_rate=0.65,
            knows_retiming_heuristic=True,
            knows_fanout_heuristic=True,
        )
    )


def _executability(chatls, bench, seeds=6):
    script = baseline_script(bench)
    ok = 0
    for seed in range(seeds):
        result = chatls.customize_and_evaluate(
            bench.verilog, bench.name, script, TIMING_REQUIREMENT,
            top=bench.top, clock_period=bench.clock_period, seed=seed,
        )
        ok += int(result.executable)
    return ok / seeds


class TestSynthExpertAblation:
    def test_refinement_repairs_hallucinations(
        self, expert_database, hallucinating_llm
    ):
        bench = get_benchmark("tinyRocket")
        with_expert = ChatLS(
            expert_database, llm=hallucinating_llm, use_synthexpert=True
        )
        without_expert = ChatLS(
            expert_database, llm=hallucinating_llm, use_synthexpert=False
        )
        rate_with = _executability(with_expert, bench)
        rate_without = _executability(without_expert, bench)
        assert rate_with == 1.0
        assert rate_without < 1.0
        print(f"\nexecutability with SynthExpert: {rate_with:.2f}, without: {rate_without:.2f}")

    def test_trace_records_repairs(self, expert_database, hallucinating_llm):
        bench = get_benchmark("aes")
        chatls = ChatLS(expert_database, llm=hallucinating_llm)
        repaired_any = False
        for seed in range(6):
            result = chatls.customize(
                bench.verilog, bench.name, baseline_script(bench),
                TIMING_REQUIREMENT, top=bench.top,
                clock_period=bench.clock_period, seed=seed,
            )
            if result.trace.num_repaired + result.trace.num_dropped > 0:
                repaired_any = True
                break
        assert repaired_any

    def test_rag_ablation_loses_grounding(self, expert_database):
        """Without RAG sections, ChatLS degrades toward baseline quality."""
        bench = get_benchmark("tinyRocket")
        script = baseline_script(bench)
        grounded = ChatLS(expert_database, use_rag=True)
        ungrounded = ChatLS(expert_database, use_rag=False)
        g = grounded.customize_and_evaluate(
            bench.verilog, bench.name, script, TIMING_REQUIREMENT,
            top=bench.top, clock_period=bench.clock_period, seed=0,
        )
        u = ungrounded.customize_and_evaluate(
            bench.verilog, bench.name, script, TIMING_REQUIREMENT,
            top=bench.top, clock_period=bench.clock_period, seed=0,
        )
        assert g.qor is not None
        if u.qor is not None:
            assert g.qor.wns >= u.qor.wns - 1e-6
