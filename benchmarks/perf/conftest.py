"""Perf microbenchmark suite.

Each test measures one layer of the performance stack (incremental STA,
synthesis result cache, parallel evaluation), asserts its acceptance
threshold, and records the raw numbers.  On session exit the collected
measurements are written to ``BENCH_perf.json`` at the repo root so CI
runs leave a machine-readable artifact.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="session")
def bench_results() -> dict[str, dict]:
    """Mutable session-wide store; keys become BENCH_perf.json sections."""
    return RESULTS


def pytest_sessionfinish(session, exitstatus):
    if not RESULTS:
        return
    path = Path(__file__).resolve().parents[2] / "BENCH_perf.json"
    # Merge over any existing sections so a partial run (one benchmark
    # file in CI) refreshes its own sections without dropping the rest.
    merged: dict[str, dict] = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(RESULTS)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
