"""Vectorized SoA full STA vs the scalar propagation loop.

Acceptance (ISSUE 3): the warm vector path (netlist structure already
lowered and cached) must beat scalar full analysis by >= 3x on aes or
jpeg, never regress below 1.0x on either, and agree bit-for-bit —
WNS/CPS/TNS, every endpoint slack, and the critical path.
"""

from __future__ import annotations

import time

from repro.designs.opencores import get_benchmark
from repro.hdl import elaborate
from repro.synth import Constraints, TimingEngine, get_wireload, nangate45
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")
DESIGNS = ("aes", "jpeg")
REPEATS = 5


def _mapped(name):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, Constraints(clock_period=bench.clock_period)


def _engine(netlist, constraints, vector):
    engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
    engine._use_vector = vector
    return engine


def _time_full(netlist, constraints, vector):
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        engine = _engine(netlist, constraints, vector)
        start = time.perf_counter()
        report = engine.full_analyze()
        best = min(best, time.perf_counter() - start)
    return best, report


def test_vectorized_sta_speedup_and_parity(bench_results):
    per_design = {}
    for name in DESIGNS:
        netlist, constraints = _mapped(name)
        # Warm-up pays the one-time SoA lowering; the structure is cached
        # on the netlist afterwards, which is the steady state inside
        # optimization loops and repeated QoR reports.
        _engine(netlist, constraints, True).full_analyze()
        vector_s, vec = _time_full(netlist, constraints, True)
        scalar_s, ref = _time_full(netlist, constraints, False)
        assert vec.endpoint_slacks == ref.endpoint_slacks, name
        assert (vec.wns, vec.cps, vec.tns) == (ref.wns, ref.cps, ref.tns), name
        assert vec.critical_path.points == ref.critical_path.points, name
        speedup = scalar_s / vector_s
        per_design[name] = {
            "scalar_s": round(scalar_s, 6),
            "vector_s": round(vector_s, 6),
            "speedup": round(speedup, 2),
        }
    best = max(d["speedup"] for d in per_design.values())
    bench_results["sta_vectorized"] = {
        "repeats": REPEATS,
        "best_speedup": round(best, 2),
        "per_design": per_design,
    }
    for name, d in per_design.items():
        assert d["speedup"] >= 1.0, f"vector STA slower than scalar on {name}"
    assert best >= 3.0, f"vector STA best speedup {best:.2f}x < 3x"
