"""Design-space explorer: throughput, QoR floor, cross-mode identity.

Acceptance (ISSUE 10):

* grouped move-set scoring (``trial_metrics_batch`` sweeps) sustains
  >= 10x the moves/sec of the naive explorer loop (commit each move
  set, ``analyze()``, revert, ``analyze()`` again to fold), with
  bit-identical verdicts;
* ``explore_sizing`` ends no worse than the greedy ``size_gates``
  reference — lexicographic (timing violation, area) — on every
  OpenCores design at the default budget;
* chains are bit-identical across ``REPRO_EXPLORE`` scoring modes and
  across the thread and process backends.

``REPRO_BENCH_EXPLORE_BUDGET`` shrinks the per-chain trial budget for
CI smoke runs (default 240 = the explorer's own default).
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.designs.opencores import benchmark_names, get_benchmark
from repro.hdl import elaborate
from repro.rand import rng as seeded_rng
from repro.synth import Constraints, PassContext, TimingEngine, get_wireload, nangate45
from repro.synth.explore import ExploreConfig, anneal_chain, explore_sizing, run_chains
from repro.synth.optimizer import size_gates
from repro.synth.passes import sizing_neighbors
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")
NEIGHBORS = sizing_neighbors(LIBRARY)
BUDGET = max(1, int(os.environ.get("REPRO_BENCH_EXPLORE_BUDGET", "240")))
#: Move sets timed through the grouped kernel / the naive reference.
THROUGHPUT_MOVES = 256
NAIVE_MOVES = 32
REPEATS = 3


def _mapped(name, scale=1.0):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, Constraints(clock_period=bench.clock_period * scale)


def _random_lanes(netlist, rng, count, max_gates=4):
    sizable = [
        (name, cell.lib_cell)
        for name, cell in netlist.cells.items()
        if cell.lib_cell is not None and NEIGHBORS.get(cell.lib_cell)
    ]
    lanes = []
    for _ in range(count):
        width = min(len(sizable), 1 + rng.randrange(max_gates))
        chosen = {}
        for _ in range(width * 4):
            if len(chosen) >= width:
                break
            name, bound = sizable[rng.randrange(len(sizable))]
            if name not in chosen:
                options = NEIGHBORS[bound]
                chosen[name] = options[rng.randrange(len(options))]
        lanes.append(sorted(chosen.items()))
    return lanes


def test_explore_throughput_vs_naive(bench_results):
    """Grouped kernel sweeps vs the per-trial-analyze loops, same verdicts.

    Two reference arms: *naive* pays one full STA per move set (what a
    per-trial explorer costs without the incremental machinery — the 10x
    floor is against this), and *incremental* folds each commit/revert
    through the journal (the already-optimized single-lane path, reported
    for context).
    """
    netlist, constraints = _mapped("aes", scale=0.8)
    engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
    engine.analyze(with_paths=False)
    lanes = _random_lanes(netlist, seeded_rng(0, "bench", "throughput"),
                          THROUGHPUT_MOVES)
    batch = 16

    grouped_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        verdicts = []
        for i in range(0, len(lanes), batch):
            verdicts.extend(engine.trial_metrics_batch(lanes[i:i + batch]))
        grouped_s = min(grouped_s, time.perf_counter() - start)

    cells = netlist.cells
    naive = lanes[:NAIVE_MOVES]

    def _reference(analyze):
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            measured = []
            for lane in naive:
                previous = [(cells[n], cells[n].lib_cell) for n, _ in lane]
                for n, lib_name in lane:
                    cells[n].lib_cell = lib_name
                measured.append((analyze().cps, engine.total_area()))
                for cell, prev in previous:
                    cell.lib_cell = prev
                analyze()  # fold the revert
            best = min(best, time.perf_counter() - start)
        return best, measured

    naive_s, naive_verdicts = _reference(engine.full_analyze)
    incr_s, incr_verdicts = _reference(
        lambda: engine.analyze(with_paths=False)
    )

    assert naive_verdicts == verdicts[:NAIVE_MOVES]
    assert incr_verdicts == verdicts[:NAIVE_MOVES]
    grouped_mps = len(lanes) / grouped_s
    naive_mps = len(naive) / naive_s
    incr_mps = len(naive) / incr_s
    speedup = grouped_mps / naive_mps
    bench_results.setdefault("explore", {})["throughput"] = {
        "design": "aes",
        "moves": len(lanes),
        "batch": batch,
        "grouped_moves_per_s": round(grouped_mps, 1),
        "naive_moves_per_s": round(naive_mps, 1),
        "incremental_moves_per_s": round(incr_mps, 1),
        "speedup_vs_naive": round(speedup, 2),
        "speedup_vs_incremental": round(grouped_mps / incr_mps, 2),
    }
    assert speedup >= 10.0, f"grouped scoring {speedup:.2f}x < 10x naive"


def test_explore_qor_no_worse_than_greedy(bench_results):
    """On every OpenCores design, explore_sizing on top of greedy sizing
    ends lexicographically no worse than the greedy point itself."""
    per_design = {}
    improved = 0
    for name in benchmark_names():
        netlist, constraints = _mapped(name)
        context = PassContext(netlist, LIBRARY, WIRELOAD, constraints)
        size_gates(netlist, LIBRARY, WIRELOAD, constraints, context=context)
        result = explore_sizing(
            netlist, LIBRARY, WIRELOAD, constraints,
            budget=BUDGET, seed=0, chains=2, context=context,
        )
        greedy_key = (max(0.0, -result.wns_before), result.area_before)
        explore_key = (max(0.0, -result.wns_after), result.area_after)
        assert explore_key <= greedy_key, name
        improved += explore_key < greedy_key
        per_design[name] = {
            "greedy_wns": round(result.wns_before, 4),
            "greedy_area": round(result.area_before, 2),
            "explore_wns": round(result.wns_after, 4),
            "explore_area": round(result.area_after, 2),
            "cells_changed": result.changes,
        }
    bench_results.setdefault("explore", {})["qor_vs_greedy"] = {
        "budget": BUDGET,
        "chains": 2,
        "improved_designs": improved,
        "per_design": per_design,
    }


def test_explore_bit_identical_across_modes(bench_results):
    """Scoring mode and pool backend never change the walk."""
    netlist, constraints = _mapped("aes", scale=0.9)
    config = ExploreConfig(
        budget=min(BUDGET, 60), chains=2, seed=13, grouped=True
    )

    grouped = anneal_chain(
        netlist.clone(), LIBRARY, WIRELOAD, constraints, config
    )
    fallback = anneal_chain(
        netlist.clone(), LIBRARY, WIRELOAD, constraints,
        dataclasses.replace(config, grouped=False),
    )
    assert dataclasses.replace(grouped, grouped=False) == fallback

    backends = {}
    for backend in ("thread", "process"):
        os.environ["REPRO_PARALLEL_BACKEND"] = backend
        try:
            backends[backend] = run_chains(
                netlist.clone(), LIBRARY, WIRELOAD, constraints, config,
                jobs=2,
            )
        finally:
            os.environ.pop("REPRO_PARALLEL_BACKEND", None)
    assert backends["thread"] == backends["process"]
    bench_results.setdefault("explore", {})["determinism"] = {
        "design": "aes",
        "budget": config.budget,
        "chains": config.chains,
        "grouped_equals_fallback": True,
        "thread_equals_process": True,
        "accepted": grouped.accepted,
    }
