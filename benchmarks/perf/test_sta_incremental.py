"""Incremental STA vs full re-analysis on a gate-sizing-style loop.

Acceptance (ISSUE 1): >= 3x speedup on the resize loop, and *exact*
agreement — WNS/CPS/TNS and every endpoint slack — with a from-scratch
engine on all seven OpenCores benchmarks.
"""

from __future__ import annotations

import time

from repro.designs.opencores import benchmark_names, get_benchmark
from repro.rand import rng as seeded_rng
from repro.hdl import elaborate
from repro.synth import Constraints, TimingEngine, get_wireload, nangate45
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")
RESIZES_PER_DESIGN = 20


def _mapped(name):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, Constraints(clock_period=bench.clock_period)


def _random_resize(netlist, rng):
    sized = [c for c in netlist.cells.values() if c.lib_cell is not None]
    cell = rng.choice(sized)
    variants = LIBRARY.variants(LIBRARY.cell(cell.lib_cell).function)
    others = [v for v in variants if v.name != cell.lib_cell]
    if others:
        cell.lib_cell = rng.choice(others).name


def test_incremental_sta_speedup_and_parity(bench_results):
    rng = seeded_rng(20260806)
    incremental_s = 0.0
    full_s = 0.0
    per_design = {}
    for name in benchmark_names():
        netlist, constraints = _mapped(name)
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze()
        d_incr = d_full = 0.0
        for _ in range(RESIZES_PER_DESIGN):
            _random_resize(netlist, rng)
            start = time.perf_counter()
            incr = engine.analyze()
            d_incr += time.perf_counter() - start
            start = time.perf_counter()
            ref = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints).analyze()
            d_full += time.perf_counter() - start
            assert incr.endpoint_slacks == ref.endpoint_slacks, name
            assert (incr.wns, incr.cps, incr.tns) == (ref.wns, ref.cps, ref.tns)
        incremental_s += d_incr
        full_s += d_full
        per_design[name] = {
            "incremental_s": round(d_incr, 6),
            "full_s": round(d_full, 6),
            "speedup": round(d_full / d_incr, 2) if d_incr else None,
        }
    speedup = full_s / incremental_s
    bench_results["sta_incremental"] = {
        "resizes_per_design": RESIZES_PER_DESIGN,
        "incremental_s": round(incremental_s, 6),
        "full_s": round(full_s, 6),
        "speedup": round(speedup, 2),
        "per_design": per_design,
    }
    assert speedup >= 3.0, f"incremental STA speedup {speedup:.2f}x < 3x"
