"""Cached vs uncached synthesis of the Table IV baseline scripts.

A cache hit replaces a full elaborate/map/optimize/time run with a
deep copy, so the second sweep over identical (design, script) pairs
must be at least 2x faster end to end.
"""

from __future__ import annotations

import time

from repro.designs.opencores import get_benchmark
from repro.eval.harness import baseline_script
from repro.synth import SynthesisCache
from repro.synth.cache import synthesize_cached

DESIGNS = ("dynamic_node", "riscv32i", "aes")


def test_synthesis_cache_speedup(bench_results):
    cache = SynthesisCache()
    benches = [get_benchmark(name) for name in DESIGNS]

    def sweep():
        start = time.perf_counter()
        results = [
            synthesize_cached(
                None, b.name, b.verilog, baseline_script(b), top=b.top, cache=cache
            )
            for b in benches
        ]
        return time.perf_counter() - start, results

    cold_s, cold = sweep()
    warm_s, warm = sweep()
    assert all(r.success for r in cold + warm)
    assert [r.qor for r in warm] == [r.qor for r in cold]
    stats = cache.stats()
    assert stats["entries"] == len(DESIGNS)
    assert stats["hits"] == len(DESIGNS)
    assert stats["misses"] == len(DESIGNS)
    assert stats["disk_hits"] == 0 and stats["disk_writes"] == 0
    assert stats["hit_ratio"] == 0.5
    speedup = cold_s / warm_s
    bench_results["synth_cache"] = {
        "designs": list(DESIGNS),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 2.0, f"synthesis cache speedup {speedup:.2f}x < 2x"
