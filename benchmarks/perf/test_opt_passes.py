"""Batched pass-engine flow vs the scalar per-trial fallback.

Acceptance (ISSUE 5): on a timing-closure pass flow (two wide sizing
scans around an area-recovery step, all sharing one PassContext), fast
mode (``REPRO_FAST_OPT=1`` — batched ``trial_cps_batch`` sweeps) must
beat the scalar fallback (per-trial ``analyze``) by >= 3x wall-clock on
its best design, stay within noise of scalar on the accept-heavy worst
case, and the full ``analyze()``/incremental-fold count per flow must
drop.  Both
arms are asserted bit-identical first: same pass results, same final
netlist fingerprint.
"""

from __future__ import annotations

import time

from repro import perf
from repro.designs.opencores import get_benchmark
from repro.hdl import elaborate
from repro.synth import Constraints, get_wireload, nangate45
from repro.synth.optimizer import recover_area, size_gates
from repro.synth.passes import PassContext
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")
# (design, clock-period scale): tight periods keep the sizing scans
# active long enough to measure; jpeg/swerv plateau into reject-heavy
# scans where batching shines, ethmac keeps accepting (worst case for
# the batch path — it must still not lose).
SCENARIOS = (("jpeg", 0.8), ("swerv", 0.7), ("ethmac", 0.8))
REPEATS = 5


def _flow(name, scale, fast):
    """Run the pass flow once; returns (seconds, results, fingerprint, counters)."""
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    constraints = Constraints(
        clock_period=bench.clock_period * scale, max_fanout=24, max_area=0.0
    )
    context = PassContext(netlist, LIBRARY, WIRELOAD, constraints, fast=fast)
    context.engine.analyze()  # warm: one-time lowering + full STA
    perf.reset()
    start = time.perf_counter()
    results = [
        size_gates(
            netlist, LIBRARY, WIRELOAD, constraints,
            max_rounds=60, scan=64, context=context,
        ),
        recover_area(
            netlist, LIBRARY, WIRELOAD, constraints,
            slack_margin=-10.0, context=context,
        ),
        size_gates(
            netlist, LIBRARY, WIRELOAD, constraints,
            max_rounds=30, scan=64, context=context,
        ),
    ]
    elapsed = time.perf_counter() - start
    counters = {
        key: perf.counter(key)
        for key in ("sta.full", "sta.incremental", "sta.report", "opt.trials")
    }
    return elapsed, results, netlist.fingerprint(), counters


def _best_of(name, scale, fast):
    best = float("inf")
    last = None
    for _ in range(REPEATS):
        last = _flow(name, scale, fast)
        best = min(best, last[0])
    return best, last


def test_opt_passes_speedup_and_parity(bench_results):
    per_design = {}
    for name, scale in SCENARIOS:
        fast_s, fast_run = _best_of(name, scale, True)
        scalar_s, scalar_run = _best_of(name, scale, False)
        # bit-exact parity: identical accepted changes and final netlist
        assert fast_run[1] == scalar_run[1], name
        assert fast_run[2] == scalar_run[2], name
        fast_counts, scalar_counts = fast_run[3], scalar_run[3]
        fast_analyzes = fast_counts["sta.full"] + fast_counts["sta.incremental"]
        scalar_analyzes = (
            scalar_counts["sta.full"] + scalar_counts["sta.incremental"]
        )
        per_design[name] = {
            "clock_scale": scale,
            "scalar_s": round(scalar_s, 6),
            "fast_s": round(fast_s, 6),
            "speedup": round(scalar_s / fast_s, 2),
            "fast_analyzes": fast_analyzes,
            "scalar_analyzes": scalar_analyzes,
            "fast_reports": fast_counts["sta.report"],
            "scalar_reports": scalar_counts["sta.report"],
            "trials": fast_counts["opt.trials"],
        }
    best = max(d["speedup"] for d in per_design.values())
    bench_results["opt_passes"] = {
        "repeats": REPEATS,
        "best_speedup": best,
        "per_design": per_design,
    }
    for name, d in per_design.items():
        # accept-heavy scenarios gain little from batching; the floor
        # only guards against a real regression, with noise headroom
        assert d["speedup"] >= 0.8, f"fast pass flow slower on {name}"
        assert d["fast_analyzes"] <= d["scalar_analyzes"], name
    # the plateaued (reject-heavy) scans must show the full batch win
    dropped = [
        d for d in per_design.values() if d["fast_analyzes"] < d["scalar_analyzes"]
    ]
    assert dropped, "no scenario reduced analyze() calls"
    assert best >= 3.0, f"pass-engine best speedup {best:.2f}x < 3x"
