"""Thread vs process backend on the full-corpus Table III run.

Acceptance (ISSUE 6): the warm process pool with shared-memory transport
and work stealing delivers >= 2.5x wall-clock over the GIL-bound thread
backend at 4+ workers, with **bit-identical** Table III results out of
both backends.  The speedup assertion is CPU-gated: on boxes with fewer
than 4 cores the process backend cannot physically fan out (its workers
time-slice one core and pay the transport overhead on top), so only the
equivalence contract is asserted there — the measured numbers are still
recorded in the ``parallel_process`` section of BENCH_perf.json.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import perf
from repro.designs import benchmark_names
from repro.designs.database import build_default_database
from repro.eval.harness import run_table3_customization
from repro.parallel import shutdown_pools, sync_worker_perf
from repro.synth.cache import clear_caches

K = 3
MIN_WORKERS = 4
SPEEDUP_FLOOR = 2.5


@pytest.fixture(scope="module")
def small_database():
    return build_default_database(variants_per_family=1)


def test_process_backend_full_corpus_table3(bench_results, small_database, monkeypatch):
    designs = benchmark_names()
    cpus = os.cpu_count() or 1
    workers = max(2, min(8, cpus))

    def run(backend: str):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", backend)
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "1")
        clear_caches()
        start = time.perf_counter()
        table = run_table3_customization(
            database=small_database, designs=designs, k=K, jobs=workers
        )
        return time.perf_counter() - start, table

    thread_s, via_thread = run("thread")
    process_s, via_process = run("process")
    sync_worker_perf()
    shutdown_pools()

    # Per-cell pickles: aggregate dumps differ only by pickle's shared-
    # object memoization (the thread run reuses cached QoRSnapshot
    # instances across cells; process results unpickle as fresh objects),
    # which is an encoding artifact, not a value difference.
    assert via_process.models.keys() == via_thread.models.keys()
    for model in via_thread.models:
        assert via_process.models[model].keys() == via_thread.models[model].keys()
        for design in via_thread.models[model]:
            assert pickle.dumps(via_process.models[model][design]) == pickle.dumps(
                via_thread.models[model][design]
            ), f"cell ({model}, {design}) differs across backends"
    for design in via_thread.baseline:
        assert pickle.dumps(via_process.baseline[design]) == pickle.dumps(
            via_thread.baseline[design]
        ), f"baseline row {design} differs across backends"

    speedup = thread_s / process_s
    counters = perf.snapshot()["counters"]
    bench_results["parallel_process"] = {
        "designs": designs,
        "k": K,
        "cpus": cpus,
        "workers": workers,
        "thread_s": round(thread_s, 6),
        "process_s": round(process_s, 6),
        "speedup": round(speedup, 2),
        "bit_identical": True,
        "steals": counters.get("parallel.steals", 0),
        "stolen_tasks": counters.get("parallel.stolen_tasks", 0),
        "shm_segments": counters.get("parallel.shm_segments", 0),
        "shm_bytes": counters.get("parallel.shm_bytes", 0),
        "workers_spawned": counters.get("parallel.workers_spawned", 0),
        "speedup_asserted": cpus >= MIN_WORKERS,
    }
    if cpus >= MIN_WORKERS and workers >= MIN_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"at {workers} workers on {cpus} cores"
        )
