"""Serial-uncached vs parallel+cached Table III subset (3 designs).

Acceptance (ISSUE 1): >= 2x wall-clock improvement on the end-to-end
customization comparison when the parallel executor and the caches
(synthesis results + elaborated netlists) are on, with identical QoR
rows out of both runs.  Both runs start cold.
"""

from __future__ import annotations

import time

import pytest

from repro.designs.database import build_default_database
from repro.eval.harness import run_table3_customization
from repro.synth.cache import clear_caches, default_cache

DESIGNS = ["riscv32i", "swerv", "dynamic_node"]
K = 3


@pytest.fixture(scope="module")
def small_database():
    return build_default_database(variants_per_family=1)


def test_parallel_cached_table3_speedup(bench_results, small_database, monkeypatch):
    def run(jobs, cache_on):
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "1" if cache_on else "0")
        clear_caches()
        start = time.perf_counter()
        table = run_table3_customization(
            database=small_database, designs=DESIGNS, k=K, jobs=jobs
        )
        return time.perf_counter() - start, table

    serial_s, serial = run(jobs=1, cache_on=False)
    parallel_s, parallel = run(jobs=None, cache_on=True)
    assert parallel.models == serial.models
    assert parallel.baseline == serial.baseline
    speedup = serial_s / parallel_s
    cache_stats = default_cache().stats()
    bench_results["parallel_eval"] = {
        "designs": DESIGNS,
        "k": K,
        "serial_uncached_s": round(serial_s, 6),
        "parallel_cached_s": round(parallel_s, 6),
        "speedup": round(speedup, 2),
        "cache": cache_stats,
    }
    assert speedup >= 2.0, f"parallel+cache speedup {speedup:.2f}x < 2x"
