"""HNSW ANN retrieval vs exact FlatIndex at scale.

Acceptance (ISSUE 8): on a synthetic clustered corpus (default 100k
vectors, dim 64 — scale with ``REPRO_BENCH_ANN_N``, up to 1M) the HNSW
index must deliver >= 10x single-query QPS over brute force at 100k+
while keeping recall@10 >= 0.95 against FlatIndex ground truth.  Also
records build time, p50/p95 query latency, batched QPS and graph size
under the ``ann`` section of ``BENCH_perf.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.vectorstore import FlatIndex, HNSWIndex

N = int(os.environ.get("REPRO_BENCH_ANN_N", "100000"))
DIM = 64
N_QUERIES = 200
K = 10
M = 12
EF_CONSTRUCTION = 48
EF_SEARCH = 64


def _corpus(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """Clustered Gaussian data — embedding-like, not uniform noise."""
    rng = np.random.default_rng(seed)
    n_clusters = max(16, n // 400)
    centers = rng.normal(scale=10.0, size=(n_clusters, dim)).astype(np.float32)
    assign = rng.integers(0, n_clusters, size=n)
    return centers[assign] + rng.normal(scale=1.0, size=(n, dim)).astype(np.float32)


def _time_single(index, queries, k):
    latencies = []
    for query in queries:
        start = time.perf_counter()
        index.search(query, k=k)
        latencies.append(time.perf_counter() - start)
    lat = np.asarray(latencies)
    return {
        "qps": round(len(queries) / lat.sum(), 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 3),
    }


def _time_batch(index, queries, k):
    start = time.perf_counter()
    index.search_batch(queries, k=k)
    return round(len(queries) / (time.perf_counter() - start), 1)


def test_ann_speedup_and_recall(bench_results):
    data = _corpus(N, DIM)
    rng = np.random.default_rng(1)
    queries = data[rng.integers(0, N, size=N_QUERIES)] + rng.normal(
        scale=0.1, size=(N_QUERIES, DIM)
    ).astype(np.float32)

    flat = FlatIndex(dim=DIM, metric="cosine")
    flat.add_batch(range(N), data)

    hnsw = HNSWIndex(
        dim=DIM, metric="cosine", M=M, ef_construction=EF_CONSTRUCTION,
        ef_search=EF_SEARCH, seed=0,
    )
    start = time.perf_counter()
    hnsw.add_batch(range(N), data)
    build_s = time.perf_counter() - start

    # Ground truth once (batched exact), then recall + timing.
    truth = flat.search_batch(queries, k=K)
    approx = hnsw.search_batch(queries, k=K)
    hits = sum(
        len({r.key for r in t} & {r.key for r in a})
        for t, a in zip(truth, approx)
    )
    recall = hits / (K * N_QUERIES)

    # Single-query path is what the retrievers actually call; time the
    # flat baseline on a subset (it is the slow side at 100k+).
    flat_single = _time_single(flat, queries[:50], K)
    hnsw_single = _time_single(hnsw, queries, K)
    flat_batch_qps = _time_batch(flat, queries, K)
    hnsw_batch_qps = _time_batch(hnsw, queries, K)

    single_speedup = hnsw_single["qps"] / flat_single["qps"]
    batch_speedup = hnsw_batch_qps / flat_batch_qps

    assert recall >= 0.95, f"recall@{K} {recall:.3f} below floor"
    if N >= 100_000:
        assert single_speedup >= 10.0, f"single-query speedup {single_speedup:.1f}x"
    else:
        # Small smoke corpora (CI) still have to show a real win.
        assert single_speedup >= 3.0, f"single-query speedup {single_speedup:.1f}x"

    counters = hnsw.search_counters()
    bench_results["ann"] = {
        "n_vectors": N,
        "dim": DIM,
        "n_queries": N_QUERIES,
        "k": K,
        "params": {"M": M, "ef_construction": EF_CONSTRUCTION, "ef_search": EF_SEARCH},
        "build_s": round(build_s, 2),
        "recall_at_10": round(recall, 4),
        "graph_edges": counters["graph_edges"],
        "flat_single": flat_single,
        "hnsw_single": hnsw_single,
        "flat_batch_qps": flat_batch_qps,
        "hnsw_batch_qps": hnsw_batch_qps,
        "single_speedup": round(single_speedup, 1),
        "batch_speedup": round(batch_speedup, 1),
    }
