"""Serving-engine throughput vs the sequential customize loop.

Acceptance (ISSUE 9): at 32 concurrent sessions the micro-batched
``ServeEngine`` delivers >= 3x throughput over a sequential
``customize_and_evaluate`` loop on a 4+ core machine, with **bit-
identical** per-session script/trace/QoR.  The speedup assertion is
CPU-gated (below 4 cores the synthesize fan-out time-slices one core and
the coalescing wins cannot compound), but equivalence is asserted and
the measured numbers are recorded in the ``serve`` section of
BENCH_perf.json everywhere.

``REPRO_BENCH_SERVE_SESSIONS`` shrinks the session count for CI smoke.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.designs.chipyard import FAMILIES, generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.core import ChatLS
from repro.gnn import embedding_cache
from repro.llm import chatls_core
from repro.mentor import CircuitEncoder
from repro.parallel import shutdown_pools
from repro.serve import BatchPolicy, ServeEngine, ServeRequest
from repro.synth.cache import clear_caches

SESSIONS = int(os.environ.get("REPRO_BENCH_SERVE_SESSIONS", "32") or "32")
MIN_CPUS = 4
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def small_database():
    db = ExpertDatabase(CircuitEncoder(seed=0))
    for family in ("rocket", "sha3"):
        db.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "ultra_retime"],
        )
    return db


def _requests(count: int) -> list[ServeRequest]:
    """``count`` distinct designs cycling the family catalogue."""
    families = sorted(FAMILIES)
    texts = (
        "fix the negative slack and improve timing",
        "reduce area",
        "cut leakage power",
    )
    requests = []
    for index in range(count):
        family = families[index % len(families)]
        design = generate_family_variant(family, 10 + index)
        baseline = "\n".join(
            [
                f"read_verilog {design.name}",
                f"current_design {design.name}",
                "link",
                "create_clock -period 1.0 clk",
                "compile",
            ]
        )
        requests.append(
            ServeRequest(
                verilog=design.verilog,
                design_name=design.name,
                baseline_script=baseline,
                requirement=texts[index % len(texts)],
                top=design.top,
                clock_period=1.2,
                seed=index,
            )
        )
    return requests


def _reset_caches() -> None:
    clear_caches()
    embedding_cache.clear()


def test_serve_throughput_vs_sequential(bench_results, small_database, monkeypatch):
    monkeypatch.setenv("REPRO_SYNTH_CACHE", "1")
    cpus = os.cpu_count() or 1
    workers = max(2, min(8, cpus))
    chatls = ChatLS(small_database, llm=chatls_core())
    requests = _requests(SESSIONS)

    _reset_caches()
    start = time.perf_counter()
    sequential = [
        chatls.customize_and_evaluate(
            verilog=request.verilog,
            design_name=request.design_name,
            baseline_script=request.baseline_script,
            requirement=request.requirement,
            top=request.top,
            clock_period=request.clock_period,
            seed=request.seed,
        )
        for request in requests
    ]
    sequential_s = time.perf_counter() - start

    backend = "process" if cpus >= MIN_CPUS else None
    engine = ServeEngine(
        chatls,
        policy=BatchPolicy(batch_max=SESSIONS, batch_wait_ms=10.0),
        backend=backend,
        jobs=workers,
    )
    _reset_caches()
    start = time.perf_counter()
    try:
        served = engine.run(requests)
    finally:
        shutdown_pools()
    serve_s = time.perf_counter() - start

    for index, (got, want) in enumerate(zip(served, sequential)):
        assert got.script == want.script, f"session {index}: script differs"
        assert pickle.dumps(got.trace) == pickle.dumps(
            want.trace
        ), f"session {index}: trace differs"
        assert pickle.dumps(got.qor) == pickle.dumps(
            want.qor
        ), f"session {index}: QoR differs"
        assert got.prompt == want.prompt, f"session {index}: prompt differs"
        assert (got.executable, got.error, got.seed) == (
            want.executable, want.error, want.seed,
        ), f"session {index}: flags differ"

    speedup = sequential_s / serve_s if serve_s > 0 else float("inf")
    bench_results["serve"] = {
        "sessions": SESSIONS,
        "cpus": cpus,
        "workers": workers,
        "backend": backend or "thread",
        "batch_max": SESSIONS,
        "sequential_s": round(sequential_s, 6),
        "serve_s": round(serve_s, 6),
        "speedup": round(speedup, 2),
        "throughput_sessions_per_s": round(SESSIONS / serve_s, 4)
        if serve_s > 0
        else None,
        "bit_identical": True,
        "stage_batches": {
            name: batcher.batch_count for name, batcher in engine.batchers.items()
        },
        "max_batch": {
            name: batcher.max_batch for name, batcher in engine.batchers.items()
        },
        "speedup_asserted": cpus >= MIN_CPUS,
    }
    if cpus >= MIN_CPUS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"serve speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x at "
            f"{SESSIONS} sessions on {cpus} cores"
        )
