"""Content-addressed frontend cache vs cold parse + elaboration.

Acceptance (ISSUE 3): warm compiles served from the in-memory frontend
cache must beat cold elaboration by >= 5x aggregate across the OpenCores
designs, never regress below 1.0x, and hand back netlists with identical
fingerprints.
"""

from __future__ import annotations

import gc
import time

from repro.designs.opencores import benchmark_names, get_benchmark
from repro.hdl import elaborate
from repro.synth.cache import clear_caches, elaborate_cached

WARM_REPEATS = 3


def _best_of(fn, repeats):
    best = float("inf")
    value = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_frontend_cache_speedup_and_fidelity(bench_results):
    clear_caches()
    cold_s = 0.0
    warm_s = 0.0
    per_design = {}
    for name in benchmark_names():
        bench = get_benchmark(name)
        d_cold, cold = _best_of(
            lambda: elaborate(bench.verilog, bench.top), 1
        )
        primed = elaborate_cached(bench.verilog, bench.top)  # populates cache
        d_warm, warm = _best_of(
            lambda: elaborate_cached(bench.verilog, bench.top), WARM_REPEATS
        )
        assert warm.fingerprint() == cold.fingerprint(), name
        del cold, primed, warm
        cold_s += d_cold
        warm_s += d_warm
        per_design[name] = {
            "cold_s": round(d_cold, 6),
            "warm_s": round(d_warm, 6),
            "speedup": round(d_cold / d_warm, 2) if d_warm else None,
        }
    speedup = cold_s / warm_s
    bench_results["frontend_cache"] = {
        "warm_repeats": WARM_REPEATS,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "per_design": per_design,
    }
    clear_caches()
    for name, d in per_design.items():
        assert d["speedup"] >= 1.0, f"warm compile slower than cold on {name}"
    assert speedup >= 5.0, f"frontend cache speedup {speedup:.2f}x < 5x"
