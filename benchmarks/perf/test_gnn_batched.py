"""Batched GNN engine vs the scalar per-graph path.

Acceptance (ISSUE 4): on the Fig-4 corpus (7 Chipyard designs, one per
family) the batched ``embed_graphs`` must beat the per-graph loop by
>= 3x, one vectorized multi-similarity epoch must beat the scalar epoch
by >= 3x, and both must stay bit-exact.  Fig-4 training wall-clock is
recorded in both modes for the report.
"""

from __future__ import annotations

import time

import numpy as np

from repro.designs.chipyard import generate_corpus
from repro.gnn import GraphBatch, GraphSAGE
from repro.gnn.batch import batched_forward
from repro.mentor.circuit_graph import build_circuit_graph
from repro.mentor.embeddings import CircuitEncoder
from repro.mentor.metric_learning import (
    MetricTrainer,
    _multi_similarity_loss_loop,
    multi_similarity_loss,
)

# Single-core CI runners are noisy; min-over-many-repeats is the only
# stable statistic.  Embed calls are ~150us so they get a large budget.
REPEATS = 7
EMBED_REPEATS = 30
EPOCH_REPEATS = 20


def _corpus_graphs():
    """Module dataflow graphs + family labels for the Fig-4 corpus."""
    corpus = generate_corpus(1)
    families = sorted({d.family for d in corpus})
    label_of = {f: i for i, f in enumerate(families)}
    graphs, labels = [], []
    for design in corpus:
        circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
        for graph in circuit.module_graphs.values():
            graphs.append(graph)
            labels.append(label_of[design.family])
    return graphs, labels


def _best(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_batched_embed_speedup_and_parity(bench_results, monkeypatch):
    monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
    monkeypatch.setenv("REPRO_BATCH_GNN", "1")
    graphs, _ = _corpus_graphs()
    model = GraphSAGE(in_dim=graphs[0].features.shape[1], hidden_dims=(48, 32), seed=0)

    batch = GraphBatch(graphs)  # warm the adjacency-block memo
    model.embed_graphs(graphs)  # warm the pack memo + workspace pool

    # Alternate blocks of repeats so a load burst on a shared runner hits
    # both variants instead of inflating whichever happened to run under
    # it; the min over all blocks is the steady-state time.
    batched_s = scalar_s = float("inf")
    batched_emb = scalar_emb = None
    for _ in range(6):
        t, batched_emb = _best(lambda: model.embed_graphs(graphs), EMBED_REPEATS)
        batched_s = min(batched_s, t)
        t, scalar_emb = _best(
            lambda: np.vstack([model.embed_graph(g) for g in graphs]), EMBED_REPEATS
        )
        scalar_s = min(scalar_s, t)
    np.testing.assert_array_equal(batched_emb, scalar_emb)

    speedup = scalar_s / batched_s
    bench_results.setdefault("gnn_batched", {})["embed_graphs"] = {
        "graphs": len(graphs),
        "total_nodes": batch.total_nodes,
        "repeats": 6 * EMBED_REPEATS,
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 3.0, f"batched embed speedup {speedup:.2f}x < 3x"


def test_vectorized_ms_epoch_speedup(bench_results, monkeypatch):
    """Vectorized multi-similarity epoch vs the pre-engine epoch.

    The baseline reproduces what the seed shipped: per-graph embeds, the
    O(n^2)-Python loss loop, a per-row normalization-gradient loop, and
    re-forward backwards.  The vectorized epoch (batched engine + matrix
    loss) must beat it by >= 3x; the retained scalar-engine fallback
    (which shares the vectorized loss) is recorded too, and its loss
    trajectory must stay bit-exact with the batched one.
    """
    monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
    graphs, labels = _corpus_graphs()
    labels_arr = np.asarray(labels)
    warmup = 3

    # Epochs run back-to-back in one mode (as real training does) so each
    # variant is measured in its own contiguous block; min over many
    # repeats is the only statistic stable on a noisy single-core runner.
    def steady_epochs(mode):
        """Min steady-state epoch time + the full loss trajectory."""
        monkeypatch.setenv("REPRO_BATCH_GNN", mode)
        encoder = CircuitEncoder(seed=0)
        trainer = MetricTrainer(encoder, loss="multi_similarity", seed=0)
        losses, times = [], []
        for _ in range(warmup + EPOCH_REPEATS):
            start = time.perf_counter()
            losses.append(trainer._ms_epoch(graphs, labels_arr, batch_size=32))
            times.append(time.perf_counter() - start)
        return min(times[warmup:]), losses

    def seed_epochs():
        """The epoch exactly as the seed ran it (scalar + loop loss)."""
        monkeypatch.setenv("REPRO_BATCH_GNN", "0")
        encoder = CircuitEncoder(seed=0)
        trainer = MetricTrainer(encoder, loss="multi_similarity", seed=0)
        model = encoder.model
        times = []
        for _ in range(warmup + EPOCH_REPEATS):
            start = time.perf_counter()
            idx = trainer.rng.choice(
                len(graphs), size=min(32, len(graphs)), replace=False
            )
            embeddings = np.vstack([model.embed_graph(graphs[i]) for i in idx])
            norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            normalized = embeddings / norms
            _loss, grad_norm = _multi_similarity_loss_loop(
                normalized, labels_arr[idx]
            )
            model.zero_grad()
            for row, i in enumerate(idx):
                norm = norms[row, 0]
                g = grad_norm[row] / norm - (
                    normalized[row] * (grad_norm[row] @ normalized[row]) / norm
                )
                model.embed_graph(graphs[i])
                model.backward_graph(g)
            trainer.optimizer.step()
            times.append(time.perf_counter() - start)
        return min(times[warmup:])

    batched_s, batched_losses = steady_epochs("1")
    scalar_s, scalar_losses = steady_epochs("0")
    assert batched_losses == scalar_losses  # bit-exact across modes
    baseline_s = seed_epochs()

    # Sub-measurement: the vectorized loss kernel alone vs the O(n^2) loop.
    rng = np.random.default_rng(0)
    emb = rng.normal(size=(64, 32))
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)
    loss_labels = rng.integers(0, 7, size=64)
    vec_s, vec_out = _best(lambda: multi_similarity_loss(emb, loss_labels), 20)
    loop_s, loop_out = _best(lambda: _multi_similarity_loss_loop(emb, loss_labels), 20)
    np.testing.assert_allclose(vec_out[0], loop_out[0], rtol=1e-12)

    speedup = baseline_s / batched_s
    bench_results.setdefault("gnn_batched", {})["ms_epoch"] = {
        "batch_size": 32,
        "repeats": EPOCH_REPEATS,
        "baseline_s": round(baseline_s, 6),
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(speedup, 2),
        "scalar_fallback_speedup": round(baseline_s / scalar_s, 2),
        "loss_kernel": {
            "n": 64,
            "loop_s": round(loop_s, 6),
            "vectorized_s": round(vec_s, 6),
            "speedup": round(loop_s / vec_s, 2),
        },
    }
    assert speedup >= 3.0, f"vectorized MS epoch speedup {speedup:.2f}x < 3x"


def test_fig4_training_wallclock(bench_results, monkeypatch):
    monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
    graphs, labels = _corpus_graphs()

    def run(mode):
        monkeypatch.setenv("REPRO_BATCH_GNN", mode)
        encoder = CircuitEncoder(seed=0)
        trainer = MetricTrainer(encoder, loss="contrastive", seed=0)
        start = time.perf_counter()
        stats = trainer.train(graphs, labels, epochs=3)
        return time.perf_counter() - start, stats.losses

    batched_s, batched_losses = run("1")
    scalar_s, scalar_losses = run("0")
    assert batched_losses == scalar_losses  # training is mode-invariant

    bench_results.setdefault("gnn_batched", {})["fig4_train"] = {
        "epochs": 3,
        "loss": "contrastive",
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 2),
    }
