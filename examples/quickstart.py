#!/usr/bin/env python3
"""Quickstart: customize a synthesis script for one design with ChatLS.

Runs the complete pipeline on a small pipelined design:

1. synthesize a baseline script to get the reference QoR and tool report;
2. build (a small) expert database over the Chipyard-like corpus;
3. let ChatLS analyze the design, retrieve strategies and draft+refine a
   customized script;
4. run the customized script and compare QoR.

Usage::

    python examples/quickstart.py
"""

from repro.core import ChatLS
from repro.designs import build_default_database
from repro.synth import DCShell

DESIGN = """
module mixer(input [15:0] x, output [15:0] y);
  wire [15:0] r0, r1, r2, r3, r4, r5;
  assign r0 = {x[14:0], x[15]} ^ x;
  assign r1 = {r0[12:0], r0[15:13]} ^ r0;
  assign r2 = {r1[10:0], r1[15:11]} ^ r1;
  assign r3 = {r2[8:0], r2[15:9]} ^ r2;
  assign r4 = {r3[6:0], r3[15:7]} ^ r3;
  assign r5 = {r4[4:0], r4[15:5]} ^ r4;
  assign y = r5;
endmodule

module mydesign(input clk, input [15:0] a, input [15:0] b, output reg [15:0] y);
  reg [15:0] state;
  wire [15:0] m1, m2;
  mixer u1 (.x(state), .y(m1));
  mixer u2 (.x(m1 ^ b), .y(m2));
  always @(posedge clk) begin
    state <= a + b;
    y <= m2;
  end
endmodule
"""

BASELINE_SCRIPT = """\
read_verilog mydesign
current_design mydesign
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period 1.5 clk
compile
report_qor
"""


def main() -> None:
    # Step 1: baseline synthesis --------------------------------------------------
    shell = DCShell()
    shell.add_design("mydesign", DESIGN)
    baseline = shell.run_script(BASELINE_SCRIPT)
    assert baseline.success, baseline.error
    report = next(out for line, out in baseline.transcript if line == "report_qor")
    print("=== baseline QoR ===")
    print(baseline.qor.row())

    # Step 2: expert database (kept small for the quickstart) ----------------------
    print("\nbuilding expert database...")
    database = build_default_database(
        variants_per_family=1,
        strategies=["baseline_compile", "high_effort", "ultra_retime"],
    )
    print(f"database: {len(database)} designs, families {sorted(database.families())}")

    # Step 3: ChatLS customization ---------------------------------------------------
    chatls = ChatLS(database)
    result = chatls.customize_and_evaluate(
        DESIGN,
        "mydesign",
        BASELINE_SCRIPT,
        requirement="Optimize for timing: eliminate the negative slack.",
        tool_report=report,
        clock_period=1.5,
    )

    print("\n=== CircuitMentor analysis ===")
    print(result.analysis.summary())
    print("\n=== customized script ===")
    print(result.script)
    print("\n=== CoT trace ===")
    print(result.trace.render() or "(no revisions needed)")

    # Step 4: compare -------------------------------------------------------------------
    print("\n=== QoR comparison ===")
    print(f"baseline:   {baseline.qor.row()}")
    print(f"customized: {result.qor.row()}")
    improvement = result.qor.wns - baseline.qor.wns
    print(f"WNS improvement: {improvement:+.3f} ns")


if __name__ == "__main__":
    main()
