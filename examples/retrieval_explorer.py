#!/usr/bin/env python3
"""Scenario: exploring SynthRAG's three retrieval modes (paper Table I).

Builds the expert database with a metric-learning-trained encoder, then
demonstrates:

1. graph-embedding retrieval — "which database designs are like mine, and
   what synthesis strategy worked for them?" (with Eq. 5 reranking);
2. graph-structure retrieval — Cypher queries fetching module code and
   library cell data;
3. LLM-embedding retrieval — manual pages for natural-language questions,
   reranked by the (simulated) LLM.

Usage::

    python examples/retrieval_explorer.py
"""

from repro.designs.chipyard import generate_family_variant
from repro.eval.harness import _trained_database
from repro.llm import chatls_core
from repro.mentor import build_circuit_graph
from repro.rag import SynthRAG


def main() -> None:
    print("training encoder + building database (metric learning)...")
    database = _trained_database(variants_per_family=2)

    # A query design the database has never seen.
    query = generate_family_variant("gemmini", 9)
    circuit = build_circuit_graph(query.verilog, query.name, top=query.top)
    rag = SynthRAG.build(database, circuit=circuit, llm=chatls_core())

    print("\n--- 1. graph-embedding retrieval (strategies) ---")
    embedding = database.encoder.embed_design(circuit)
    for hit in rag.retrieve_strategies(embedding, k=3):
        print(f"  like {hit.design} (sim {hit.similarity:.3f}) "
              f"-> strategy {hit.strategy}: {' ; '.join(hit.commands)}")

    print("\n--- 2. graph-structure retrieval (Cypher) ---")
    rows = rag.cypher(
        "MATCH (m:Module) WHERE m.category = 'arithmetic' "
        "RETURN m.name, m.category"
    )
    print(f"  arithmetic modules in the query design: "
          f"{[r['m.name'] for r in rows]}")
    code = rag.module_code(f"{query.name}_pe")
    print(f"  fetched module code ({len(code or '')} chars) for the PE")
    cell = rag.cell_info("NAND2_X2")
    print(f"  library cell NAND2_X2: {cell}")

    print("\n--- 3. manual retrieval (LLM embedding + LLM rerank) ---")
    for question in (
        "how do I balance registers across pipeline stages",
        "what limits the fanout of a net",
    ):
        hits = rag.manual(question, k=2)
        print(f"  Q: {question}")
        for hit in hits:
            first_line = hit.text.splitlines()[1].strip()
            print(f"     -> {hit.command}: {first_line}")


if __name__ == "__main__":
    main()
