#!/usr/bin/env python3
"""Scenario: multi-iteration timing closure (the paper's §V-B discussion).

Table III evaluates a *single* customization iteration and leaves ethmac
and tinyRocket violated; the paper notes more iterations are needed.
This example runs ChatLS iteratively — each round re-reads the fresh tool
report, extends the script with incremental refinement commands, and
re-synthesizes — until timing closes.

Usage::

    python examples/iterative_closure.py
"""

from repro.core import ChatLS
from repro.designs import build_default_database, get_benchmark
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script


def main() -> None:
    database = build_default_database(
        variants_per_family=1,
        strategies=["baseline_compile", "ultra_retime", "fanout_buffered"],
    )
    chatls = ChatLS(database)

    for name in ("ethmac", "tinyRocket"):
        bench = get_benchmark(name)
        print(f"\n=== {name} (clock period {bench.clock_period} ns) ===")
        history = chatls.customize_iteratively(
            bench.verilog, bench.name, baseline_script(bench),
            TIMING_REQUIREMENT, rounds=4, k=2,
            top=bench.top, clock_period=bench.clock_period,
        )
        for i, result in enumerate(history, start=1):
            qor = result.qor
            status = "MET" if qor and qor.wns >= 0 else "violated"
            print(f"  iteration {i}: WNS={qor.wns:7.3f}  TNS={qor.tns:8.2f}  "
                  f"area={qor.area:9.1f}  [{status}]")
        final = history[-1]
        if final.qor and final.qor.wns >= 0:
            print(f"  closed in {len(history)} iteration(s); final script tail:")
            for line in final.script.splitlines()[-4:]:
                print(f"    {line}")


if __name__ == "__main__":
    main()
