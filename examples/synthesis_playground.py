#!/usr/bin/env python3
"""Scenario: driving the synthesis engine directly (no LLM in the loop).

Shows the Design-Compiler-substitute as a standalone tool: write RTL, run
DC-format Tcl scripts, read timing/area reports, and see what each
optimization command physically does to the netlist.

Usage::

    python examples/synthesis_playground.py
"""

from repro.designs.generators import gen_imbalanced_pipeline
from repro.synth import DCShell


SCRIPTS = {
    "plain compile": "compile",
    "high effort": "compile -map_effort high",
    "ultra (flattened)": "compile_ultra",
    "ultra + retime": "compile_ultra -retime\noptimize_registers",
    "fanout constrained": "set_max_fanout 12\ncompile_ultra\nbalance_buffer",
}


def main() -> None:
    rtl = gen_imbalanced_pipeline("demo", width=10, heavy_ops=2)
    period = 3.4

    print(f"{'flow':22s} {'WNS':>8} {'TNS':>9} {'area':>9} {'cells':>7} {'regs':>6}")
    for label, commands in SCRIPTS.items():
        shell = DCShell()
        shell.add_design("demo", rtl)
        result = shell.run_script(
            "\n".join(
                [
                    "read_verilog demo",
                    "set_wire_load_model -name 5K_heavy_1k",
                    f"create_clock -period {period} clk",
                    commands,
                ]
            )
        )
        assert result.success, result.error
        q = result.qor
        print(f"{label:22s} {q.wns:8.3f} {q.tns:9.2f} {q.area:9.1f} "
              f"{q.num_cells:7d} {q.num_registers:6d}")

    # Show a critical-path report for the best flow.
    shell = DCShell()
    shell.add_design("demo", rtl)
    shell.run_script(
        "read_verilog demo\nset_wire_load_model -name 5K_heavy_1k\n"
        f"create_clock -period {period} clk\ncompile_ultra -retime"
    )
    print("\n" + shell.timing_report())


if __name__ == "__main__":
    main()
