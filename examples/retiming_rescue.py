#!/usr/bin/env python3
"""Scenario: rescuing an imbalanced pipeline with retiming.

This is the paper's tinyRocket story (§I and Table III): a pipeline whose
heavy multiply stage violates timing.  The pathology is invisible in the
source text — a raw LLM prompt misses it — but CircuitMentor's register-
imbalance analysis surfaces it, SynthRAG retrieves the retiming strategy,
and the customized script closes most of the gap.

The script prints a three-way comparison: baseline vs a raw-LLM baseline
customization (simulated GPT-4o) vs ChatLS.

Usage::

    python examples/retiming_rescue.py
"""

from repro.core import BaselineRunner, ChatLS
from repro.designs import build_default_database, get_benchmark
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script
from repro.llm import gpt4o
from repro.synth import DCShell


def main() -> None:
    bench = get_benchmark("tinyRocket")
    script = baseline_script(bench)

    shell = DCShell()
    shell.add_design(bench.name, bench.verilog, top=bench.top)
    base = shell.run_script(script)
    report = next(out for line, out in base.transcript if line == "report_qor")
    print(f"baseline:  WNS={base.qor.wns:7.3f}  TNS={base.qor.tns:8.2f}  "
          f"area={base.qor.area:9.1f}")

    # Raw-LLM arm: sees only the (truncated) RTL + report.
    runner = BaselineRunner(gpt4o())
    raw = runner.run_pass_at_k(
        bench.verilog, bench.name, script, TIMING_REQUIREMENT,
        k=5, tool_report=report, top=bench.top,
    )
    qor = raw.qor
    print(f"gpt-4o:    WNS={qor.wns:7.3f}  TNS={qor.tns:8.2f}  area={qor.area:9.1f}")

    # ChatLS arm: analysis detects register imbalance -> retiming strategy.
    database = build_default_database(
        variants_per_family=1,
        strategies=["baseline_compile", "ultra_retime", "fanout_buffered"],
    )
    chatls = ChatLS(database)
    result = chatls.customize_pass_at_k(
        bench.verilog, bench.name, script, TIMING_REQUIREMENT,
        k=5, tool_report=report, top=bench.top,
        clock_period=bench.clock_period,
    )
    qor = result.qor
    print(f"ChatLS:    WNS={qor.wns:7.3f}  TNS={qor.tns:8.2f}  area={qor.area:9.1f}")

    print("\nwhy: CircuitMentor flags ->",
          ", ".join(result.analysis.pathologies))
    print("imbalance metric:",
          f"{result.analysis.register_stage_imbalance:.2f} (std/mean of stage arrivals)")
    print("\ncustomized script:")
    print(result.script)


if __name__ == "__main__":
    main()
