"""Benchmark designs: RTL generators, the seven evaluation designs,
the Chipyard-like SoC corpus, and the expert design database."""

from .chipyard import FAMILIES, SoCDesign, generate_corpus, generate_family_variant
from .database import (
    STRATEGIES,
    DatabaseEntry,
    ExpertDatabase,
    Strategy,
    build_default_database,
)
from .opencores import BENCHMARKS, Benchmark, benchmark_names, get_benchmark

__all__ = [
    "FAMILIES",
    "SoCDesign",
    "generate_corpus",
    "generate_family_variant",
    "STRATEGIES",
    "DatabaseEntry",
    "ExpertDatabase",
    "Strategy",
    "build_default_database",
    "BENCHMARKS",
    "Benchmark",
    "benchmark_names",
    "get_benchmark",
]
