"""Parameterized RTL generators: reusable building blocks.

These emit Verilog text (consumed by :mod:`repro.hdl`) for the structural
idioms that the benchmark designs are assembled from: ALUs, multiply-
accumulate pipelines, register files, FIFOs, S-box lookups, XOR/CRC
networks, round-robin arbiters and crossbars.  Each generator is
deterministic given its parameters.
"""

from __future__ import annotations

from ..rand import rng as _seeded_rng

__all__ = [
    "gen_alu",
    "gen_mac_pipeline",
    "gen_regfile",
    "gen_fifo",
    "gen_sbox",
    "gen_xor_network",
    "gen_arbiter",
    "gen_crossbar",
    "gen_counter",
    "gen_lfsr",
    "gen_imbalanced_pipeline",
]


def gen_alu(name: str = "alu", width: int = 16) -> str:
    """A combinational ALU with add/sub/logic/shift/compare ops."""
    return f"""
module {name}(
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input [2:0] op,
  output reg [{width - 1}:0] y,
  output zero
);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = a << b[3:0];
      3'd6: y = a >> b[3:0];
      default: y = {{{width - 1}'d0, a < b}};
    endcase
  end
  assign zero = y == {width}'d0;
endmodule
"""


def gen_mac_pipeline(name: str = "mac", width: int = 8, stages: int = 2) -> str:
    """A registered multiply-accumulate: the wide-arithmetic workhorse."""
    acc_width = 2 * width + 4
    stage_regs = "\n".join(
        f"  reg [{acc_width - 1}:0] p{i};" for i in range(stages)
    )
    stage_chain = "\n".join(
        f"    p{i} <= p{i - 1};" for i in range(1, stages)
    )
    return f"""
module {name}(
  input clk,
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  output reg [{acc_width - 1}:0] acc
);
{stage_regs}
  always @(posedge clk) begin
    p0 <= a * b;
{stage_chain}
    acc <= acc + p{stages - 1};
  end
endmodule
"""


def gen_regfile(name: str = "regfile", width: int = 16, depth: int = 8) -> str:
    """A synchronous-write, asynchronous-read register file (2R1W)."""
    aw = max((depth - 1).bit_length(), 1)
    return f"""
module {name}(
  input clk,
  input we,
  input [{aw - 1}:0] waddr,
  input [{width - 1}:0] wdata,
  input [{aw - 1}:0] raddr1,
  input [{aw - 1}:0] raddr2,
  output [{width - 1}:0] rdata1,
  output [{width - 1}:0] rdata2
);
  reg [{width - 1}:0] mem [0:{depth - 1}];
  assign rdata1 = mem[raddr1];
  assign rdata2 = mem[raddr2];
  always @(posedge clk) begin
    if (we) mem[waddr] <= wdata;
  end
endmodule
"""


def gen_fifo(name: str = "fifo", width: int = 8, depth: int = 8) -> str:
    """A synchronous FIFO with full/empty flags."""
    aw = max((depth - 1).bit_length(), 1)
    return f"""
module {name}(
  input clk,
  input push,
  input pop,
  input [{width - 1}:0] din,
  output [{width - 1}:0] dout,
  output full,
  output empty
);
  reg [{width - 1}:0] mem [0:{depth - 1}];
  reg [{aw}:0] wptr;
  reg [{aw}:0] rptr;
  assign dout = mem[rptr[{aw - 1}:0]];
  assign empty = wptr == rptr;
  assign full = (wptr[{aw - 1}:0] == rptr[{aw - 1}:0]) && (wptr[{aw}] != rptr[{aw}]);
  always @(posedge clk) begin
    if (push && !full) begin
      mem[wptr[{aw - 1}:0]] <= din;
      wptr <= wptr + 1'b1;
    end
    if (pop && !empty) begin
      rptr <= rptr + 1'b1;
    end
  end
endmodule
"""


def gen_sbox(name: str = "sbox", width: int = 8, seed: int = 7) -> str:
    """A random substitution box as a full case table (AES-style)."""
    rng = _seeded_rng(seed)
    entries = list(range(2**width))
    rng.shuffle(entries)
    cases = "\n".join(
        f"      {width}'d{i}: y = {width}'d{v};" for i, v in enumerate(entries)
    )
    return f"""
module {name}(input [{width - 1}:0] x, output reg [{width - 1}:0] y);
  always @(*) begin
    case (x)
{cases}
      default: y = {width}'d0;
    endcase
  end
endmodule
"""


def gen_xor_network(name: str = "xornet", width: int = 32, taps: int = 6, seed: int = 3) -> str:
    """A deep XOR mixing network (MixColumns / CRC flavoured)."""
    rng = _seeded_rng(seed)
    lines = []
    for i in range(width):
        chosen = rng.sample(range(width), min(taps, width))
        expr = " ^ ".join(f"x[{j}]" for j in chosen)
        lines.append(f"  assign y[{i}] = {expr};")
    body = "\n".join(lines)
    return f"""
module {name}(input [{width - 1}:0] x, output [{width - 1}:0] y);
{body}
endmodule
"""


def gen_arbiter(name: str = "arbiter", ports: int = 4) -> str:
    """A fixed-priority arbiter with registered grant outputs."""
    grant_terms = []
    for i in range(ports):
        blockers = " & ".join(f"~req[{j}]" for j in range(i)) or "1'b1"
        grant_terms.append(f"    grant[{i}] <= req[{i}] & ({blockers});")
    body = "\n".join(grant_terms)
    return f"""
module {name}(
  input clk,
  input [{ports - 1}:0] req,
  output reg [{ports - 1}:0] grant
);
  always @(posedge clk) begin
{body}
  end
endmodule
"""


def gen_crossbar(name: str = "xbar", ports: int = 4, width: int = 8) -> str:
    """A full crossbar: each output selects any input (NoC router core)."""
    aw = max((ports - 1).bit_length(), 1)
    ins = ",\n".join(
        f"  input [{width - 1}:0] in{i}" for i in range(ports)
    )
    outs = ",\n".join(
        f"  output reg [{width - 1}:0] out{i}" for i in range(ports)
    )
    sels = ",\n".join(f"  input [{aw - 1}:0] sel{i}" for i in range(ports))
    blocks = []
    for o in range(ports):
        cases = "\n".join(
            f"      {aw}'d{i}: out{o} = in{i};" for i in range(ports)
        )
        blocks.append(
            f"""  always @(*) begin
    case (sel{o})
{cases}
      default: out{o} = {width}'d0;
    endcase
  end"""
        )
    body = "\n".join(blocks)
    return f"""
module {name}(
{ins},
{sels},
{outs}
);
{body}
endmodule
"""


def gen_counter(name: str = "counter", width: int = 16) -> str:
    """An up-counter with synchronous load and enable."""
    return f"""
module {name}(
  input clk,
  input en,
  input load,
  input [{width - 1}:0] d,
  output reg [{width - 1}:0] q
);
  always @(posedge clk) begin
    if (load) q <= d;
    else if (en) q <= q + {width}'d1;
  end
endmodule
"""


def gen_lfsr(name: str = "lfsr", width: int = 16, taps: tuple[int, ...] = (0, 2, 3, 5)) -> str:
    """A Fibonacci LFSR (crypto/DSP flavoured feedback register)."""
    feedback = " ^ ".join(f"q[{t}]" for t in taps if t < width)
    return f"""
module {name}(input clk, input en, output reg [{width - 1}:0] q);
  always @(posedge clk) begin
    if (en) q <= {{q[{width - 2}:0], {feedback}}};
  end
endmodule
"""


def gen_imbalanced_pipeline(
    name: str = "imbpipe", width: int = 8, heavy_ops: int = 2
) -> str:
    """A pipeline with one overloaded stage: the retiming showcase.

    Stage 1 is trivial (register), stage 2 chains ``heavy_ops`` multipliers
    back to back; retiming can push registers into the heavy stage.
    """
    heavy = "s1"
    chain_decls = []
    chain_stmts = []
    for i in range(heavy_ops):
        chain_decls.append(f"  wire [{width - 1}:0] h{i};")
        src = heavy if i == 0 else f"h{i - 1}"
        chain_stmts.append(
            f"  assign h{i} = ({src} * k{i}) + {{{src}[{width - 2}:0], {src}[{width - 1}]}};"
        )
    ks = ",\n".join(f"  input [{width - 1}:0] k{i}" for i in range(heavy_ops))
    return f"""
module {name}(
  input clk,
  input [{width - 1}:0] din,
{ks},
  output reg [{width - 1}:0] dout
);
  reg [{width - 1}:0] s1;
{chr(10).join(chain_decls)}
{chr(10).join(chain_stmts)}
  always @(posedge clk) begin
    s1 <= din;
    dout <= h{heavy_ops - 1};
  end
endmodule
"""
