"""The seven evaluation benchmarks (OpenROAD/OpenCores flavoured).

Synthetic RTL stand-ins for the paper's Table IV designs.  Each carries the
structural *pathology* that makes its paper row behave the way it does:

========== ============================================================
aes        S-box rounds + deep XOR mixing: long combinational cones that
           sizing/balancing/flattening can fix completely.
dynamic_node NoC router: arbiter + crossbar, control-dominated; timing is
           easy, area/mux structure matters.
ethmac     MAC controller: very high-fanout control strobes + FIFOs;
           buffer balancing is the lever, one iteration is not enough.
jpeg       DCT-ish wide multiply-accumulate arrays: arithmetic-dominated,
           meets timing at its (slow) clock but burns area that better
           scripts recover.
riscv32i   Small RISC CPU: regfile + ALU + decode, comfortable timing.
swerv      Large superscalar-ish pipeline: two parallel exec clusters,
           big but balanced; positive slack with room to trade.
tinyRocket Deeply imbalanced 5-stage pipeline around one heavy multiply
           stage: retiming is the winning move.
========== ============================================================

Sizes are scaled to keep a full Pass@5 evaluation tractable in CI while
preserving relative order (swerv largest, riscv32i smallest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generators import (
    gen_alu,
    gen_arbiter,
    gen_counter,
    gen_crossbar,
    gen_fifo,
    gen_imbalanced_pipeline,
    gen_lfsr,
    gen_mac_pipeline,
    gen_regfile,
    gen_sbox,
    gen_xor_network,
)

__all__ = ["Benchmark", "BENCHMARKS", "get_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class Benchmark:
    """One evaluation design."""

    name: str
    top: str
    verilog: str
    clock_period: float  # ns, the evaluation constraint
    description: str
    pathologies: tuple[str, ...] = field(default_factory=tuple)


def _aes() -> Benchmark:
    sbox = gen_sbox("aes_sbox", width=6, seed=11)
    mix = gen_xor_network("aes_mix", width=24, taps=7, seed=5)
    top = """
module aes(
  input clk,
  input [23:0] din,
  input [23:0] key,
  output reg [23:0] dout
);
  reg [23:0] state;
  wire [23:0] subbed;
  wire [23:0] mixed;
  aes_sbox s0 (.x(state[5:0]),   .y(subbed[5:0]));
  aes_sbox s1 (.x(state[11:6]),  .y(subbed[11:6]));
  aes_sbox s2 (.x(state[17:12]), .y(subbed[17:12]));
  aes_sbox s3 (.x(state[23:18]), .y(subbed[23:18]));
  aes_mix m0 (.x(subbed), .y(mixed));
  always @(posedge clk) begin
    state <= din ^ key;
    dout <= mixed ^ {key[11:0], key[23:12]};
  end
endmodule
"""
    return Benchmark(
        name="aes",
        top="aes",
        verilog=sbox + mix + top,
        clock_period=4.71,
        description="AES-like round: S-box substitution plus XOR mixing network",
        pathologies=("long_combinational", "xor_trees", "hierarchy_boundaries"),
    )


def _dynamic_node() -> Benchmark:
    arb = gen_arbiter("dn_arbiter", ports=5)
    xbar = gen_crossbar("dn_xbar", ports=5, width=16)
    fifo = gen_fifo("dn_fifo", width=16, depth=4)
    top = """
module dynamic_node(
  input clk,
  input [4:0] req,
  input [15:0] in0, in1, in2, in3, in4,
  input [2:0] sel0, sel1, sel2, sel3, sel4,
  input push, pop,
  output [15:0] out0, out1, out2, out3, out4,
  output [4:0] grant,
  output fifo_full, fifo_empty,
  output [15:0] fifo_out
);
  dn_arbiter arb (.clk(clk), .req(req), .grant(grant));
  dn_xbar xbar (
    .in0(in0), .in1(in1), .in2(in2), .in3(in3), .in4(in4),
    .sel0(sel0), .sel1(sel1), .sel2(sel2), .sel3(sel3), .sel4(sel4),
    .out0(out0), .out1(out1), .out2(out2), .out3(out3), .out4(out4)
  );
  dn_fifo buf0 (
    .clk(clk), .push(push), .pop(pop), .din(in0),
    .dout(fifo_out), .full(fifo_full), .empty(fifo_empty)
  );
endmodule
"""
    return Benchmark(
        name="dynamic_node",
        top="dynamic_node",
        verilog=arb + xbar + fifo + top,
        clock_period=2.13,
        description="NoC router node: priority arbiter, 5x5 crossbar, buffer FIFO",
        pathologies=("control_dominated", "mux_structures"),
    )


def _ethmac() -> Benchmark:
    fifo = gen_fifo("eth_fifo", width=8, depth=16)
    crc = gen_xor_network("eth_crc", width=32, taps=9, seed=13)
    crc2 = gen_xor_network("eth_crc2", width=32, taps=9, seed=29)
    crc3 = gen_xor_network("eth_crc3", width=32, taps=9, seed=41)
    top = """
module ethmac(
  input clk,
  input [7:0] rx_data,
  input rx_valid,
  input tx_ready,
  input [31:0] cfg,
  output reg [7:0] tx_data,
  output reg tx_valid,
  output [31:0] crc_out,
  output rx_full, rx_empty, tx_full, tx_empty
);
  // One control strobe fans out across the whole datapath: the classic
  // high-fanout-net pathology.
  wire strobe;
  assign strobe = rx_valid & tx_ready & cfg[0];
  reg [31:0] crc_state;
  wire [31:0] crc_next;
  // Three serial CRC rounds per cycle: an irreducible combinational core
  // that one optimization iteration cannot fully flatten.
  wire [31:0] crc_a, crc_b;
  eth_crc  crc0 (.x(crc_state ^ {rx_data, rx_data, rx_data, rx_data}), .y(crc_a));
  eth_crc2 crc1 (.x(crc_a + crc_state), .y(crc_b));
  eth_crc3 crc2x (.x(crc_b ^ {crc_a[15:0], crc_b[31:16]}), .y(crc_next));
  assign crc_out = crc_state;
  wire [7:0] rx_q;
  wire [7:0] tx_q;
  eth_fifo rx_fifo (
    .clk(clk), .push(strobe), .pop(strobe & cfg[1]), .din(rx_data),
    .dout(rx_q), .full(rx_full), .empty(rx_empty)
  );
  eth_fifo tx_fifo (
    .clk(clk), .push(strobe & cfg[2]), .pop(strobe & cfg[3]), .din(rx_q ^ cfg[15:8]),
    .dout(tx_q), .full(tx_full), .empty(tx_empty)
  );
  reg [31:0] ctrl;
  always @(posedge clk) begin
    if (strobe) begin
      crc_state <= crc_next;
      ctrl <= {ctrl[30:0], ^crc_next};
      tx_data <= tx_q ^ ctrl[7:0];
      tx_valid <= |ctrl[31:24];
    end
  end
endmodule
"""
    return Benchmark(
        name="ethmac",
        top="ethmac",
        verilog=fifo + crc + crc2 + crc3 + top,
        clock_period=2.6,
        description="Ethernet MAC slice: CRC network, RX/TX FIFOs, high-fanout strobes",
        pathologies=("high_fanout", "fifo_heavy", "hard_timing"),
    )


def _jpeg() -> Benchmark:
    mac = gen_mac_pipeline("jpeg_mac", width=10, stages=2)
    # Zig-zag scan stage written as a deliberately linear XOR chain: depth
    # N that chain balancing collapses to log N.  Combined with nested
    # hierarchy boundaries, this makes jpeg *very* fixable by a good
    # script (Table III: every model closes jpeg's -1.17 baseline WNS).
    zigzag_terms = " ^ ".join(f"stage{i}" for i in range(10))
    zigzag_decls = "\n".join(
        f"  wire [23:0] stage{i};\n"
        f"  assign stage{i} = {{acc_in[{i}:0], acc_in[23:{i + 1}]}};"
        for i in range(10)
    )
    zigzag = f"""
module jpeg_zigzag(input [23:0] acc_in, output [23:0] zz);
{zigzag_decls}
  assign zz = (((((((((stage0 ^ stage1) ^ stage2) ^ stage3) ^ stage4)
             ^ stage5) ^ stage6) ^ stage7) ^ stage8) ^ stage9);
endmodule
"""
    lane = """
module jpeg_lane(input clk, input [9:0] a, input [9:0] b, output [23:0] zz);
  wire [23:0] acc;
  jpeg_mac core (.clk(clk), .a(a), .b(b), .acc(acc));
  jpeg_zigzag scan (.acc_in(acc), .zz(zz));
endmodule
"""
    top = """
module jpeg(
  input clk,
  input [9:0] px0, px1, px2, px3,
  output [23:0] y0, y1, y2, y3,
  output reg [23:0] dc_sum
);
  wire [23:0] a0, a1, a2, a3;
  jpeg_lane m0 (.clk(clk), .a(px0), .b(px1), .zz(a0));
  jpeg_lane m1 (.clk(clk), .a(px1), .b(px2), .zz(a1));
  jpeg_lane m2 (.clk(clk), .a(px2), .b(px3), .zz(a2));
  jpeg_lane m3 (.clk(clk), .a(px3), .b(px0), .zz(a3));
  assign y0 = a0;
  assign y1 = a1;
  assign y2 = a2;
  assign y3 = a3;
  always @(posedge clk) begin
    dc_sum <= (a0 + a1) + (a2 + a3);
  end
endmodule
"""
    return Benchmark(
        name="jpeg",
        top="jpeg",
        verilog=mac + zigzag + lane + top,
        clock_period=3.38,
        description="JPEG DCT slice: pipelined MAC lanes plus zig-zag scan network",
        pathologies=("wide_arithmetic", "area_heavy", "unbalanced_chains"),
    )


def _riscv32i() -> Benchmark:
    alu = gen_alu("rv_alu", width=16)
    regfile = gen_regfile("rv_regfile", width=16, depth=8)
    top = """
module riscv32i(
  input clk,
  input [15:0] instr,
  input we,
  output reg [15:0] result,
  output zero_flag
);
  wire [15:0] rs1, rs2;
  wire [15:0] alu_y;
  wire alu_zero;
  rv_regfile rf (
    .clk(clk), .we(we), .waddr(instr[8:6]), .wdata(alu_y),
    .raddr1(instr[2:0]), .raddr2(instr[5:3]),
    .rdata1(rs1), .rdata2(rs2)
  );
  rv_alu alu (
    .a(rs1), .b(rs2), .op(instr[11:9]), .y(alu_y), .zero(alu_zero)
  );
  assign zero_flag = alu_zero;
  always @(posedge clk) begin
    result <= alu_y;
  end
endmodule
"""
    return Benchmark(
        name="riscv32i",
        top="riscv32i",
        verilog=alu + regfile + top,
        clock_period=4.81,
        description="Small RISC core: 2R1W register file plus single-cycle ALU",
        pathologies=("regfile", "easy_timing"),
    )


def _swerv() -> Benchmark:
    alu = gen_alu("sw_alu", width=16)
    mac = gen_mac_pipeline("sw_mac", width=8, stages=3)
    regfile = gen_regfile("sw_regfile", width=16, depth=8)
    lfsr = gen_lfsr("sw_bpred", width=16)
    counter = gen_counter("sw_pc", width=16)
    top = """
module swerv(
  input clk,
  input [15:0] instr0,
  input [15:0] instr1,
  input we,
  output reg [15:0] commit0,
  output reg [15:0] commit1,
  output [19:0] mac_out,
  output [15:0] pc_out,
  output [15:0] bp_out
);
  wire [15:0] rs1a, rs2a, rs1b, rs2b;
  wire [15:0] ya, yb;
  wire za, zb;
  sw_regfile rf0 (
    .clk(clk), .we(we), .waddr(instr0[8:6]), .wdata(ya),
    .raddr1(instr0[2:0]), .raddr2(instr0[5:3]), .rdata1(rs1a), .rdata2(rs2a)
  );
  sw_regfile rf1 (
    .clk(clk), .we(we), .waddr(instr1[8:6]), .wdata(yb),
    .raddr1(instr1[2:0]), .raddr2(instr1[5:3]), .rdata1(rs1b), .rdata2(rs2b)
  );
  sw_alu ex0 (.a(rs1a), .b(rs2a), .op(instr0[11:9]), .y(ya), .zero(za));
  sw_alu ex1 (.a(rs1b), .b(rs2b), .op(instr1[11:9]), .y(yb), .zero(zb));
  sw_mac mul (.clk(clk), .a(instr0[7:0]), .b(instr1[7:0]), .acc(mac_out));
  sw_pc pc (.clk(clk), .en(1'b1), .load(za), .d(ya), .q(pc_out));
  sw_bpred bp (.clk(clk), .en(zb), .q(bp_out));
  always @(posedge clk) begin
    commit0 <= ya;
    commit1 <= yb;
  end
endmodule
"""
    return Benchmark(
        name="swerv",
        top="swerv",
        verilog=alu + mac + regfile + lfsr + counter + top,
        clock_period=5.35,
        description="SweRV-like dual-issue slice: two exec clusters, MAC, fetch",
        pathologies=("large", "dual_datapath"),
    )


def _tiny_rocket() -> Benchmark:
    imb = gen_imbalanced_pipeline("tr_pipe", width=10, heavy_ops=2)
    regfile = gen_regfile("tr_regfile", width=10, depth=8)
    top = """
module tinyRocket(
  input clk,
  input [9:0] din,
  input [9:0] k0,
  input [9:0] k1,
  input we,
  input [2:0] waddr, raddr1, raddr2,
  output [9:0] dmem,
  output reg [9:0] wb
);
  wire [9:0] pipe_out;
  wire [9:0] r1, r2;
  tr_pipe pipe (.clk(clk), .din(din), .k0(k0), .k1(k1), .dout(pipe_out));
  tr_regfile rf (
    .clk(clk), .we(we), .waddr(waddr), .wdata(pipe_out),
    .raddr1(raddr1), .raddr2(raddr2), .rdata1(r1), .rdata2(r2)
  );
  assign dmem = r1 ^ r2;
  always @(posedge clk) begin
    wb <= r1 + r2;
  end
endmodule
"""
    return Benchmark(
        name="tinyRocket",
        top="tinyRocket",
        verilog=imb + regfile + top,
        clock_period=3.55,
        description="Rocket-like pipeline with one overloaded multiply stage",
        pathologies=("register_imbalance", "retiming_target", "hard_timing"),
    )


_BUILDERS = {
    "aes": _aes,
    "dynamic_node": _dynamic_node,
    "ethmac": _ethmac,
    "jpeg": _jpeg,
    "riscv32i": _riscv32i,
    "swerv": _swerv,
    "tinyRocket": _tiny_rocket,
}

#: Lazily-built benchmark cache.
BENCHMARKS: dict[str, Benchmark] = {}


def get_benchmark(name: str) -> Benchmark:
    """Return (building on first use) the named benchmark design."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(_BUILDERS)}")
    if name not in BENCHMARKS:
        BENCHMARKS[name] = _BUILDERS[name]()
    return BENCHMARKS[name]


def benchmark_names() -> list[str]:
    """All seven Table IV designs, in the paper's order."""
    return ["aes", "dynamic_node", "ethmac", "jpeg", "riscv32i", "swerv", "tinyRocket"]
