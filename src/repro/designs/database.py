"""The expert design database (paper Table II, §V intro).

Open-source designs are synthesized under several compile/optimization
strategies; the scripts, QoR results and CircuitMentor embeddings are
stored so SynthRAG can retrieve "designs like this one, and what worked
for them".  The best-timing script per design is the *expert draft* the
paper describes converting to Design Compiler format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mentor.circuit_graph import build_circuit_graph
from ..mentor.embeddings import CircuitEncoder
from ..synth.dcshell import DCShell
from ..synth.reports import QoRSnapshot
from ..vectorstore import make_index
from .chipyard import SoCDesign, generate_corpus

__all__ = ["Strategy", "STRATEGIES", "DatabaseEntry", "ExpertDatabase", "build_default_database"]


@dataclass(frozen=True)
class Strategy:
    """One named synthesis strategy (a script template)."""

    name: str
    description: str
    commands: tuple[str, ...]
    targets: tuple[str, ...]  # pathologies / categories it addresses

    def script(self, design: str, period: float, wireload: str = "5K_heavy_1k") -> str:
        lines = [
            f"read_verilog {design}",
            f"current_design {design}",
            "link",
            f"set_wire_load_model -name {wireload}",
            f"create_clock -period {period} clk",
            *self.commands,
        ]
        return "\n".join(lines)


STRATEGIES: dict[str, Strategy] = {
    strategy.name: strategy
    for strategy in (
        Strategy(
            name="baseline_compile",
            description="Plain medium-effort compile; the reference flow.",
            commands=("compile",),
            targets=(),
        ),
        Strategy(
            name="high_effort",
            description=(
                "High map effort: arithmetic resynthesis, chain balancing "
                "and critical-path sizing. Good default for arithmetic blocks."
            ),
            commands=("compile -map_effort high",),
            targets=("wide_arithmetic", "unbalanced_chains"),
        ),
        Strategy(
            name="ultra_flatten",
            description=(
                "compile_ultra with auto-ungrouping: removes hierarchy "
                "boundaries so optimization crosses module edges. Best for "
                "designs whose critical path spans instances."
            ),
            commands=("ungroup -all -flatten", "compile_ultra"),
            targets=("hierarchy_boundaries", "long_combinational"),
        ),
        Strategy(
            name="ultra_retime",
            description=(
                "compile_ultra -retime plus optimize_registers: moves "
                "registers across logic to balance pipeline stages. The "
                "move for register-imbalanced designs with long stages."
            ),
            commands=("compile_ultra -retime", "optimize_registers"),
            targets=("register_imbalance", "retiming_target"),
        ),
        Strategy(
            name="fanout_buffered",
            description=(
                "Fanout-constrained compile_ultra plus explicit buffer "
                "balancing: splits high-fanout nets with buffer trees. For "
                "control strobes and clock-enable style fanout."
            ),
            commands=("set_max_fanout 16", "compile_ultra", "balance_buffer"),
            targets=("high_fanout",),
        ),
        Strategy(
            name="area_recovery",
            description=(
                "Area-constrained compile: downsize off-critical cells. For "
                "designs that already meet timing comfortably."
            ),
            commands=("set_max_area 0", "compile"),
            targets=("easy_timing", "control"),
        ),
    )
}


@dataclass
class DatabaseEntry:
    """One design's record in the expert database."""

    design: SoCDesign
    embedding: np.ndarray
    module_embeddings: dict[str, np.ndarray]
    category: str
    clock_period: float
    qor: dict[str, QoRSnapshot] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def best_strategy(self) -> str:
        """QoR-best strategy: meet timing at least area, else best slack.

        Among strategies that close timing the cheapest one wins (so the
        heavyweight flows only win where they are actually needed); when
        nothing meets timing the best slack wins.
        """
        if not self.qor:
            raise ValueError(f"no QoR recorded for {self.design.name}")
        met = [s for s, q in self.qor.items() if q.cps >= 0]
        if met:
            return min(met, key=lambda s: self.qor[s].area)
        return max(self.qor, key=lambda s: round(self.qor[s].cps, 4))

    @property
    def expert_script(self) -> str:
        return STRATEGIES[self.best_strategy].script(
            self.design.name, self.clock_period
        )

    def characteristics(self) -> dict[str, float]:
        """Reranking metrics c_i (paper Eq. 5): timing/area/power of best run."""
        best = self.qor[self.best_strategy]
        return {"cps": best.cps, "area": best.area, "leakage": best.leakage_nw}


class ExpertDatabase:
    """Embedding-indexed store of designs + strategies + QoR."""

    def __init__(self, encoder: CircuitEncoder) -> None:
        self.encoder = encoder
        self.entries: dict[str, DatabaseEntry] = {}
        # Index choice rides the REPRO_ANN gate: exact FlatIndex by
        # default, HNSW + exact rerank for million-module corpora.
        self.design_index = make_index(dim=encoder.embedding_dim, metric="cosine")
        self.module_index = make_index(dim=encoder.embedding_dim, metric="cosine")

    def add_design(
        self,
        design: SoCDesign,
        strategies: list[str] | None = None,
        tighten: float = 0.85,
    ) -> DatabaseEntry:
        """Synthesize ``design`` under each strategy and index the results.

        The clock period is auto-calibrated: a loose compile measures the
        achievable delay and the period is tightened by ``tighten`` so
        strategy choice actually matters for the recorded QoR.
        """
        strategies = strategies or list(STRATEGIES)
        circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
        embedding = self.encoder.embed_design(circuit)
        module_embeddings = self.encoder.embed_modules(circuit)

        probe_shell = DCShell()
        probe_shell.add_design(design.name, design.verilog, top=design.top)
        probe = probe_shell.run_script(
            STRATEGIES["baseline_compile"].script(design.name, period=10.0)
        )
        if not probe.success:
            raise RuntimeError(f"probe synthesis failed: {probe.error}")
        period = round((10.0 - probe.qor.cps) * tighten, 3)

        entry = DatabaseEntry(
            design=design,
            embedding=embedding,
            module_embeddings=module_embeddings,
            category=design.category,
            clock_period=period,
        )
        for strategy_name in strategies:
            shell = DCShell()
            shell.add_design(design.name, design.verilog, top=design.top)
            result = shell.run_script(
                STRATEGIES[strategy_name].script(design.name, period)
            )
            if result.success and result.qor is not None:
                entry.qor[strategy_name] = result.qor
            else:
                entry.failed[strategy_name] = result.error or "unknown"
        self.entries[design.name] = entry
        self.design_index.add(design.name, embedding, payload=entry)
        if module_embeddings:
            # One contiguous block copy instead of a per-module add loop.
            mod_names = list(module_embeddings)
            self.module_index.add_batch(
                [(design.name, mod_name) for mod_name in mod_names],
                np.stack([module_embeddings[name] for name in mod_names]),
                payloads=[entry] * len(mod_names),
            )
        return entry

    # -- multi-query retrieval -------------------------------------------------

    def search_designs(self, query_embeddings: np.ndarray, k: int = 3) -> list[list]:
        """Design-index hits for one or many query embeddings.

        More than one query in hand routes through the index's stacked
        ``search_batch`` kernel (one distance computation for the whole
        batch — exact under the default :class:`FlatIndex`, lockstep beam
        under ``REPRO_ANN``); a single query keeps the scalar path.
        """
        query_embeddings = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
        if query_embeddings.shape[0] == 1:
            return [self.design_index.search(query_embeddings[0], k=k)]
        return self.design_index.search_batch(query_embeddings, k=k)

    def search_modules(self, query_embeddings: np.ndarray, k: int = 3) -> list[list]:
        """Module-index twin of :meth:`search_designs`."""
        query_embeddings = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
        if query_embeddings.shape[0] == 1:
            return [self.module_index.search(query_embeddings[0], k=k)]
        return self.module_index.search_batch(query_embeddings, k=k)

    def __len__(self) -> int:
        return len(self.entries)

    def families(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for name, entry in self.entries.items():
            out.setdefault(entry.design.family, []).append(name)
        return out

    def table2(self) -> list[dict]:
        """Paper Table II: category -> components overview."""
        rows: dict[str, set[str]] = {}
        for entry in self.entries.values():
            rows.setdefault(entry.category, set()).add(entry.design.family)
        return [
            {"category": category, "components": sorted(components)}
            for category, components in sorted(rows.items())
        ]


def build_default_database(
    variants_per_family: int = 2,
    strategies: list[str] | None = None,
    encoder: CircuitEncoder | None = None,
) -> ExpertDatabase:
    """Build the standard database over the Table II corpus."""
    encoder = encoder or CircuitEncoder()
    db = ExpertDatabase(encoder)
    for design in generate_corpus(variants_per_family):
        db.add_design(design, strategies=strategies)
    return db
