"""Chipyard-like SoC configuration generator (paper Table II, §V-A).

Generates families of related designs — processor cores (Rocket/Sodor
style), ML accelerators (NVDLA/Gemmini style), vector SIMD units, FFT
signal processing, SHA3 crypto — each with parameter variations.  Family
labels are the retrieval ground truth for the SynthRAG F1 experiment
(paper Fig. 5): a query design should retrieve same-family entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .generators import (
    gen_alu,
    gen_counter,
    gen_fifo,
    gen_lfsr,
    gen_mac_pipeline,
    gen_regfile,
    gen_sbox,
    gen_xor_network,
)

__all__ = ["FAMILIES", "SoCDesign", "generate_family_variant", "generate_corpus"]

#: The seven component families of Table II.
FAMILIES = {
    "rocket": "Processor Core",
    "sodor": "Processor Core",
    "nvdla": "Machine Learning Accelerator",
    "gemmini": "Machine Learning Accelerator",
    "simd": "Vector Arithmetic",
    "fft": "Signal Processing",
    "sha3": "Cryptographic Arithmetic",
}


@dataclass(frozen=True)
class SoCDesign:
    """One generated design with its ground-truth family label."""

    name: str
    family: str
    category: str
    verilog: str
    top: str


def _rocket(name: str, width: int, depth: int) -> str:
    alu = gen_alu(f"{name}_alu", width=width)
    rf = gen_regfile(f"{name}_rf", width=width, depth=depth)
    pc = gen_counter(f"{name}_pc", width=width)
    return alu + rf + pc + f"""
module {name}(
  input clk,
  input [{width - 1}:0] instr,
  input we,
  output reg [{width - 1}:0] result,
  output [{width - 1}:0] pc
);
  wire [{width - 1}:0] rs1, rs2, y;
  wire zero;
  {name}_rf rf (.clk(clk), .we(we), .waddr(instr[8:6]), .wdata(y),
     .raddr1(instr[2:0]), .raddr2(instr[5:3]), .rdata1(rs1), .rdata2(rs2));
  {name}_alu alu (.a(rs1), .b(rs2), .op(instr[11:9]), .y(y), .zero(zero));
  {name}_pc pcreg (.clk(clk), .en(1'b1), .load(zero), .d(y), .q(pc));
  always @(posedge clk) result <= y;
endmodule
"""


def _sodor(name: str, width: int, depth: int) -> str:
    alu = gen_alu(f"{name}_alu", width=width)
    rf = gen_regfile(f"{name}_rf", width=width, depth=depth)
    return alu + rf + f"""
module {name}(
  input clk,
  input [{width - 1}:0] instr,
  input we,
  output reg [{width - 1}:0] result
);
  wire [{width - 1}:0] rs1, rs2, y;
  wire zero;
  {name}_rf rf (.clk(clk), .we(we), .waddr(instr[8:6]), .wdata(y),
     .raddr1(instr[2:0]), .raddr2(instr[5:3]), .rdata1(rs1), .rdata2(rs2));
  {name}_alu alu (.a(rs1), .b(rs2), .op(instr[11:9]), .y(y), .zero(zero));
  always @(posedge clk) result <= y;
endmodule
"""


def _nvdla(name: str, width: int, lanes: int) -> str:
    mac = gen_mac_pipeline(f"{name}_mac", width=width, stages=2)
    acc_width = 2 * width + 4
    insts = "\n".join(
        f"  {name}_mac m{i} (.clk(clk), .a(a{i}), .b(w{i}), .acc(acc{i}));"
        for i in range(lanes)
    )
    ports_a = ",\n".join(f"  input [{width - 1}:0] a{i}" for i in range(lanes))
    ports_w = ",\n".join(f"  input [{width - 1}:0] w{i}" for i in range(lanes))
    ports_o = ",\n".join(
        f"  output [{acc_width - 1}:0] acc{i}" for i in range(lanes)
    )
    return mac + f"""
module {name}(
  input clk,
{ports_a},
{ports_w},
{ports_o}
);
{insts}
endmodule
"""


def _gemmini(name: str, width: int, lanes: int) -> str:
    # Systolic-ish: chained MACs, output of lane i feeds lane i+1's b.
    mac = gen_mac_pipeline(f"{name}_pe", width=width, stages=1)
    acc_width = 2 * width + 4
    insts = []
    for i in range(lanes):
        b_src = "b0" if i == 0 else f"acc{i - 1}[{width - 1}:0]"
        insts.append(
            f"  {name}_pe pe{i} (.clk(clk), .a(a{i}), .b({b_src}), .acc(acc{i}));"
        )
    ports_a = ",\n".join(f"  input [{width - 1}:0] a{i}" for i in range(lanes))
    decls = "\n".join(f"  wire [{acc_width - 1}:0] acc{i};" for i in range(lanes))
    return mac + f"""
module {name}(
  input clk,
  input [{width - 1}:0] b0,
{ports_a},
  output [{acc_width - 1}:0] result
);
{decls}
{chr(10).join(insts)}
  assign result = acc{lanes - 1};
endmodule
"""


def _simd(name: str, width: int, lanes: int) -> str:
    alu = gen_alu(f"{name}_lane", width=width)
    insts = "\n".join(
        f"  {name}_lane l{i} (.a(a[{(i + 1) * width - 1}:{i * width}]), "
        f".b(b[{(i + 1) * width - 1}:{i * width}]), .op(op), "
        f".y(y[{(i + 1) * width - 1}:{i * width}]), .zero(z[{i}]));"
        for i in range(lanes)
    )
    total = width * lanes
    return alu + f"""
module {name}(
  input [{total - 1}:0] a,
  input [{total - 1}:0] b,
  input [2:0] op,
  output [{total - 1}:0] y,
  output [{lanes - 1}:0] z
);
{insts}
endmodule
"""


def _fft(name: str, width: int, stages: int) -> str:
    # Radix-2 butterfly chain with registered stages.
    mac = gen_mac_pipeline(f"{name}_bf", width=width, stages=1)
    acc_width = 2 * width + 4
    body = []
    for i in range(stages):
        src_r = "in_r" if i == 0 else f"r{i - 1}"
        src_i = "in_i" if i == 0 else f"q{i - 1}"
        body.append(f"""
  reg [{width - 1}:0] r{i}, q{i};
  always @(posedge clk) begin
    r{i} <= {src_r} + {src_i};
    q{i} <= {src_r} - {src_i};
  end""")
    return mac + f"""
module {name}(
  input clk,
  input [{width - 1}:0] in_r,
  input [{width - 1}:0] in_i,
  input [{width - 1}:0] twiddle,
  output [{width - 1}:0] out_r,
  output [{width - 1}:0] out_i,
  output [{acc_width - 1}:0] scaled
);
{chr(10).join(body)}
  assign out_r = r{stages - 1};
  assign out_i = q{stages - 1};
  {name}_bf tw (.clk(clk), .a(r{stages - 1}), .b(twiddle), .acc(scaled));
endmodule
"""


def _sha3(name: str, width: int, rounds: int) -> str:
    nets = "".join(
        gen_xor_network(f"{name}_theta{i}", width=width, taps=5, seed=17 + i)
        for i in range(rounds)
    )
    sbox = gen_sbox(f"{name}_chi", width=5, seed=23)
    chain = []
    for i in range(rounds):
        src = "state" if i == 0 else f"t{i - 1}"
        chain.append(f"  wire [{width - 1}:0] t{i};")
        chain.append(f"  {name}_theta{i} th{i} (.x({src}), .y(t{i}));")
    return nets + sbox + f"""
module {name}(
  input clk,
  input [{width - 1}:0] din,
  output reg [{width - 1}:0] state,
  output [4:0] mixed
);
{chr(10).join(chain)}
  {name}_chi chi (.x(state[4:0]), .y(mixed));
  always @(posedge clk) state <= din ^ t{rounds - 1};
endmodule
"""


_FAMILY_BUILDERS = {
    "rocket": lambda name, v: _rocket(name, width=12 + 4 * (v % 2), depth=8),
    "sodor": lambda name, v: _sodor(name, width=12 + 4 * (v % 2), depth=4 + 4 * (v % 2)),
    "nvdla": lambda name, v: _nvdla(name, width=6 + (v % 3), lanes=2 + v % 2),
    "gemmini": lambda name, v: _gemmini(name, width=6 + (v % 3), lanes=2 + v % 2),
    "simd": lambda name, v: _simd(name, width=8, lanes=2 + v % 3),
    "fft": lambda name, v: _fft(name, width=8 + 2 * (v % 2), stages=2 + v % 3),
    "sha3": lambda name, v: _sha3(name, width=24 + 8 * (v % 2), rounds=2 + v % 2),
}


def generate_family_variant(family: str, variant: int) -> SoCDesign:
    """One parameterized variant of a component family."""
    if family not in _FAMILY_BUILDERS:
        raise KeyError(f"unknown family {family!r}; known: {sorted(_FAMILY_BUILDERS)}")
    name = f"{family}_v{variant}"
    verilog = _FAMILY_BUILDERS[family](name, variant)
    return SoCDesign(
        name=name,
        family=family,
        category=FAMILIES[family],
        verilog=verilog,
        top=name,
    )


def generate_corpus(variants_per_family: int = 3) -> list[SoCDesign]:
    """The full labelled corpus used by database building and Fig. 5."""
    corpus = []
    for family in FAMILIES:
        for v in range(variants_per_family):
            corpus.append(generate_family_variant(family, v))
    return corpus
