"""Plain-text table/figure rendering for the experiment harness."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render a fixed-width text table (the paper-table analogue)."""
    columns = [
        [str(h)] + [_fmt(row[i]) for row in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence[tuple[Any, Any]], value_format: str = "{:.3f}"
) -> str:
    """Render one figure series as ``x -> y`` lines."""
    lines = [f"series: {name}"]
    for x, y in points:
        value = value_format.format(y) if isinstance(y, float) else str(y)
        lines.append(f"  {x}: {value}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
