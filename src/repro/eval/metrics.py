"""Evaluation metrics: precision/recall/F1 (paper Eq. 7) and pass@k."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["RetrievalScore", "precision_recall_f1", "mean_f1", "pass_at_k"]


@dataclass(frozen=True)
class RetrievalScore:
    """P/R/F1 for one query."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def precision_recall_f1(
    retrieved: Sequence, relevant: Iterable, k: int | None = None
) -> RetrievalScore:
    """Score one retrieval against its relevant set (paper Eq. 7).

    Args:
        retrieved: ranked retrieval results (ids).
        relevant: the ground-truth relevant ids.
        k: optionally truncate retrieved to the top-k before scoring.

    Recall is computed against ``min(len(relevant), len(retrieved))`` so a
    top-k query is not penalized for a relevant set larger than k.
    """
    relevant_set = set(relevant)
    items = list(retrieved[:k] if k else retrieved)
    if not items:
        return RetrievalScore(precision=0.0, recall=0.0)
    true_positives = sum(1 for item in items if item in relevant_set)
    precision = true_positives / len(items)
    denom = min(len(relevant_set), len(items))
    recall = true_positives / denom if denom else 0.0
    return RetrievalScore(precision=precision, recall=recall)


def mean_f1(scores: Iterable[RetrievalScore]) -> float:
    scores = list(scores)
    if not scores:
        return 0.0
    return sum(s.f1 for s in scores) / len(scores)


def pass_at_k(successes: Sequence[bool]) -> bool:
    """Whether any of the k samples succeeded (Table III's Pass@5)."""
    return any(successes)
