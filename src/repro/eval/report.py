"""Print every reproduced table and figure.

Usage::

    python -m repro.eval.report [--fast]

``--fast`` shrinks the database/epochs for a quicker (but still complete)
run.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..designs.database import build_default_database
from .harness import (
    _trained_database,
    run_fig4_metric_learning,
    run_fig5_synthrag,
    run_table3_customization,
    run_table4_baseline,
)
from .tables import render_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller runs")
    args = parser.parse_args(argv)

    start = time.time()
    print("=" * 72)
    table4 = run_table4_baseline()
    print(table4.render())

    print()
    print("=" * 72)
    database = build_default_database(variants_per_family=1)
    table3 = run_table3_customization(database=database, k=3 if args.fast else 5)
    print(table3.render())

    print()
    print("=" * 72)
    fig5 = run_fig5_synthrag(
        database=_trained_database(variants_per_family=2)
    )
    print("FIG 5: SynthRAG retrieval F1")
    print(fig5.render())

    print()
    print("=" * 72)
    fig4 = run_fig4_metric_learning(
        variants_per_family=2 if args.fast else 3,
        epochs=20 if args.fast else 40,
    )
    print(fig4.render())

    print()
    print("=" * 72)
    from ..rag.synthrag import QUERY_METHODS

    rows = [
        [r["category"], r["representation"], r["query_method"], r["retrieval_content"]]
        for r in QUERY_METHODS
    ]
    print(
        render_table(
            ["Category", "Representation", "Query", "Content"],
            rows,
            title="TABLE I: Summary of Query Methods",
        )
    )
    rows2 = [
        [r["category"], ", ".join(r["components"])] for r in database.table2()
    ]
    print()
    print(
        render_table(
            ["Category", "Components"],
            rows2,
            title="TABLE II: Overview of Hardware Designs in the Database",
        )
    )
    print(f"\n[total {time.time() - start:.0f}s]")

    # Retire any process pools: workers flush their sidecar traces on
    # close and their perf registries merge into this process, so the
    # ledger manifest and trace snapshot below carry the full run.
    from .. import obs
    from ..parallel import shutdown_pools

    shutdown_pools()
    qor = {f"baseline/{n}": q for n, q in table3.baseline.items()}
    for model, cells in table3.models.items():
        qor.update({f"{model}/{n}": q for n, q in cells.items()})
    obs.record_run("report", qor=qor, extra={"fast": args.fast})

    # When REPRO_TRACE is set, close the eval run with the per-stage
    # observability breakdown so every harness run emits its report.
    tracer = obs.get_tracer()
    if tracer.enabled and tracer.format == "jsonl":
        tracer.shutdown()
        from ..obs.report import load_events_with_sidecars, render_report

        print()
        print("=" * 72)
        print(render_report(load_events_with_sidecars(tracer.path)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
