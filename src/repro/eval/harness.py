"""Experiment harness: regenerates every table and figure of the paper.

Each ``run_*`` function returns structured rows/series plus a rendered
text artifact; the ``benchmarks/`` suite calls these and asserts the
paper's qualitative shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.baseline_runner import BaselineRunner
from ..core.chatls import ChatLS
from ..designs.chipyard import generate_corpus, generate_family_variant
from ..designs.database import ExpertDatabase, build_default_database
from ..designs.opencores import Benchmark, benchmark_names, get_benchmark
from ..llm.baselines import claude35, gpt4o
from ..mentor.circuit_graph import build_circuit_graph
from ..rag.retrievers import EmbeddingRetriever, ManualRetriever
from ..hdl import elaborate
from ..synth import (
    Constraints,
    PassContext,
    explore_sizing,
    get_wireload,
    map_to_library,
    nangate45,
    size_gates,
)
from ..synth.cache import synthesize_cached
from ..synth.reports import QoRSnapshot, snapshot
from .metrics import RetrievalScore, mean_f1, precision_recall_f1
from ..parallel import (
    SharedRef,
    effective_backend,
    parallel_map,
    release_shared,
    resolve_shared,
    shared,
)
from .tables import render_series, render_table

__all__ = [
    "baseline_script",
    "run_table4_baseline",
    "run_table3_customization",
    "run_fig5_synthrag",
    "run_fig4_metric_learning",
    "run_explore_qor",
    "ExploreQoRResult",
    "TIMING_REQUIREMENT",
]

TIMING_REQUIREMENT = (
    "Optimize the synthesis script for timing: eliminate negative slack "
    "while keeping the clock period fixed."
)


def baseline_script(bench: Benchmark, wireload: str = "5K_heavy_1k") -> str:
    """The adapted-OpenROAD baseline script for one benchmark (Table IV)."""
    return "\n".join(
        [
            f"read_verilog {bench.name}",
            f"current_design {bench.name}",
            "link",
            f"set_wire_load_model -name {wireload}",
            f"create_clock -period {bench.clock_period} clk",
            "compile",
            "report_qor",
        ]
    )


def _design_cost(name: str) -> float:
    """Cheap per-design cost estimate (gate-count proxy) for scheduling.

    RTL source size tracks elaborated gate count closely across the
    OpenCores set and costs nothing to compute; the work-stealing
    scheduler only uses it to shape initial placement, so precision does
    not affect results.
    """
    return float(len(get_benchmark(name).verilog))


# -- Table IV -----------------------------------------------------------------


@dataclass
class Table4Result:
    rows: dict[str, QoRSnapshot] = field(default_factory=dict)
    reports: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        table_rows = [
            [name, q.wns, q.cps, q.tns, q.area]
            for name, q in self.rows.items()
        ]
        return render_table(
            ["Design", "WNS", "CPS", "TNS", "Area (um^2)"],
            table_rows,
            title="TABLE IV: Performance Baseline of Various Designs",
        )


def _table4_synthesize(name: str) -> tuple[str, QoRSnapshot, str]:
    """One Table IV cell (module-level so process workers can run it)."""
    bench = get_benchmark(name)
    run = synthesize_cached(
        None, bench.name, bench.verilog, baseline_script(bench), top=bench.top
    )
    if not run.success:
        raise RuntimeError(f"baseline failed for {name}: {run.error}")
    report = next(out for line, out in run.transcript if line == "report_qor")
    return name, run.qor, report


def run_table4_baseline(
    designs: list[str] | None = None, jobs: int | None = None
) -> Table4Result:
    """Synthesize every benchmark with the baseline script.

    Designs are independent, so they run through the parallel executor
    (``jobs=None`` honours ``REPRO_JOBS``, ``REPRO_PARALLEL_BACKEND``
    picks threads or the warm process pool); identical re-runs are
    served from the synthesis cache.
    """
    obs.ensure_metrics_server()
    names = list(designs or benchmark_names())
    result = Table4Result()
    with obs.span("eval.table4", designs=len(names)):
        for name, qor, report in parallel_map(
            _table4_synthesize, names, jobs=jobs, label="table4",
            cost=_design_cost,
        ):
            result.rows[name] = qor
            result.reports[name] = report
    obs.record_run(
        "table4",
        qor={f"baseline/{name}": q for name, q in result.rows.items()},
        extra={"designs": names, "jobs": jobs},
    )
    return result


# -- Table III ------------------------------------------------------------------


@dataclass
class Table3Result:
    baseline: dict[str, QoRSnapshot] = field(default_factory=dict)
    models: dict[str, dict[str, QoRSnapshot | None]] = field(default_factory=dict)

    def render(self) -> str:
        model_names = list(self.models)
        headers = ["Design"] + [
            f"{m}:{col}" for m in model_names for col in ("WNS", "CPS", "TNS", "Area")
        ]
        rows = []
        for design in self.baseline:
            row: list = [design]
            for model in model_names:
                q = self.models[model].get(design)
                if q is None:
                    row += ["FAIL"] * 4
                else:
                    row += [q.wns, q.cps, q.tns, q.area]
            rows.append(row)
        return render_table(
            headers, rows,
            title="TABLE III: Performance Comparison for Script Customization (Pass@5)",
        )


#: Table III model columns in render order.
_TABLE3_MODELS = ("GPT-4o", "Claude-3.5", "ChatLS")

#: Per-process runtime for Table III cells, memoized by database ref
#: token: the thread backend reuses one ChatLS/runner set exactly as
#: before, and each process-pool worker builds its own once per
#: broadcast database instead of once per cell.
_CELL_RUNTIMES: OrderedDict[str, dict] = OrderedDict()
_CELL_RUNTIMES_LOCK = threading.Lock()
_CELL_RUNTIMES_CAP = 4


def _cell_runtime(db_ref: SharedRef) -> dict:
    with _CELL_RUNTIMES_LOCK:
        runtime = _CELL_RUNTIMES.get(db_ref.token)
        if runtime is not None:
            _CELL_RUNTIMES.move_to_end(db_ref.token)
            return runtime
    database = resolve_shared(db_ref)
    runtime = {
        "chatls": ChatLS(database),
        "runners": {
            "GPT-4o": BaselineRunner(gpt4o()),
            "Claude-3.5": BaselineRunner(claude35()),
        },
    }
    with _CELL_RUNTIMES_LOCK:
        runtime = _CELL_RUNTIMES.setdefault(db_ref.token, runtime)
        _CELL_RUNTIMES.move_to_end(db_ref.token)
        while len(_CELL_RUNTIMES) > _CELL_RUNTIMES_CAP:
            _CELL_RUNTIMES.popitem(last=False)
    return runtime


def _table3_cell(task: tuple) -> QoRSnapshot | None:
    """One (model, design) Table III cell (module-level, process-safe).

    The database and the Table IV report map arrive as shared refs:
    resolved in place under the thread backend, through the pool's
    shared-memory store (once per worker process) under the process
    backend.
    """
    model_name, design, k, db_ref, reports_ref = task
    runtime = _cell_runtime(db_ref)
    reports = resolve_shared(reports_ref)
    with obs.span("eval.cell", model=model_name, design=design) as sp:
        bench = get_benchmark(design)
        script = baseline_script(bench)
        report = reports[design]
        if model_name == "ChatLS":
            run = runtime["chatls"].customize_pass_at_k(
                bench.verilog, bench.name, script, TIMING_REQUIREMENT,
                k=k, tool_report=report, top=bench.top,
                clock_period=bench.clock_period,
            )
        else:
            run = runtime["runners"][model_name].run_pass_at_k(
                bench.verilog, bench.name, script, TIMING_REQUIREMENT,
                k=k, tool_report=report, top=bench.top,
            )
        sp.set_attribute("executable", run.qor is not None)
        return run.qor


def _table3_cost(task: tuple) -> float:
    """Cell cost estimate: design size, weighted up for the full pipeline."""
    model_name, design = task[0], task[1]
    return _design_cost(design) * (2.0 if model_name == "ChatLS" else 1.0)


def run_table3_customization(
    database: ExpertDatabase | None = None,
    designs: list[str] | None = None,
    k: int = 5,
    baseline: Table4Result | None = None,
    jobs: int | None = None,
) -> Table3Result:
    """The full Table III comparison: GPT-4o vs Claude 3.5 vs ChatLS.

    Callers that already ran Table IV pass it via ``baseline`` so its
    netlists/reports are reused instead of re-synthesizing every design a
    second time.  The (design, model) cells are independent and fan out
    through the parallel executor; results are assembled in deterministic
    design/model order regardless of completion order, and are bit-
    identical across the thread and process backends.
    """
    obs.ensure_metrics_server()
    database = database or build_default_database(variants_per_family=1)
    names = list(designs or benchmark_names())
    table4 = baseline or run_table4_baseline(names, jobs=jobs)
    missing = [n for n in names if n not in table4.reports]
    if missing:
        raise ValueError(f"baseline result lacks designs: {missing}")
    result = Table3Result(baseline={n: table4.rows[n] for n in names})
    model_names = list(_TABLE3_MODELS)
    result.models = {name: {} for name in model_names}

    n_tasks = len(names) * len(model_names)
    backend = effective_backend(jobs=jobs, items=n_tasks)
    db_ref = shared(database, backend=backend)
    reports_ref = shared(table4.reports, backend=backend)
    tasks = [
        (model, design, k, db_ref, reports_ref)
        for design in names
        for model in model_names
    ]
    try:
        with obs.span(
            "eval.table3", designs=len(names), models=len(model_names), k=k
        ):
            for task, qor in zip(
                tasks,
                parallel_map(
                    _table3_cell, tasks, jobs=jobs, label="table3",
                    cost=_table3_cost,
                ),
            ):
                result.models[task[0]][task[1]] = qor
    finally:
        release_shared(db_ref)
        release_shared(reports_ref)
    qor = {f"baseline/{n}": q for n, q in result.baseline.items()}
    for model, cells in result.models.items():
        qor.update({f"{model}/{n}": q for n, q in cells.items()})
    obs.record_run(
        "table3",
        qor=qor,
        extra={"designs": names, "models": model_names, "k": k, "jobs": jobs},
    )
    return result


# -- Explore QoR vs trial budget ---------------------------------------------


@dataclass
class ExploreQoRResult:
    """QoR-vs-trial-budget curves for the design-space explorer.

    ``greedy`` holds the reference point (compile-style greedy sizing);
    ``curves[design][budget]`` the QoR after ``explore_sizing`` with that
    per-chain trial budget on top of the same greedy starting point.
    """

    greedy: dict[str, QoRSnapshot] = field(default_factory=dict)
    curves: dict[str, dict[int, QoRSnapshot]] = field(default_factory=dict)

    def render(self) -> str:
        budgets = sorted({b for curve in self.curves.values() for b in curve})
        headers = ["Design", "greedy WNS", "greedy Area"] + [
            f"@{b}:{col}" for b in budgets for col in ("WNS", "Area")
        ]
        rows = []
        for design, ref in self.greedy.items():
            row: list = [design, ref.wns, ref.area]
            for budget in budgets:
                q = self.curves.get(design, {}).get(budget)
                row += ["-", "-"] if q is None else [q.wns, q.area]
            rows.append(row)
        return render_table(
            headers, rows, title="Explore: QoR vs per-chain trial budget"
        )


def _explore_qor_design(
    task: tuple[str, tuple[int, ...], int, int | None],
) -> tuple[str, QoRSnapshot, dict[int, QoRSnapshot]]:
    """One design's QoR-vs-budget curve (module-level, process-safe).

    Synthesizes the greedy reference once, then re-runs ``explore_sizing``
    from a clone of that state at each budget.  Chains run serially inside
    the task (``jobs=1``) so design-level fan-out composes with the
    process backend without nested pools; the reduction is deterministic
    per seed either way.
    """
    name, budgets, seed, chains = task
    bench = get_benchmark(name)
    library = nangate45()
    wireload = get_wireload("5K_heavy_1k")
    constraints = Constraints(clock_period=bench.clock_period)
    with obs.span("eval.explore_design", design=name, budgets=len(budgets)):
        netlist = elaborate(bench.verilog, top=bench.top)
        map_to_library(netlist, library)
        context = PassContext(netlist, library, wireload, constraints)
        size_gates(netlist, library, wireload, constraints, context=context)
        greedy = snapshot(name, context.engine, context.engine.analyze())
        curve: dict[int, QoRSnapshot] = {}
        for budget in budgets:
            trial = netlist.clone()
            trial_ctx = PassContext(trial, library, wireload, constraints)
            explore_sizing(
                trial, library, wireload, constraints,
                budget=budget, seed=seed, chains=chains, jobs=1,
                context=trial_ctx,
            )
            curve[budget] = snapshot(
                name, trial_ctx.engine, trial_ctx.engine.analyze()
            )
    return name, greedy, curve


def run_explore_qor(
    designs: list[str] | None = None,
    budgets: tuple[int, ...] = (30, 120, 240),
    seed: int = 0,
    chains: int | None = None,
    jobs: int | None = None,
) -> ExploreQoRResult:
    """QoR-vs-trial-budget curves for the statistical explorer.

    Each design starts from the same greedy ``size_gates`` reference and
    runs ``explore_sizing`` at every budget in ``budgets``; designs fan
    out through the parallel executor.  The run is recorded in the ledger
    under label ``explore`` with ``greedy/<design>`` and
    ``explore@<budget>/<design>`` QoR keys, so ledger diffs catch both
    reference and explorer regressions.
    """
    obs.ensure_metrics_server()
    names = list(designs or benchmark_names())
    result = ExploreQoRResult()
    tasks = [(name, tuple(budgets), seed, chains) for name in names]
    with obs.span("eval.explore", designs=len(names), budgets=len(budgets)):
        for name, greedy, curve in parallel_map(
            _explore_qor_design, tasks, jobs=jobs, label="explore",
            cost=lambda task: _design_cost(task[0]) * (1 + len(task[1])),
        ):
            result.greedy[name] = greedy
            result.curves[name] = curve
    qor: dict[str, QoRSnapshot] = {
        f"greedy/{name}": q for name, q in result.greedy.items()
    }
    for name, curve in result.curves.items():
        qor.update({f"explore@{b}/{name}": q for b, q in curve.items()})
    obs.record_run(
        "explore",
        qor=qor,
        extra={
            "designs": names, "budgets": list(budgets), "seed": seed,
            "chains": chains, "jobs": jobs,
        },
    )
    return result


# -- Fig. 5 -----------------------------------------------------------------------


@dataclass
class Fig5Result:
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(
            render_series(name, points) for name, points in self.series.items()
        )

    def f1(self, series: str, k: int) -> float:
        for point_k, value in self.series[series]:
            if point_k == k:
                return value
        raise KeyError(f"no k={k} in series {series}")


def _trained_database(
    variants_per_family: int = 2,
    epochs: int = 30,
    strategies: list[str] | None = None,
) -> ExpertDatabase:
    """Database whose encoder was metric-learning trained on the corpus.

    Training on labelled module graphs tightens family clusters (Fig. 4),
    which is what makes embedding retrieval's F1 high in Fig. 5.
    """
    from ..mentor.embeddings import CircuitEncoder
    from ..mentor.metric_learning import MetricTrainer

    corpus = generate_corpus(variants_per_family)
    families = sorted({d.family for d in corpus})
    label_of = {f: i for i, f in enumerate(families)}
    graphs, labels = [], []
    for design in corpus:
        circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
        for graph in circuit.module_graphs.values():
            graphs.append(graph)
            labels.append(label_of[design.family])
    encoder = CircuitEncoder(seed=0)
    MetricTrainer(encoder, loss="contrastive", seed=0).train(
        graphs, labels, epochs=epochs
    )
    db = ExpertDatabase(encoder)
    strategies = strategies or ["baseline_compile", "high_effort", "ultra_retime"]
    for design in corpus:
        db.add_design(design, strategies=strategies)
    return db


def run_fig5_synthrag(
    database: ExpertDatabase | None = None,
    query_variants: tuple[int, ...] = (7, 8),
    ks: tuple[int, ...] = (1, 2, 3),
) -> Fig5Result:
    """SynthRAG retrieval F1 over held-out Chipyard-like variants.

    Queries are *new* variants of each family (never in the database);
    a retrieved design is relevant iff it belongs to the query's family.
    Series: design-level retrieval with and without the domain reranker
    (Eq. 5), plus module-level retrieval and manual retrieval.
    """
    obs.ensure_metrics_server()
    with obs.span("eval.fig5", ks=list(ks)):
        result = _run_fig5_synthrag(database, query_variants, ks)
    obs.record_run("fig5", extra={"ks": list(ks), "series": sorted(result.series)})
    return result


def _run_fig5_synthrag(
    database: ExpertDatabase | None,
    query_variants: tuple[int, ...],
    ks: tuple[int, ...],
) -> Fig5Result:
    database = database or _trained_database(variants_per_family=2)
    encoder = database.encoder
    retriever = EmbeddingRetriever(database)
    families = database.families()

    design_scores: dict[tuple[str, int], list[RetrievalScore]] = {}
    result = Fig5Result()
    for mode in ("reranked", "similarity_only"):
        for k in ks:
            scores = []
            for family in families:
                for variant in query_variants:
                    query = generate_family_variant(family, variant)
                    circuit = build_circuit_graph(query.verilog, query.name, top=query.top)
                    embedding = encoder.embed_design(circuit)
                    hits = retriever.retrieve_designs(
                        embedding, k=k, rerank=mode == "reranked"
                    )
                    retrieved = [h.key for h in hits]
                    scores.append(
                        precision_recall_f1(retrieved, families[family], k=k)
                    )
            result.series.setdefault(f"design_{mode}", []).append((k, mean_f1(scores)))
    # Module-level retrieval: query with a module embedding; relevant =
    # modules of same-family designs.
    for k in ks:
        scores = []
        for family in families:
            relevant_modules = [
                key
                for entry_name in families[family]
                for key in (
                    (entry_name, mod)
                    for mod in database.entries[entry_name].module_embeddings
                )
            ]
            for variant in query_variants:
                query = generate_family_variant(family, variant)
                circuit = build_circuit_graph(query.verilog, query.name, top=query.top)
                module_embeddings = encoder.embed_modules(circuit)
                # The top module (last in source order) carries the
                # family-distinctive structure; leaf blocks like register
                # files are legitimately shared across families.
                top_embedding = list(module_embeddings.values())[-1]
                hits = retriever.retrieve_modules(top_embedding, k=k)
                scores.append(
                    precision_recall_f1([h.key for h in hits], relevant_modules, k=k)
                )
        result.series.setdefault("module_reranked", []).append((k, mean_f1(scores)))
    # Manual retrieval F1 (command pages for intent queries).
    manual = ManualRetriever()
    manual_queries = {
        "insert buffers to fix a high fanout net": {"balance_buffer", "set_max_fanout"},
        "retime registers to balance pipeline stages": {"optimize_registers", "compile_ultra"},
        "minimize area when timing is met": {"set_max_area", "compile"},
        "flatten hierarchy before optimization": {"ungroup", "set_flatten"},
    }
    for k in ks:
        scores = []
        for query, relevant in manual_queries.items():
            hits = manual.retrieve(query, k=k)
            scores.append(precision_recall_f1([h.command for h in hits], relevant, k=k))
        result.series.setdefault("manual", []).append((k, mean_f1(scores)))
    return result


# -- Fig. 4 ------------------------------------------------------------------------


@dataclass
class Fig4Result:
    before: dict
    after: dict
    losses: list[float]

    def render(self) -> str:
        return "\n".join(
            [
                "FIG 4: Metric learning embedding evolution",
                f"  before: intra={self.before['intra_mean']:.3f} "
                f"inter={self.before['inter_mean']:.3f} ratio={self.before['ratio']:.3f}",
                f"  after:  intra={self.after['intra_mean']:.3f} "
                f"inter={self.after['inter_mean']:.3f} ratio={self.after['ratio']:.3f}",
                f"  final loss: {self.losses[-1]:.4f}",
            ]
        )


def run_fig4_metric_learning(
    variants_per_family: int = 3,
    epochs: int = 40,
    loss: str = "contrastive",
    seed: int = 0,
) -> Fig4Result:
    """Train the encoder with metric learning; measure cluster formation."""
    from ..mentor.embeddings import CircuitEncoder
    from ..mentor.metric_learning import MetricTrainer, clustering_quality

    obs.ensure_metrics_server()
    with obs.span("eval.fig4", epochs=epochs, loss=loss):
        corpus = generate_corpus(variants_per_family)
        families = sorted({d.family for d in corpus})
        label_of = {f: i for i, f in enumerate(families)}
        graphs, labels = [], []
        for design in corpus:
            circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
            graphs.append(circuit.design_graph())
            labels.append(label_of[design.family])

        encoder = CircuitEncoder(seed=seed)
        embeddings0 = encoder.model.embed_graphs(graphs)
        before = clustering_quality(_normalize_rows(embeddings0), np.array(labels))
        trainer = MetricTrainer(encoder, loss=loss, seed=seed)
        stats = trainer.train(graphs, labels, epochs=epochs)
        embeddings1 = encoder.model.embed_graphs(graphs)
        after = clustering_quality(_normalize_rows(embeddings1), np.array(labels))
        result = Fig4Result(before=before, after=after, losses=stats.losses)
    obs.record_run(
        "fig4", extra={"epochs": epochs, "loss": loss, "ratio": after["ratio"]}
    )
    return result


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms
