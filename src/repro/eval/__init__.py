"""Evaluation harness: metrics, table/figure renderers, experiment drivers."""

from .harness import (
    TIMING_REQUIREMENT,
    ExploreQoRResult,
    baseline_script,
    run_explore_qor,
    run_fig4_metric_learning,
    run_fig5_synthrag,
    run_table3_customization,
    run_table4_baseline,
)
from .metrics import RetrievalScore, mean_f1, pass_at_k, precision_recall_f1
from ..parallel import parallel_map, resolve_jobs
from .tables import render_series, render_table

__all__ = [
    "parallel_map",
    "resolve_jobs",
    "TIMING_REQUIREMENT",
    "ExploreQoRResult",
    "baseline_script",
    "run_explore_qor",
    "run_fig4_metric_learning",
    "run_fig5_synthrag",
    "run_table3_customization",
    "run_table4_baseline",
    "RetrievalScore",
    "mean_f1",
    "pass_at_k",
    "precision_recall_f1",
    "render_series",
    "render_table",
]
