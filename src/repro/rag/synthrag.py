"""SynthRAG: the multimodal RAG facade (paper §IV-B, Fig. 2, Table I).

Bundles the three retrievers behind one object the Generator and
SynthExpert call:

* ``retrieve_strategies`` — graph-embedding retrieval + domain rerank.
* ``module_code`` / ``cell_info`` / ``cypher`` — graph-structure retrieval.
* ``manual`` — LLM-embedding retrieval over the tool manual + LLM rerank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .. import obs
from ..designs.database import ExpertDatabase
from ..graphdb import GraphStore
from ..llm.base import LLMClient
from ..mentor.circuit_graph import CircuitGraph
from ..mentor.embeddings import CircuitEncoder
from ..synth.library import TechLibrary, nangate45
from .rerank import LLMReranker
from .retrievers import (
    EmbeddingRetriever,
    ManualRetriever,
    StrategyHit,
    StructureRetriever,
    load_library_graph,
)

__all__ = ["SynthRAG", "QUERY_METHODS"]

#: Paper Table I, as data.
QUERY_METHODS = (
    {
        "category": "High Level Information of Circuit Design",
        "representation": "Graph Embedding",
        "query_method": "Join",
        "retrieval_content": "Compile Strategy / Optimization Strategy",
    },
    {
        "category": "Code of Circuit Design",
        "representation": "Graph Structure",
        "query_method": "Direct",
        "retrieval_content": "The code of the module where the path is located",
    },
    {
        "category": "Target Library",
        "representation": "Graph Structure",
        "query_method": "Direct",
        "retrieval_content": "Gate Cell Information",
    },
    {
        "category": "Logic Synthesis Tool User Manual",
        "representation": "LLM Embedding",
        "query_method": "Join",
        "retrieval_content": "Command Usage / Command Requirement",
    },
)


@dataclass
class SynthRAG:
    """The assembled multimodal retrieval stack."""

    database: ExpertDatabase
    encoder: CircuitEncoder
    embedding_retriever: EmbeddingRetriever
    structure_retriever: StructureRetriever
    manual_retriever: ManualRetriever

    @classmethod
    def build(
        cls,
        database: ExpertDatabase,
        circuit: CircuitGraph | None = None,
        library: TechLibrary | None = None,
        llm: LLMClient | None = None,
        alpha: float = 0.7,
        beta: float = 0.3,
        manual_retriever: ManualRetriever | None = None,
        library_store: GraphStore | None = None,
    ) -> "SynthRAG":
        """Assemble SynthRAG for one design under customization.

        ``manual_retriever``/``library_store`` let a serving engine share
        the (deterministically constructed, read-only) manual index and
        library graph across all live sessions instead of rebuilding them
        per request.
        """
        library = library or nangate45()
        circuit_store = circuit.store if circuit is not None else GraphStore()
        if library_store is None:
            library_store = load_library_graph(library)
        reranker = LLMReranker(llm) if llm is not None else None
        if manual_retriever is None:
            manual_retriever = ManualRetriever(reranker=reranker)
        return cls(
            database=database,
            encoder=database.encoder,
            embedding_retriever=EmbeddingRetriever(database, alpha=alpha, beta=beta),
            structure_retriever=StructureRetriever(circuit_store, library_store, llm=llm),
            manual_retriever=manual_retriever,
        )

    # -- graph-embedding mode -------------------------------------------------

    def retrieve_strategies(
        self, query_embedding: np.ndarray, k: int = 3
    ) -> list[StrategyHit]:
        with obs.span("rag.embedding", mode="strategies", k=k) as sp:
            hits = self.embedding_retriever.retrieve_strategies(query_embedding, k=k)
            sp.set_attributes(
                hits=len(hits),
                scores=[round(h.similarity, 4) for h in hits],
                strategies=[h.strategy for h in hits],
            )
            return hits

    def similar_designs(self, query_embedding: np.ndarray, k: int = 3):
        with obs.span("rag.embedding", mode="designs", k=k) as sp:
            hits = self.embedding_retriever.retrieve_designs(query_embedding, k=k)
            sp.set_attributes(
                hits=len(hits), scores=[round(h.score, 4) for h in hits]
            )
            return hits

    def similar_modules(self, query_embedding: np.ndarray, k: int = 3):
        with obs.span("rag.embedding", mode="modules", k=k) as sp:
            hits = self.embedding_retriever.retrieve_modules(query_embedding, k=k)
            sp.set_attributes(
                hits=len(hits), scores=[round(h.score, 4) for h in hits]
            )
            return hits

    # -- graph-structure mode --------------------------------------------------

    def module_code(self, module_name: str) -> str | None:
        with obs.span("rag.structure", kind="module_code", target=module_name) as sp:
            code = self.structure_retriever.module_code(module_name)
            sp.set_attribute("found", code is not None)
            return code

    def cell_info(self, cell_name: str) -> dict[str, Any] | None:
        with obs.span("rag.structure", kind="cell_info", target=cell_name) as sp:
            info = self.structure_retriever.cell_info(cell_name)
            sp.set_attribute("found", info is not None)
            return info

    def cypher(self, query: str, target: str = "circuit") -> list[dict[str, Any]]:
        with obs.span("rag.structure", kind="cypher", target=target) as sp:
            rows = self.structure_retriever.query(query, target=target)
            sp.set_attribute("rows", len(rows))
            return rows

    # -- LLM-embedding mode ------------------------------------------------------

    def manual(self, query: str, k: int = 3):
        with obs.span("rag.manual", k=k, query=query[:80]) as sp:
            hits = self.manual_retriever.retrieve(query, k=k)
            sp.set_attributes(
                hits=len(hits),
                commands=[h.command for h in hits],
                scores=[round(h.score, 4) for h in hits],
            )
            return hits

    def manual_batch(self, queries: list[str], k: int = 3):
        """Batched :meth:`manual`: one stacked search for many queries.

        Used when several step queries are in hand at once — a whole CoT
        draft's revision pass, or many sessions' coalesced retrieve stage.
        Row ``i`` matches ``manual(queries[i])`` exactly in hit order.
        """
        with obs.span("rag.manual", k=k, batch=len(queries)) as sp:
            rows = self.manual_retriever.retrieve_batch(queries, k=k)
            sp.set_attributes(
                hits=sum(len(hits) for hits in rows),
                commands=[[h.command for h in hits] for hits in rows],
            )
            return rows

    def retrieve_strategies_batch(
        self,
        query_embeddings: np.ndarray,
        k: int = 3,
        characteristics: list[str] | None = None,
    ) -> list[list[StrategyHit]]:
        """Batched :meth:`retrieve_strategies` over stacked design queries."""
        with obs.span(
            "rag.embedding", mode="strategies", k=k, batch=len(query_embeddings)
        ) as sp:
            rows = self.embedding_retriever.retrieve_strategies_batch(
                query_embeddings, k=k, characteristics=characteristics
            )
            sp.set_attribute("hits", sum(len(hits) for hits in rows))
            return rows

    def command_exists(self, command: str) -> bool:
        """Whether the manual documents the command (hallucination check)."""
        return self.manual_retriever.lookup(command.split()[0]) is not None

    @staticmethod
    def table1() -> tuple[dict, ...]:
        """Paper Table I as structured rows."""
        return QUERY_METHODS
