"""SynthRAG: domain-specific multimodal retrieval-augmented generation.

Three retrieval modes (paper Table I): graph-embedding retrieval over the
expert design database with domain reranking (Eq. 5), graph-structure
retrieval via Cypher over circuit/library property graphs, and text-
embedding retrieval over the tool manual with LLM reranking.
"""

from .knowledge import render_strategy_section, strategies_for_pathologies
from .manual import MANUAL_ENTRIES, ManualEntry, manual_corpus
from .rerank import LLMReranker, domain_rerank
from .retrievers import (
    EmbeddingRetriever,
    ManualRetriever,
    StrategyHit,
    StructureRetriever,
    load_library_graph,
)
from .synthrag import QUERY_METHODS, SynthRAG

__all__ = [
    "render_strategy_section",
    "strategies_for_pathologies",
    "MANUAL_ENTRIES",
    "ManualEntry",
    "manual_corpus",
    "LLMReranker",
    "domain_rerank",
    "EmbeddingRetriever",
    "ManualRetriever",
    "StrategyHit",
    "StructureRetriever",
    "load_library_graph",
    "QUERY_METHODS",
    "SynthRAG",
]
