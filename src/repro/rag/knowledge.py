"""Strategy knowledge: pathology -> command mapping and prompt rendering.

Bridges CircuitMentor's detected pathologies to the strategy library so
retrieved guidance can be rendered into the Generator's prompt sections.
"""

from __future__ import annotations

from ..designs.database import STRATEGIES, Strategy
from .retrievers import StrategyHit

__all__ = ["strategies_for_pathologies", "render_strategy_section"]

#: Priority-ordered pathology -> strategy mapping (paper §I's discussion:
#: retiming for register imbalance, buffer balancing for high fanout, ...).
_PATHOLOGY_STRATEGY = (
    ("register_imbalance", "ultra_retime"),
    ("retiming_target", "ultra_retime"),
    ("high_fanout", "fanout_buffered"),
    ("unbalanced_chains", "high_effort"),
    ("wide_arithmetic", "high_effort"),
    ("hierarchy_boundaries", "ultra_flatten"),
    ("long_combinational", "ultra_flatten"),
    ("easy_timing", "area_recovery"),
)


def strategies_for_pathologies(pathologies: list[str], limit: int = 3) -> list[Strategy]:
    """Strategies addressing the detected pathologies, priority order.

    When timing is already met the structural pathologies are moot: the
    right move is to trade the positive slack for area (paper Table III:
    ChatLS returns the smallest riscv32i/swerv areas).
    """
    if "timing_violated" not in pathologies:
        return [STRATEGIES["area_recovery"]]
    chosen: list[Strategy] = []
    for pathology, strategy_name in _PATHOLOGY_STRATEGY:
        if pathology in pathologies and strategy_name not in [s.name for s in chosen]:
            chosen.append(STRATEGIES[strategy_name])
        if len(chosen) >= limit:
            break
    if not chosen:
        chosen.append(STRATEGIES["ultra_flatten"])
    return chosen


def render_strategy_section(
    hits: list[StrategyHit] | None = None,
    pathology_strategies: list[Strategy] | None = None,
) -> str:
    """Render retrieved + pathology strategies as a prompt section.

    Each strategy's commands appear as ``- command: <cmd>`` lines, the
    exact shape the simulated generator grounds on.
    """
    lines: list[str] = []
    seen_commands: set[str] = set()

    def add_strategy(name: str, description: str, commands, provenance: str) -> None:
        lines.append(f"[{name}] ({provenance}) {description}")
        for command in commands:
            if command not in seen_commands:
                lines.append(f"- command: {command}")
                seen_commands.add(command)
        lines.append("")

    for strategy in pathology_strategies or []:
        add_strategy(
            strategy.name, strategy.description, strategy.commands, "design analysis"
        )
    for hit in hits or []:
        add_strategy(
            hit.strategy,
            f"worked for similar design {hit.design} "
            f"(similarity {hit.similarity:.2f}, cps {hit.characteristics['cps']:.2f})",
            hit.commands,
            "similar design",
        )
    return "\n".join(lines).strip()
