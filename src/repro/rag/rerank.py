"""Reranking for SynthRAG retrievals.

Two rerankers, matching the paper:

* :func:`domain_rerank` — Eq. 5: ``Score(z_i) = alpha * sim(z_q, z_i) +
  beta * c_i`` where ``c_i`` is a domain characteristic (timing, area or
  power), normalized to [0, 1] across the candidate set so ``alpha`` and
  ``beta`` weigh commensurable quantities.
* :class:`LLMReranker` — the GPT-4o-as-reranker substitute for manual
  pages: asks the simulated LLM to order candidates by relevance.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..llm.base import LLMClient
from ..llm.prompts import build_prompt
from ..vectorstore import SearchResult

__all__ = ["domain_rerank", "LLMReranker"]


def domain_rerank(
    results: list[SearchResult],
    characteristic: Callable[[Any], float],
    alpha: float = 0.7,
    beta: float = 0.3,
    higher_is_better: bool = True,
) -> list[SearchResult]:
    """Re-order retrieval hits by combined similarity + characteristic.

    Args:
        results: hits from a vector index (``score`` = cosine similarity).
        characteristic: maps a hit's payload to its metric c_i (e.g. the
            entry's best-case slack, or negative area).
        alpha, beta: Eq. 5 weights.
        higher_is_better: flip if lower characteristic values are better.

    Returns:
        The same hits, re-sorted by the blended score (best first).
    """
    if not results:
        return []
    values = np.array([characteristic(r.payload) for r in results], dtype=float)
    if not higher_is_better:
        values = -values
    # Min-max normalize both signals over the candidate set so alpha/beta
    # weigh commensurable quantities; otherwise near-tied cosine scores let
    # the characteristic term override genuine similarity differences.
    sims = np.array([r.score for r in results], dtype=float)
    blended = alpha * _minmax(sims) + beta * _minmax(values)
    order = np.argsort(blended)[::-1]
    return [results[i] for i in order]


def _minmax(values: np.ndarray) -> np.ndarray:
    span = values.max() - values.min()
    if span <= 0:
        return np.zeros_like(values)
    return (values - values.min()) / span


class LLMReranker:
    """Rerank text documents with a (simulated) LLM."""

    def __init__(self, llm: LLMClient) -> None:
        self.llm = llm

    def rerank(
        self, query: str, documents: list[tuple[str, str]], k: int | None = None
    ) -> list[str]:
        """Return document ids ordered by LLM-judged relevance.

        Args:
            query: the retrieval query.
            documents: (doc_id, text) pairs, pre-filtered by the embedding
                stage.
            k: truncate the result to the top-k ids.
        """
        if not documents:
            return []
        candidates = "\n".join(
            f"{doc_id}: {text[:200].replace(chr(10), ' ')}" for doc_id, text in documents
        )
        prompt = build_prompt(
            {
                "TASK": "RERANK",
                "QUERY": query,
                "CANDIDATES": candidates,
            }
        )
        completion = self.llm.complete(prompt)
        known = {doc_id for doc_id, _ in documents}
        ordered = [line.strip() for line in completion.text.splitlines() if line.strip() in known]
        # Any ids the model dropped keep their original relative order.
        ordered += [doc_id for doc_id, _ in documents if doc_id not in ordered]
        return ordered[:k] if k else ordered
