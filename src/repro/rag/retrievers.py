"""The three retrieval modes of SynthRAG (paper Table I).

=====================  =================  ==============================
Representation         Query method       Retrieval content
=====================  =================  ==============================
Graph embedding        join (kNN+rerank)  compile & optimization strategy
Graph structure        direct (Cypher)    module code / gate cell info
LLM (text) embedding   kNN + LLM rerank   command usage & requirements
=====================  =================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..designs.database import ExpertDatabase, STRATEGIES
from ..graphdb import GraphStore, execute
from ..llm.base import LLMClient
from ..synth.library import TechLibrary
from ..textembed import HashingEmbedder
from ..vectorstore import SearchResult, make_index
from .manual import ManualEntry, manual_corpus
from .rerank import LLMReranker, domain_rerank

__all__ = [
    "StrategyHit",
    "EmbeddingRetriever",
    "StructureRetriever",
    "ManualRetriever",
    "load_library_graph",
]


@dataclass(frozen=True)
class StrategyHit:
    """One strategy recommendation from embedding retrieval."""

    design: str
    strategy: str
    similarity: float
    characteristics: dict[str, float]

    @property
    def commands(self) -> tuple[str, ...]:
        return STRATEGIES[self.strategy].commands

    @property
    def description(self) -> str:
        return STRATEGIES[self.strategy].description


class EmbeddingRetriever:
    """Graph-embedding retrieval over the expert database (+ Eq. 5 rerank).

    ``rerank_overfetch`` is how many times ``k`` candidates the kNN stage
    fetches before the domain rerank reorders them; without reranking
    there is nothing to reorder, so exactly ``k`` are fetched.
    """

    def __init__(
        self,
        database: ExpertDatabase,
        alpha: float = 0.7,
        beta: float = 0.3,
        characteristic: str = "cps",
        rerank_overfetch: int = 2,
    ) -> None:
        if characteristic not in ("cps", "area", "leakage"):
            raise ValueError(f"unknown characteristic {characteristic!r}")
        if rerank_overfetch < 1:
            raise ValueError("rerank_overfetch must be >= 1")
        self.database = database
        self.alpha = alpha
        self.beta = beta
        self.characteristic = characteristic
        self.rerank_overfetch = rerank_overfetch

    def _metric(self, entry) -> float:
        return self._metric_for(entry, self.characteristic)

    @staticmethod
    def _metric_for(entry, characteristic: str) -> float:
        value = entry.characteristics()[characteristic]
        # For area/leakage smaller is better; cps larger is better.
        return value if characteristic == "cps" else -value

    def _fetch_k(self, k: int, rerank: bool) -> int:
        return k * self.rerank_overfetch if rerank else k

    def retrieve_designs(
        self, query_embedding: np.ndarray, k: int = 3, rerank: bool = True
    ) -> list[SearchResult]:
        hits = self.database.design_index.search(
            query_embedding, k=self._fetch_k(k, rerank)
        )
        if rerank:
            hits = domain_rerank(hits, self._metric, self.alpha, self.beta)
        return hits[:k]

    def retrieve_designs_batch(
        self,
        query_embeddings: np.ndarray,
        k: int = 3,
        rerank: bool = True,
        characteristics: list[str] | None = None,
    ) -> list[list[SearchResult]]:
        """Batched :meth:`retrieve_designs`: one stacked kNN for all queries.

        ``characteristics`` optionally overrides the rerank characteristic
        per query — the serving engine coalesces sessions with different
        requirement objectives into one batch, so the Eq. 5 rerank must
        not depend on this (shared) retriever's mutable attribute.
        """
        query_embeddings = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
        if characteristics is not None and len(characteristics) != query_embeddings.shape[0]:
            raise ValueError("characteristics length must match query count")
        rows = self.database.search_designs(
            query_embeddings, k=self._fetch_k(k, rerank)
        )
        out: list[list[SearchResult]] = []
        for row, hits in enumerate(rows):
            if rerank:
                characteristic = (
                    characteristics[row] if characteristics else self.characteristic
                )
                hits = domain_rerank(
                    hits,
                    lambda entry: self._metric_for(entry, characteristic),
                    self.alpha,
                    self.beta,
                )
            out.append(hits[:k])
        return out

    def retrieve_modules(
        self, query_embedding: np.ndarray, k: int = 3, rerank: bool = True
    ) -> list[SearchResult]:
        hits = self.database.module_index.search(
            query_embedding, k=self._fetch_k(k, rerank)
        )
        if rerank:
            hits = domain_rerank(hits, self._metric, self.alpha, self.beta)
        return hits[:k]

    def retrieve_strategies(
        self, query_embedding: np.ndarray, k: int = 3
    ) -> list[StrategyHit]:
        """Top strategies from the k most similar database designs."""
        hits = self.retrieve_designs(query_embedding, k=k)
        return [self._strategy_hit(hit) for hit in hits]

    def retrieve_strategies_batch(
        self,
        query_embeddings: np.ndarray,
        k: int = 3,
        characteristics: list[str] | None = None,
    ) -> list[list[StrategyHit]]:
        """Batched :meth:`retrieve_strategies` over stacked design queries."""
        rows = self.retrieve_designs_batch(
            query_embeddings, k=k, characteristics=characteristics
        )
        return [[self._strategy_hit(hit) for hit in hits] for hits in rows]

    @staticmethod
    def _strategy_hit(hit: SearchResult) -> StrategyHit:
        entry = hit.payload
        return StrategyHit(
            design=entry.design.name,
            strategy=entry.best_strategy,
            similarity=hit.score,
            characteristics=entry.characteristics(),
        )


def load_library_graph(library: TechLibrary, store: GraphStore | None = None) -> GraphStore:
    """Load the target library into a property graph (paper Table I row 3).

    Creates ``(:Library)-[:PROVIDES]->(:LibCell)`` with full electrical
    properties so Cypher queries can fetch gate cell information without
    feeding the whole library through the LLM.
    """
    store = store or GraphStore()
    lib_node = store.create_node(["Library"], name=library.name)
    for cell in library.cells():
        cell_node = store.create_node(
            ["LibCell"],
            name=cell.name,
            function=cell.function,
            drive=cell.drive,
            area=cell.area,
            input_cap=cell.input_cap,
            drive_res=cell.drive_res,
            intrinsic=cell.intrinsic,
            leakage=cell.leakage,
            sequential=cell.is_sequential,
        )
        store.create_rel(lib_node.node_id, "PROVIDES", cell_node.node_id)
    return store


class StructureRetriever:
    """Graph-structure retrieval: direct Cypher over circuit + library graphs.

    Queries may be handed in verbatim or generated by the LLM from a
    (target, kind) request — matching the paper's "Cypher queries, which
    can be generated by LLMs".
    """

    def __init__(
        self,
        circuit_store: GraphStore,
        library_store: GraphStore,
        llm: LLMClient | None = None,
    ) -> None:
        self.circuit_store = circuit_store
        self.library_store = library_store
        self.llm = llm

    def query(self, cypher: str, target: str = "circuit") -> list[dict[str, Any]]:
        store = self.circuit_store if target == "circuit" else self.library_store
        return execute(store, cypher)

    def module_code(self, module_name: str) -> str | None:
        """The Verilog source of one module (for path-level LLM analysis)."""
        cypher = self._llm_cypher(module_name, "module") if self.llm else (
            f"MATCH (m:Module {{name: '{module_name}'}}) RETURN m.name, m.code, m.category"
        )
        rows = execute(self.circuit_store, cypher)
        if not rows:
            return None
        row = rows[0]
        for key, value in row.items():
            if key.endswith(".code"):
                return value
        return None

    def cell_info(self, cell_name: str) -> dict[str, Any] | None:
        cypher = self._llm_cypher(cell_name, "cell") if self.llm else (
            f"MATCH (c:LibCell {{name: '{cell_name}'}}) "
            "RETURN c.name, c.area, c.drive_res"
        )
        rows = execute(self.library_store, cypher)
        return rows[0] if rows else None

    def _llm_cypher(self, target: str, kind: str) -> str:
        from ..llm.prompts import build_prompt

        completion = self.llm.complete(
            build_prompt({"TASK": "GENERATE CYPHER", "TARGET": target, "KIND": kind})
        )
        return completion.text.strip()


@dataclass
class ManualHit:
    """One retrieved manual page."""

    command: str
    text: str
    score: float


class ManualRetriever:
    """Text-embedding retrieval over the tool manual with LLM reranking."""

    def __init__(
        self,
        entries: list[ManualEntry] | None = None,
        embedder: HashingEmbedder | None = None,
        reranker: LLMReranker | None = None,
    ) -> None:
        self.entries = entries if entries is not None else manual_corpus()
        corpus_texts = [e.text for e in self.entries]
        self.embedder = embedder or HashingEmbedder(dim=256).fit_idf(corpus_texts)
        self.reranker = reranker
        # REPRO_ANN=0 (default): exact FlatIndex, bit-identical retrieval;
        # REPRO_ANN=1: HNSW shortlist + exact rerank for large manuals.
        self.index = make_index(dim=self.embedder.dim, metric="cosine")
        for entry in self.entries:
            self.index.add(entry.command, self.embedder.embed(entry.text), payload=entry)

    def retrieve(self, query: str, k: int = 3, rerank: bool = True) -> list[ManualHit]:
        # Over-fetch only when an LLM rerank will actually reorder the hits.
        rerank = rerank and self.reranker is not None
        hits = self.index.search(self.embedder.embed(query), k=k * 2 if rerank else k)
        return self._finalize(query, hits, k, rerank)

    def retrieve_batch(
        self, queries: list[str], k: int = 3, rerank: bool = True
    ) -> list[list[ManualHit]]:
        """Batched :meth:`retrieve`: one stacked index search for all queries.

        With more than one query in hand the embedding lookups run as a
        single ``search_batch`` kernel call (exact FlatIndex or lockstep
        HNSW under ``REPRO_ANN``); the per-query LLM rerank then reorders
        each row independently, so row ``i`` matches ``retrieve(queries[i])``.
        """
        if not queries:
            return []
        rerank = rerank and self.reranker is not None
        fetch_k = k * 2 if rerank else k
        if len(queries) == 1:
            hits_rows = [self.index.search(self.embedder.embed(queries[0]), k=fetch_k)]
        else:
            stacked = np.stack([self.embedder.embed(query) for query in queries])
            hits_rows = self.index.search_batch(stacked, k=fetch_k)
        return [
            self._finalize(query, hits, k, rerank)
            for query, hits in zip(queries, hits_rows)
        ]

    def _finalize(
        self, query: str, hits: list[SearchResult], k: int, rerank: bool
    ) -> list[ManualHit]:
        """Shared tail of single and batched retrieval: rerank + truncate."""
        if rerank:
            ordered_ids = self.reranker.rerank(
                query, [(h.key, h.payload.text) for h in hits], k=k
            )
            by_id = {h.key: h for h in hits}
            hits = [by_id[i] for i in ordered_ids if i in by_id]
        return [
            ManualHit(command=h.key, text=h.payload.text, score=h.score)
            for h in hits[:k]
        ]

    def lookup(self, command: str) -> ManualEntry | None:
        for entry in self.entries:
            if entry.command == command:
                return entry
        return None
