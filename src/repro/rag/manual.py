"""The logic synthesis tool user manual (retrieval corpus).

DC-style documentation entries for every command the dc_shell substrate
implements, plus non-synthesis distractor pages so manual retrieval is a
real needle-in-haystack task (paper §IV-B: "we focus exclusively on
retrieving descriptions of logic synthesis commands").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ManualEntry", "MANUAL_ENTRIES", "manual_corpus"]


@dataclass(frozen=True)
class ManualEntry:
    """One manual page."""

    command: str
    synopsis: str
    description: str
    options: tuple[str, ...] = ()
    is_synthesis: bool = True

    @property
    def text(self) -> str:
        lines = [f"NAME\n  {self.command} - {self.synopsis}", "DESCRIPTION", f"  {self.description}"]
        if self.options:
            lines.append("OPTIONS")
            lines.extend(f"  {option}" for option in self.options)
        return "\n".join(lines)


MANUAL_ENTRIES: tuple[ManualEntry, ...] = (
    ManualEntry(
        command="compile",
        synopsis="perform logic-level and gate-level synthesis",
        description=(
            "Maps the design to the target technology library and runs "
            "optimization passes. Map effort controls how aggressively the "
            "tool restructures logic: medium performs mapping and cleanup; "
            "high adds arithmetic resynthesis, chain balancing and "
            "critical-path gate sizing."
        ),
        options=("-map_effort medium|high", "-area_effort low|medium|high", "-incremental"),
    ),
    ManualEntry(
        command="compile_ultra",
        synopsis="highest-effort synthesis with advanced optimizations",
        description=(
            "Runs the full optimization stack: auto-ungrouping of hierarchy, "
            "DesignWare-style arithmetic implementation selection, balanced "
            "restructuring, timing-driven gate sizing and fanout buffering. "
            "The -retime option enables adaptive register retiming to "
            "balance pipeline stages; -no_autoungroup preserves hierarchy "
            "boundaries."
        ),
        options=("-retime", "-no_autoungroup", "-timing_high_effort_script"),
    ),
    ManualEntry(
        command="optimize_registers",
        synopsis="retime registers to balance sequential stages",
        description=(
            "Moves registers across combinational logic (Leiserson-Saxe "
            "retiming) to reduce the worst stage delay. Most effective on "
            "pipelines with unbalanced register placement or excessively "
            "long combinational sections between registers; consider it "
            "when register-to-register paths dominate timing violations."
        ),
    ),
    ManualEntry(
        command="balance_buffer",
        synopsis="insert balanced buffer trees on high-fanout nets",
        description=(
            "Splits nets whose fanout exceeds the limit with buffer trees, "
            "reducing the load seen by each driver. Advantageous for "
            "mitigating timing issues caused by high-fanout nets such as "
            "control strobes and enables; prefer it over retiming when the "
            "violation stems from fanout-induced delay."
        ),
        options=("-max_fanout <n>",),
    ),
    ManualEntry(
        command="explore_sizing",
        synopsis="statistical design-space exploration of gate sizes",
        description=(
            "Searches the gate-sizing design space with simulated "
            "annealing: randomized multi-gate drive-strength moves are "
            "scored by incremental static timing analysis, and several "
            "independently seeded chains run in parallel with a best-of "
            "reduction. Use after compile when the greedy sizing pass "
            "plateaus: the explorer escapes local optima and never "
            "degrades the starting timing/area point. The trial budget "
            "bounds runtime; results are deterministic per seed."
        ),
        options=(
            "-budget <trials per chain>",
            "-chains <parallel restarts>",
            "-seed <n>",
            "-max_gates <gates per move>",
            "-derate <ns pessimism margin>",
        ),
    ),
    ManualEntry(
        command="set_max_fanout",
        synopsis="set the maximum fanout design rule",
        description=(
            "Constrains the maximum fanout on nets in the current design; "
            "compile enforces the limit by buffering. Typical values are "
            "12-24 for timing-critical control logic."
        ),
    ),
    ManualEntry(
        command="set_max_area",
        synopsis="set the area optimization target",
        description=(
            "Sets the target maximum area. A value of 0 directs the tool "
            "to minimize area wherever timing allows, enabling downsizing "
            "of off-critical cells (area recovery)."
        ),
    ),
    ManualEntry(
        command="ungroup",
        synopsis="remove levels of hierarchy",
        description=(
            "Dissolves hierarchy boundaries so optimization can cross "
            "module edges. Use -all -flatten to fully flatten the design; "
            "recommended when critical paths traverse instance boundaries."
        ),
        options=("-all", "-flatten"),
    ),
    ManualEntry(
        command="set_flatten",
        synopsis="enable hierarchy flattening during compile",
        description=(
            "When true, compile removes hierarchy boundary buffers and "
            "optimizes across module boundaries."
        ),
        options=("true|false",),
    ),
    ManualEntry(
        command="create_clock",
        synopsis="define a clock for timing analysis",
        description=(
            "Creates a clock with the given period on the named port. All "
            "register-to-register and I/O paths are timed against it."
        ),
        options=("-period <ns>", "-name <clock>"),
    ),
    ManualEntry(
        command="set_wire_load_model",
        synopsis="select the wireload model for net delay estimation",
        description=(
            "Chooses the pre-layout wire capacitance model. Heavier models "
            "(e.g. 5K_heavy_1k) estimate more interconnect load per fanout."
        ),
        options=("-name <model>",),
    ),
    ManualEntry(
        command="report_timing",
        synopsis="display timing paths",
        description="Reports the most critical paths with per-cell delay increments.",
    ),
    ManualEntry(
        command="report_qor",
        synopsis="display quality-of-results summary",
        description="Reports WNS, CPS, TNS, area, cell counts and power.",
    ),
    # -- distractor pages (non-synthesis content) ------------------------------
    ManualEntry(
        command="license_checkout",
        synopsis="manage tool license features",
        description="Checks out a license feature from the license daemon.",
        is_synthesis=False,
    ),
    ManualEntry(
        command="gui_start",
        synopsis="launch the graphical interface",
        description="Starts the GUI window system and layout viewers.",
        is_synthesis=False,
    ),
    ManualEntry(
        command="project_archive",
        synopsis="archive project state to disk",
        description="Writes a compressed archive of the project directory tree.",
        is_synthesis=False,
    ),
    ManualEntry(
        command="mail_report",
        synopsis="email a report to the team",
        description="Sends the given report file through the site mail relay.",
        is_synthesis=False,
    ),
)


def manual_corpus() -> list[ManualEntry]:
    """All manual pages (synthesis + distractors)."""
    return list(MANUAL_ENTRIES)
