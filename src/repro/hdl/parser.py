"""Recursive-descent parser for the Verilog-2001 subset.

Supports ANSI and non-ANSI module headers, parameter lists, wire/reg/integer
declarations (with vector ranges and memories), continuous assignments,
always blocks (sequential and combinational) with if/case/begin-end bodies,
and module instantiation with named or positional connections and parameter
overrides.  Generate blocks and functions are recognised but only in the
simple forms used by :mod:`repro.designs`.
"""

from __future__ import annotations

from .ast_nodes import (
    AlwaysBlock,
    Assign,
    BinaryOp,
    BlockingAssign,
    CaseItem,
    CaseStatement,
    Concat,
    EventControl,
    Expr,
    Identifier,
    IfStatement,
    IndexSelect,
    Instance,
    Module,
    NetDecl,
    NonBlockingAssign,
    Number,
    ParamDecl,
    Port,
    PortConnection,
    Range,
    RangeSelect,
    Repeat,
    SourceFile,
    Statement,
    TernaryOp,
    UnaryOp,
)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_source", "parse_number"]


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""


# Binary operator precedence (higher binds tighter).  Mirrors IEEE 1364.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset({"~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"})


def parse_number(text: str) -> Number:
    """Parse a Verilog numeric literal string into a :class:`Number`."""
    raw = text.replace("_", "")
    if "'" not in raw:
        if "." in raw:
            return Number(value=int(float(raw)), width=None, base="d", text=text)
        return Number(value=int(raw), width=None, base="d", text=text)
    size_part, rest = raw.split("'", 1)
    width = int(size_part) if size_part else None
    if rest and rest[0] in "sS":
        rest = rest[1:]
    base_ch = rest[0].lower() if rest and rest[0].lower() in "bodh" else "d"
    digits = rest[1:] if rest and rest[0].lower() in "bodh" else rest
    digits = digits.replace("?", "x")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_ch]
    # Treat x/z bits as 0 for elaboration purposes.
    clean = "".join("0" if c in "xXzZ" else c for c in digits) or "0"
    return Number(value=int(clean, base), width=width, base=base_ch, text=text)


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source
        self._lines = source.splitlines()

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, kind: str, value: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.at(kind, value):
            tok = self.peek()
            self.pos += 1
            return tok
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r}, got {got.value!r} at line {got.line}:{got.col}"
            )
        return tok

    # -- top level ---------------------------------------------------------

    def parse(self) -> SourceFile:
        sf = SourceFile()
        while not self.at("EOF"):
            if self.at("KEYWORD", "module"):
                sf.modules.append(self.parse_module())
            else:
                tok = self.peek()
                raise ParseError(
                    f"unexpected {tok.value!r} at top level, line {tok.line}"
                )
        return sf

    def _slice_source(self, start_line: int, end_line: int) -> str:
        lo = max(start_line - 1, 0)
        hi = min(end_line, len(self._lines))
        return "\n".join(self._lines[lo:hi])

    def parse_module(self) -> Module:
        start = self.expect("KEYWORD", "module")
        name = self.expect("ID").value
        mod = Module(name=name, line=start.line)
        if self.accept("OP", "#"):
            self.expect("OP", "(")
            while not self.at("OP", ")"):
                self.accept("KEYWORD", "parameter")
                self._skip_optional_range()
                pname = self.expect("ID").value
                self.expect("OP", "=")
                mod.params.append(ParamDecl(name=pname, value=self.parse_expr()))
                if not self.accept("OP", ","):
                    break
            self.expect("OP", ")")
        if self.accept("OP", "("):
            self._parse_port_list(mod)
            self.expect("OP", ")")
        self.expect("OP", ";")
        while not self.at("KEYWORD", "endmodule"):
            self.parse_module_item(mod)
        end = self.expect("KEYWORD", "endmodule")
        mod.source_text = self._slice_source(start.line, end.line)
        return mod

    def _skip_optional_range(self) -> Range | None:
        if self.at("OP", "["):
            return self.parse_range()
        return None

    def _parse_port_list(self, mod: Module) -> None:
        if self.at("OP", ")"):
            return
        while True:
            if self.peek().value in ("input", "output", "inout"):
                direction = self.expect("KEYWORD").value
                is_reg = bool(self.accept("KEYWORD", "reg"))
                self.accept("KEYWORD", "wire")
                signed = bool(self.accept("KEYWORD", "signed"))
                rng = self._skip_optional_range()
                pname = self.expect("ID").value
                mod.ports.append(
                    Port(
                        name=pname,
                        direction=direction,
                        range=rng,
                        is_reg=is_reg,
                        signed=signed,
                    )
                )
                # ANSI style allows comma-separated same-direction names.
                while self.accept("OP", ","):
                    if self.peek().value in ("input", "output", "inout"):
                        self.pos -= 1  # let outer loop re-handle the comma
                        break
                    pname = self.expect("ID").value
                    mod.ports.append(
                        Port(
                            name=pname,
                            direction=direction,
                            range=rng,
                            is_reg=is_reg,
                            signed=signed,
                        )
                    )
                if self.accept("OP", ","):
                    continue
                break
            # non-ANSI: just names, declared in the body
            pname = self.expect("ID").value
            mod.ports.append(Port(name=pname, direction="unresolved"))
            if not self.accept("OP", ","):
                break

    def parse_range(self) -> Range:
        self.expect("OP", "[")
        msb = self.parse_expr()
        self.expect("OP", ":")
        lsb = self.parse_expr()
        self.expect("OP", "]")
        return Range(msb=msb, lsb=lsb)

    # -- module items --------------------------------------------------------

    def parse_module_item(self, mod: Module) -> None:
        tok = self.peek()
        if tok.kind == "KEYWORD":
            if tok.value in ("input", "output", "inout"):
                self._parse_body_port_decl(mod)
                return
            if tok.value in ("wire", "reg", "integer", "genvar"):
                self._parse_net_decl(mod)
                return
            if tok.value in ("parameter", "localparam"):
                self._parse_param_decl(mod)
                return
            if tok.value == "assign":
                self._parse_assign(mod)
                return
            if tok.value == "always":
                mod.always_blocks.append(self.parse_always())
                return
            if tok.value in ("generate", "endgenerate"):
                self.pos += 1  # transparent: items inside parsed normally
                return
            if tok.value == "function":
                self._skip_until_keyword("endfunction")
                return
            raise ParseError(f"unsupported item {tok.value!r} at line {tok.line}")
        if tok.kind == "ID":
            mod.instances.extend(self.parse_instances())
            return
        raise ParseError(f"unexpected {tok.value!r} at line {tok.line}")

    def _skip_until_keyword(self, kw: str) -> None:
        while not self.at("EOF") and not self.at("KEYWORD", kw):
            self.pos += 1
        self.expect("KEYWORD", kw)

    def _parse_body_port_decl(self, mod: Module) -> None:
        direction = self.expect("KEYWORD").value
        is_reg = bool(self.accept("KEYWORD", "reg"))
        self.accept("KEYWORD", "wire")
        signed = bool(self.accept("KEYWORD", "signed"))
        rng = self._skip_optional_range()
        while True:
            name = self.expect("ID").value
            existing = mod.port(name)
            if existing is not None:
                existing.direction = direction
                existing.range = rng
                existing.is_reg = is_reg
                existing.signed = signed
            else:
                mod.ports.append(
                    Port(
                        name=name,
                        direction=direction,
                        range=rng,
                        is_reg=is_reg,
                        signed=signed,
                    )
                )
            if not self.accept("OP", ","):
                break
        self.expect("OP", ";")

    def _parse_net_decl(self, mod: Module) -> None:
        kind = self.expect("KEYWORD").value
        signed = bool(self.accept("KEYWORD", "signed"))
        rng = self._skip_optional_range()
        while True:
            name = self.expect("ID").value
            array_range = self._skip_optional_range()
            decl = NetDecl(
                name=name, kind=kind, range=rng, signed=signed, array_range=array_range
            )
            mod.nets.append(decl)
            if self.accept("OP", "="):
                # wire w = expr;  -> implicit continuous assignment
                value = self.parse_expr()
                mod.assigns.append(Assign(target=Identifier(name=name), value=value))
            if not self.accept("OP", ","):
                break
        self.expect("OP", ";")

    def _parse_param_decl(self, mod: Module) -> None:
        kw = self.expect("KEYWORD").value
        self._skip_optional_range()
        while True:
            name = self.expect("ID").value
            self.expect("OP", "=")
            mod.params.append(
                ParamDecl(name=name, value=self.parse_expr(), local=kw == "localparam")
            )
            if not self.accept("OP", ","):
                break
        self.expect("OP", ";")

    def _parse_assign(self, mod: Module) -> None:
        self.expect("KEYWORD", "assign")
        while True:
            target = self.parse_expr()
            self.expect("OP", "=")
            value = self.parse_expr()
            mod.assigns.append(Assign(target=target, value=value))
            if not self.accept("OP", ","):
                break
        self.expect("OP", ";")

    # -- always blocks -------------------------------------------------------

    def parse_always(self) -> AlwaysBlock:
        tok = self.expect("KEYWORD", "always")
        self.expect("OP", "@")
        event = self.parse_event_control()
        body = self.parse_statement_or_block()
        return AlwaysBlock(event=event, body=body, line=tok.line)

    def parse_event_control(self) -> EventControl:
        ev = EventControl()
        if self.accept("OP", "*"):
            ev.is_star = True
            return ev
        self.expect("OP", "(")
        if self.accept("OP", "*"):
            ev.is_star = True
            self.expect("OP", ")")
            return ev
        while True:
            edge = "level"
            if self.at("KEYWORD", "posedge") or self.at("KEYWORD", "negedge"):
                edge = self.expect("KEYWORD").value
            sig = self.expect("ID").value
            ev.edges.append((edge, sig))
            if self.accept("KEYWORD", "or") or self.accept("OP", ","):
                continue
            break
        self.expect("OP", ")")
        return ev

    def parse_statement_or_block(self) -> list[Statement]:
        if self.at("KEYWORD", "begin"):
            self.expect("KEYWORD", "begin")
            if self.accept("OP", ":"):
                self.expect("ID")
            body: list[Statement] = []
            while not self.at("KEYWORD", "end"):
                body.append(self.parse_statement())
            self.expect("KEYWORD", "end")
            return body
        return [self.parse_statement()]

    def parse_statement(self) -> Statement:
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.value == "if":
            return self.parse_if()
        if tok.kind == "KEYWORD" and tok.value in ("case", "casez", "casex"):
            return self.parse_case()
        if tok.kind == "KEYWORD" and tok.value == "begin":
            from .ast_nodes import SeqBlock

            return SeqBlock(body=self.parse_statement_or_block(), line=tok.line)
        # assignment: the target is an lvalue, not a full expression, so the
        # nonblocking arrow <= is not swallowed as a comparison operator
        target = self.parse_lvalue()
        if self.accept("OP", "<="):
            value = self.parse_expr()
            self.expect("OP", ";")
            return NonBlockingAssign(target=target, value=value, line=tok.line)
        self.expect("OP", "=")
        value = self.parse_expr()
        self.expect("OP", ";")
        return BlockingAssign(target=target, value=value, line=tok.line)

    def parse_lvalue(self) -> Expr:
        """Parse an assignment target: identifier selects or a concat."""
        if self.at("OP", "{"):
            self.expect("OP", "{")
            parts = [self.parse_lvalue()]
            while self.accept("OP", ","):
                parts.append(self.parse_lvalue())
            self.expect("OP", "}")
            return Concat(parts=parts)
        return self._parse_postfix()

    def parse_if(self) -> IfStatement:
        tok = self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        cond = self.parse_expr()
        self.expect("OP", ")")
        then_body = self.parse_statement_or_block()
        else_body: list[Statement] = []
        if self.accept("KEYWORD", "else"):
            else_body = self.parse_statement_or_block()
        return IfStatement(cond=cond, then_body=then_body, else_body=else_body, line=tok.line)

    def parse_case(self) -> CaseStatement:
        kw = self.expect("KEYWORD")
        self.expect("OP", "(")
        subject = self.parse_expr()
        self.expect("OP", ")")
        stmt = CaseStatement(subject=subject, kind=kw.value, line=kw.line)
        while not self.at("KEYWORD", "endcase"):
            if self.accept("KEYWORD", "default"):
                self.accept("OP", ":")
                stmt.items.append(CaseItem(labels=[], body=self.parse_statement_or_block()))
                continue
            labels = [self.parse_expr()]
            while self.accept("OP", ","):
                labels.append(self.parse_expr())
            self.expect("OP", ":")
            stmt.items.append(CaseItem(labels=labels, body=self.parse_statement_or_block()))
        self.expect("KEYWORD", "endcase")
        return stmt

    # -- instances -------------------------------------------------------------

    def parse_instances(self) -> list[Instance]:
        module_name = self.expect("ID").value
        param_overrides: list[tuple[str | None, Expr]] = []
        if self.accept("OP", "#"):
            self.expect("OP", "(")
            while not self.at("OP", ")"):
                if self.accept("OP", "."):
                    pname = self.expect("ID").value
                    self.expect("OP", "(")
                    param_overrides.append((pname, self.parse_expr()))
                    self.expect("OP", ")")
                else:
                    param_overrides.append((None, self.parse_expr()))
                if not self.accept("OP", ","):
                    break
            self.expect("OP", ")")
        instances: list[Instance] = []
        while True:
            inst_name = self.expect("ID").value
            self.expect("OP", "(")
            conns: list[PortConnection] = []
            if not self.at("OP", ")"):
                while True:
                    if self.accept("OP", "."):
                        pname = self.expect("ID").value
                        self.expect("OP", "(")
                        expr = None if self.at("OP", ")") else self.parse_expr()
                        self.expect("OP", ")")
                        conns.append(PortConnection(port=pname, expr=expr))
                    else:
                        conns.append(PortConnection(port=None, expr=self.parse_expr()))
                    if not self.accept("OP", ","):
                        break
            self.expect("OP", ")")
            instances.append(
                Instance(
                    module_name=module_name,
                    instance_name=inst_name,
                    connections=conns,
                    param_overrides=list(param_overrides),
                )
            )
            if not self.accept("OP", ","):
                break
        self.expect("OP", ";")
        return instances

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self.accept("OP", "?"):
            if_true = self.parse_expr()
            self.expect("OP", ":")
            if_false = self.parse_expr()
            return TernaryOp(cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "OP" or tok.value not in _BINARY_PRECEDENCE:
                return left
            prec = _BINARY_PRECEDENCE[tok.value]
            if prec < min_prec:
                return left
            self.pos += 1
            right = self._parse_binary(prec + 1)
            left = BinaryOp(op=tok.value, left=left, right=right)

    def _parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "OP" and tok.value in _UNARY_OPS:
            self.pos += 1
            return UnaryOp(op=tok.value, operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        base = self._parse_primary()
        while self.at("OP", "["):
            self.expect("OP", "[")
            first = self.parse_expr()
            if self.accept("OP", ":"):
                second = self.parse_expr()
                self.expect("OP", "]")
                base = RangeSelect(base=base, msb=first, lsb=second)
            elif self.accept("OP", "+:"):
                # [base +: width] indexed part select
                width = self.parse_expr()
                self.expect("OP", "]")
                base = RangeSelect(
                    base=base,
                    msb=BinaryOp(op="+", left=first, right=BinaryOp(op="-", left=width, right=Number(value=1))),
                    lsb=first,
                )
            else:
                self.expect("OP", "]")
                base = IndexSelect(base=base, index=first)
        return base

    def _parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "NUMBER":
            self.pos += 1
            num = parse_number(tok.value)
            num.line = tok.line
            return num
        if tok.kind == "ID":
            self.pos += 1
            if self.at("OP", "("):
                from .ast_nodes import FunctionCall

                self.expect("OP", "(")
                args: list[Expr] = []
                if not self.at("OP", ")"):
                    args.append(self.parse_expr())
                    while self.accept("OP", ","):
                        args.append(self.parse_expr())
                self.expect("OP", ")")
                return FunctionCall(name=tok.value, args=args, line=tok.line)
            return Identifier(name=tok.value, line=tok.line)
        if self.accept("OP", "("):
            inner = self.parse_expr()
            self.expect("OP", ")")
            return inner
        if self.accept("OP", "{"):
            first = self.parse_expr()
            if self.at("OP", "{"):
                # replication {N{expr}}
                self.expect("OP", "{")
                value = self.parse_expr()
                while self.accept("OP", ","):
                    extra = self.parse_expr()
                    value = Concat(parts=[value, extra])
                self.expect("OP", "}")
                self.expect("OP", "}")
                return Repeat(count=first, value=value)
            parts = [first]
            while self.accept("OP", ","):
                parts.append(self.parse_expr())
            self.expect("OP", "}")
            return Concat(parts=parts)
        raise ParseError(f"unexpected token {tok.value!r} at line {tok.line}:{tok.col}")


def parse_source(text: str) -> SourceFile:
    """Parse Verilog ``text`` into a :class:`SourceFile` AST."""
    return _Parser(tokenize(text), text).parse()
