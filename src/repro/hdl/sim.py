"""Cycle-level simulator for gate netlists.

Used mainly by the test-suite to prove that elaboration (and later,
synthesis transformations) preserve functionality: drive primary inputs,
evaluate the combinational cone, and step registers on clock edges.
"""

from __future__ import annotations

from .netlist import Netlist

__all__ = ["Simulator", "evaluate_combinational"]


_EVAL = {
    "CONST0": lambda ins: 0,
    "CONST1": lambda ins: 1,
    "BUF": lambda ins: ins[0],
    "NOT": lambda ins: 1 - ins[0],
    "AND2": lambda ins: ins[0] & ins[1],
    "OR2": lambda ins: ins[0] | ins[1],
    "NAND2": lambda ins: 1 - (ins[0] & ins[1]),
    "NOR2": lambda ins: 1 - (ins[0] | ins[1]),
    "XOR2": lambda ins: ins[0] ^ ins[1],
    "XNOR2": lambda ins: 1 - (ins[0] ^ ins[1]),
    "MUX2": lambda ins: ins[2] if ins[0] else ins[1],
    "AOI21": lambda ins: 1 - ((ins[0] & ins[1]) | ins[2]),
    "OAI21": lambda ins: 1 - ((ins[0] | ins[1]) & ins[2]),
}


class Simulator:
    """Two-phase (combinational settle / clock step) netlist simulator."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.values: dict[str, int] = {name: 0 for name in netlist.nets}
        self._topo = netlist.topological_cells()

    def set_input(self, net_name: str, value: int) -> None:
        """Drive a primary input bit."""
        if not self.netlist.nets[net_name].is_input:
            raise ValueError(f"{net_name!r} is not a primary input")
        self.values[net_name] = value & 1

    def set_word(self, base: str, value: int, width: int) -> None:
        """Drive a bit-blasted vector ``base[0..width-1]`` (or scalar)."""
        if width == 1 and base in self.netlist.nets:
            self.set_input(base, value)
            return
        for i in range(width):
            self.set_input(f"{base}[{i}]", (value >> i) & 1)

    def get_word(self, base: str, width: int) -> int:
        """Read a bit-blasted vector back as an integer."""
        if width == 1 and base in self.values:
            return self.values[base]
        result = 0
        for i in range(width):
            result |= self.values[f"{base}[{i}]"] << i
        return result

    def settle(self) -> None:
        """Propagate values through the combinational cone."""
        for cell in self._topo:
            ins = [self.values[n] for n in cell.inputs]
            self.values[cell.output] = _EVAL[cell.gate](ins)

    def step(self) -> None:
        """One clock cycle: settle, then latch every DFF simultaneously."""
        self.settle()
        next_state = {
            cell.output: self.values[cell.inputs[0]]
            for cell in self.netlist.cells.values()
            if cell.is_sequential
        }
        self.values.update(next_state)
        self.settle()


def evaluate_combinational(
    netlist: Netlist, inputs: dict[str, int]
) -> dict[str, int]:
    """Evaluate a purely combinational netlist once.

    Args:
        netlist: the circuit (DFF outputs are treated as zero).
        inputs: mapping of primary-input net name to bit value.

    Returns:
        Mapping of primary-output net name to value.
    """
    sim = Simulator(netlist)
    for name, value in inputs.items():
        sim.set_input(name, value)
    sim.settle()
    return {name: sim.values[name] for name in netlist.primary_outputs}
