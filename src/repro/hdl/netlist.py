"""Gate-level netlist data structures.

The elaborator lowers RTL to a netlist of *generic* gates; the synthesis
engine (:mod:`repro.synth`) then technology-maps those onto library cells,
optimizes, and times the result.  A :class:`Netlist` is a flat graph:

* :class:`Net` — a single-bit wire with one driver pin and many sink pins.
* :class:`Cell` — a gate instance with ordered input nets and one output
  net (sequential cells also carry clock/reset nets in ``attrs``).

Generic gate types are listed in :data:`GENERIC_GATES`.  After technology
mapping, ``Cell.lib_cell`` names the bound library cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["GENERIC_GATES", "Net", "Cell", "Netlist", "NetlistError"]


#: Generic gate types produced by elaboration.  ``inputs`` is the pin count.
GENERIC_GATES = {
    "CONST0": 0,
    "CONST1": 0,
    "BUF": 1,
    "NOT": 1,
    "AND2": 2,
    "OR2": 2,
    "NAND2": 2,
    "NOR2": 2,
    "XOR2": 2,
    "XNOR2": 2,
    "MUX2": 3,  # (sel, a, b) -> sel ? b : a
    "AOI21": 3,  # ~((a & b) | c)
    "OAI21": 3,  # ~((a | b) & c)
    "DFF": 1,  # (d) -> q, clock in attrs["clock"]
}


class NetlistError(ValueError):
    """Raised for structurally invalid netlist operations."""


@dataclass
class Net:
    """A single-bit net."""

    name: str
    uid: int
    driver: str | None = None  # cell name, or None for primary inputs
    sinks: set[str] = field(default_factory=set)  # cell names
    is_input: bool = False
    is_output: bool = False
    is_clock: bool = False


@dataclass
class Cell:
    """A gate instance."""

    name: str
    gate: str
    inputs: list[str] = field(default_factory=list)  # net names
    output: str = ""
    lib_cell: str | None = None  # bound library cell after mapping
    attrs: dict = field(default_factory=dict)

    @property
    def is_sequential(self) -> bool:
        return self.gate == "DFF"


class Netlist:
    """A flat gate-level netlist with named nets and cells."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.nets: dict[str, Net] = {}
        self.cells: dict[str, Cell] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._uid = itertools.count()

    # -- construction --------------------------------------------------------

    def add_net(self, name: str | None = None, **flags: bool) -> Net:
        """Create a net; autogenerates a unique name when ``name`` is None."""
        if name is None:
            name = f"$n{next(self._uid)}"
        elif name in self.nets:
            raise NetlistError(f"duplicate net {name!r}")
        net = Net(name=name, uid=next(self._uid))
        for key, value in flags.items():
            setattr(net, key, value)
        self.nets[name] = net
        if net.is_input:
            self.primary_inputs.append(name)
        if net.is_output:
            self.primary_outputs.append(name)
        return net

    def get_or_add_net(self, name: str) -> Net:
        if name in self.nets:
            return self.nets[name]
        return self.add_net(name)

    def add_cell(
        self,
        gate: str,
        inputs: list[str],
        output: str,
        name: str | None = None,
        **attrs,
    ) -> Cell:
        """Create a gate driving ``output`` from ``inputs`` (net names)."""
        if gate not in GENERIC_GATES:
            raise NetlistError(f"unknown generic gate {gate!r}")
        expected = GENERIC_GATES[gate]
        if gate != "DFF" and len(inputs) != expected:
            raise NetlistError(
                f"{gate} expects {expected} inputs, got {len(inputs)}"
            )
        if name is None:
            name = f"$g{next(self._uid)}"
        if name in self.cells:
            raise NetlistError(f"duplicate cell {name!r}")
        out_net = self.get_or_add_net(output)
        if out_net.driver is not None:
            raise NetlistError(f"net {output!r} already driven by {out_net.driver!r}")
        if out_net.is_input:
            raise NetlistError(f"cannot drive primary input {output!r}")
        cell = Cell(name=name, gate=gate, inputs=list(inputs), output=output, attrs=attrs)
        out_net.driver = name
        for net_name in inputs:
            self.get_or_add_net(net_name).sinks.add(name)
        if "clock" in attrs:
            clk = self.get_or_add_net(attrs["clock"])
            clk.is_clock = True
            clk.sinks.add(name)
        self.cells[name] = cell
        return cell

    def remove_cell(self, name: str) -> None:
        cell = self.cells.pop(name)
        out = self.nets[cell.output]
        out.driver = None
        for net_name in set(cell.inputs) | ({cell.attrs["clock"]} if "clock" in cell.attrs else set()):
            self.nets[net_name].sinks.discard(name)

    def rewire_input(self, cell_name: str, old_net: str, new_net: str) -> None:
        """Replace every occurrence of ``old_net`` in a cell's input list."""
        cell = self.cells[cell_name]
        if old_net not in cell.inputs:
            raise NetlistError(f"{old_net!r} is not an input of {cell_name!r}")
        cell.inputs = [new_net if n == old_net else n for n in cell.inputs]
        if old_net not in cell.inputs and cell.attrs.get("clock") != old_net:
            self.nets[old_net].sinks.discard(cell_name)
        self.get_or_add_net(new_net).sinks.add(cell_name)

    # -- queries --------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_sequential(self) -> int:
        return sum(1 for c in self.cells.values() if c.is_sequential)

    @property
    def num_combinational(self) -> int:
        return self.num_cells - self.num_sequential

    def fanout(self, net_name: str) -> int:
        net = self.nets[net_name]
        return len(net.sinks) + (1 if net.is_output else 0)

    def driver_cell(self, net_name: str) -> Cell | None:
        driver = self.nets[net_name].driver
        return self.cells.get(driver) if driver else None

    def topological_cells(self) -> list[Cell]:
        """Combinational cells in topological order (DFF outputs as sources).

        Raises:
            NetlistError: if the combinational logic contains a cycle.
        """
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for cell in self.cells.values():
            if cell.is_sequential:
                continue
            deps = 0
            for net_name in cell.inputs:
                drv = self.nets[net_name].driver
                if drv is not None and not self.cells[drv].is_sequential:
                    deps += 1
                    dependents.setdefault(drv, []).append(cell.name)
            indegree[cell.name] = deps
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[Cell] = []
        while ready:
            name = ready.pop()
            order.append(self.cells[name])
            for dep in dependents.get(name, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indegree):
            raise NetlistError("combinational cycle detected")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError` if broken."""
        for name, net in self.nets.items():
            if net.driver is not None and net.driver not in self.cells:
                raise NetlistError(f"net {name!r} driven by missing cell {net.driver!r}")
            for sink in net.sinks:
                if sink not in self.cells:
                    raise NetlistError(f"net {name!r} sinks missing cell {sink!r}")
                cell = self.cells[sink]
                if name not in cell.inputs and cell.attrs.get("clock") != name:
                    raise NetlistError(
                        f"net {name!r} lists sink {sink!r} that does not read it"
                    )
        for name, cell in self.cells.items():
            if self.nets[cell.output].driver != name:
                raise NetlistError(f"cell {name!r} output net driver mismatch")
            for net_name in cell.inputs:
                if name not in self.nets[net_name].sinks:
                    raise NetlistError(
                        f"cell {name!r} input {net_name!r} missing sink backlink"
                    )
        self.topological_cells()  # raises on combinational cycles

    def stats(self) -> dict:
        """Summary statistics used by reports and CircuitMentor features."""
        gate_counts: dict[str, int] = {}
        for cell in self.cells.values():
            gate_counts[cell.gate] = gate_counts.get(cell.gate, 0) + 1
        max_fanout = max((self.fanout(n) for n in self.nets), default=0)
        return {
            "cells": self.num_cells,
            "sequential": self.num_sequential,
            "combinational": self.num_combinational,
            "nets": len(self.nets),
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "max_fanout": max_fanout,
            "gate_counts": gate_counts,
        }

    def replace_with(self, other: "Netlist") -> None:
        """Adopt ``other``'s contents in place (used to roll back passes)."""
        self.name = other.name
        self.nets = other.nets
        self.cells = other.cells
        self.primary_inputs = other.primary_inputs
        self.primary_outputs = other.primary_outputs
        self._uid = other._uid

    def clone(self) -> "Netlist":
        """Deep-copy the netlist (cells, nets, port lists)."""
        other = Netlist(self.name)
        for name, net in self.nets.items():
            clone = Net(
                name=net.name,
                uid=net.uid,
                driver=net.driver,
                sinks=set(net.sinks),
                is_input=net.is_input,
                is_output=net.is_output,
                is_clock=net.is_clock,
            )
            other.nets[name] = clone
        for name, cell in self.cells.items():
            other.cells[name] = Cell(
                name=cell.name,
                gate=cell.gate,
                inputs=list(cell.inputs),
                output=cell.output,
                lib_cell=cell.lib_cell,
                attrs=dict(cell.attrs),
            )
        other.primary_inputs = list(self.primary_inputs)
        other.primary_outputs = list(self.primary_outputs)
        max_uid = max((net.uid for net in self.nets.values()), default=-1)
        other._uid = itertools.count(max_uid + 1)
        return other
