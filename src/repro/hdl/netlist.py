"""Gate-level netlist data structures.

The elaborator lowers RTL to a netlist of *generic* gates; the synthesis
engine (:mod:`repro.synth`) then technology-maps those onto library cells,
optimizes, and times the result.  A :class:`Netlist` is a flat graph:

* :class:`Net` — a single-bit wire with one driver pin and many sink pins.
* :class:`Cell` — a gate instance with ordered input nets and one output
  net (sequential cells also carry clock/reset nets in ``attrs``).

Generic gate types are listed in :data:`GENERIC_GATES`.  After technology
mapping, ``Cell.lib_cell`` names the bound library cell.

Change journal
--------------

Every mutation is recorded in a bounded journal so observers (notably the
incremental timing engine in :mod:`repro.synth.timing`) can find out what
changed since they last looked instead of re-deriving the world:

* structural edits (``add_net``/``add_cell``/``remove_cell``/
  ``rewire_input``/``rewire_clock``/``replace_with``) log a ``structure``
  event and invalidate the cached topological order;
* rebinding a cell's library cell (``cell.lib_cell = ...``) logs a
  ``resize`` event naming the cell — the hot path of gate sizing.

Observers call :meth:`Netlist.journal_since` with their last-seen
:attr:`Netlist.version`; a ``None`` return means the journal was trimmed
past their cursor and they must rebuild from scratch.  Code that mutates
nets or cells directly (bypassing the methods here) must call
:meth:`Netlist.touch` afterwards so observers invalidate.
"""

from __future__ import annotations

import hashlib
import itertools

__all__ = ["GENERIC_GATES", "Net", "Cell", "Netlist", "NetlistError"]


#: Generic gate types produced by elaboration.  ``inputs`` is the pin count.
GENERIC_GATES = {
    "CONST0": 0,
    "CONST1": 0,
    "BUF": 1,
    "NOT": 1,
    "AND2": 2,
    "OR2": 2,
    "NAND2": 2,
    "NOR2": 2,
    "XOR2": 2,
    "XNOR2": 2,
    "MUX2": 3,  # (sel, a, b) -> sel ? b : a
    "AOI21": 3,  # ~((a & b) | c)
    "OAI21": 3,  # ~((a | b) & c)
    "DFF": 1,  # (d) -> q, clock in attrs["clock"]
}

#: Journal entries kept before the oldest half is trimmed.
_JOURNAL_LIMIT = 200_000


class NetlistError(ValueError):
    """Raised for structurally invalid netlist operations."""


class Net:
    """A single-bit net (slotted: netlists hold hundreds of thousands)."""

    __slots__ = ("name", "uid", "driver", "sinks", "is_input", "is_output", "is_clock")

    def __init__(
        self,
        name: str,
        uid: int,
        driver: str | None = None,
        sinks: set[str] | None = None,
        is_input: bool = False,
        is_output: bool = False,
        is_clock: bool = False,
    ) -> None:
        self.name = name
        self.uid = uid
        self.driver = driver  # cell name, or None for primary inputs
        self.sinks: set[str] = sinks if sinks is not None else set()
        self.is_input = is_input
        self.is_output = is_output
        self.is_clock = is_clock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Net(name={self.name!r}, driver={self.driver!r}, "
            f"sinks={sorted(self.sinks)!r})"
        )


class Cell:
    """A gate instance (slotted; ``lib_cell`` writes journal resize events)."""

    __slots__ = ("name", "gate", "inputs", "output", "_lib_cell", "attrs", "_owner")

    def __init__(
        self,
        name: str,
        gate: str,
        inputs: list[str] | None = None,
        output: str = "",
        lib_cell: str | None = None,
        attrs: dict | None = None,
        owner: "Netlist | None" = None,
    ) -> None:
        self.name = name
        self.gate = gate
        self.inputs: list[str] = inputs if inputs is not None else []
        self.output = output
        self._lib_cell = lib_cell  # bound library cell after mapping
        self.attrs: dict = attrs if attrs is not None else {}
        self._owner = owner

    @property
    def lib_cell(self) -> str | None:
        return self._lib_cell

    @lib_cell.setter
    def lib_cell(self, value: str | None) -> None:
        if value == self._lib_cell:
            return
        self._lib_cell = value
        if self._owner is not None:
            self._owner._note_resize(self.name)

    @property
    def is_sequential(self) -> bool:
        return self.gate == "DFF"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cell(name={self.name!r}, gate={self.gate!r}, "
            f"inputs={self.inputs!r}, output={self.output!r}, "
            f"lib_cell={self._lib_cell!r})"
        )


class Netlist:
    """A flat gate-level netlist with named nets and cells."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.nets: dict[str, Net] = {}
        self.cells: dict[str, Cell] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._uid = itertools.count()
        self._journal: list[tuple[str, str | None]] = []
        self._journal_base = 0
        self._topo_cache: list[Cell] | None = None
        self._max_uid_memo: int | None = None

    # -- change journal -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; equal versions mean nothing changed."""
        return self._journal_base + len(self._journal)

    def journal_since(self, cursor: int) -> list[tuple[str, str | None]] | None:
        """Events recorded since ``cursor``; None when trimmed past it."""
        if cursor < self._journal_base:
            return None
        return self._journal[cursor - self._journal_base :]

    def _append_event(self, kind: str, name: str | None) -> None:
        journal = self._journal
        journal.append((kind, name))
        if len(journal) > _JOURNAL_LIMIT:
            drop = len(journal) // 2
            self._journal_base += drop
            del journal[:drop]

    def _note_structure(self) -> None:
        self._topo_cache = None
        self._max_uid_memo = None
        self._append_event("structure", None)

    def _note_resize(self, cell_name: str) -> None:
        self._append_event("resize", cell_name)

    def touch(self) -> None:
        """Record an out-of-band mutation (direct net/cell attribute edits)."""
        self._note_structure()

    # -- construction --------------------------------------------------------

    def add_net(self, name: str | None = None, **flags: bool) -> Net:
        """Create a net; autogenerates a unique name when ``name`` is None."""
        if name is None:
            name = f"$n{next(self._uid)}"
        elif name in self.nets:
            raise NetlistError(f"duplicate net {name!r}")
        net = Net(name=name, uid=next(self._uid))
        for key, value in flags.items():
            if key not in ("driver", "is_input", "is_output", "is_clock"):
                raise NetlistError(f"unknown net flag {key!r}")
            setattr(net, key, value)
        self.nets[name] = net
        if net.is_input:
            self.primary_inputs.append(name)
        if net.is_output:
            self.primary_outputs.append(name)
        self._note_structure()
        return net

    def get_or_add_net(self, name: str) -> Net:
        if name in self.nets:
            return self.nets[name]
        return self.add_net(name)

    def add_cell(
        self,
        gate: str,
        inputs: list[str],
        output: str,
        name: str | None = None,
        **attrs,
    ) -> Cell:
        """Create a gate driving ``output`` from ``inputs`` (net names)."""
        if gate not in GENERIC_GATES:
            raise NetlistError(f"unknown generic gate {gate!r}")
        expected = GENERIC_GATES[gate]
        if gate != "DFF" and len(inputs) != expected:
            raise NetlistError(
                f"{gate} expects {expected} inputs, got {len(inputs)}"
            )
        if name is None:
            name = f"$g{next(self._uid)}"
        if name in self.cells:
            raise NetlistError(f"duplicate cell {name!r}")
        out_net = self.get_or_add_net(output)
        if out_net.driver is not None:
            raise NetlistError(f"net {output!r} already driven by {out_net.driver!r}")
        if out_net.is_input:
            raise NetlistError(f"cannot drive primary input {output!r}")
        cell = Cell(
            name=name, gate=gate, inputs=list(inputs), output=output,
            attrs=attrs, owner=self,
        )
        out_net.driver = name
        for net_name in inputs:
            self.get_or_add_net(net_name).sinks.add(name)
        if "clock" in attrs:
            clk = self.get_or_add_net(attrs["clock"])
            clk.is_clock = True
            clk.sinks.add(name)
        self.cells[name] = cell
        self._note_structure()
        return cell

    def remove_cell(self, name: str) -> None:
        cell = self.cells.pop(name)
        out = self.nets[cell.output]
        out.driver = None
        for net_name in set(cell.inputs) | ({cell.attrs["clock"]} if "clock" in cell.attrs else set()):
            self.nets[net_name].sinks.discard(name)
        cell._owner = None
        self._note_structure()

    def rewire_input(self, cell_name: str, old_net: str, new_net: str) -> None:
        """Replace every occurrence of ``old_net`` in a cell's input list."""
        cell = self.cells[cell_name]
        if old_net not in cell.inputs:
            raise NetlistError(f"{old_net!r} is not an input of {cell_name!r}")
        cell.inputs = [new_net if n == old_net else n for n in cell.inputs]
        if old_net not in cell.inputs and cell.attrs.get("clock") != old_net:
            self.nets[old_net].sinks.discard(cell_name)
        self.get_or_add_net(new_net).sinks.add(cell_name)
        self._note_structure()

    def rewire_clock(self, cell_name: str, new_clock: str) -> None:
        """Point a sequential cell's clock pin at a different net."""
        cell = self.cells[cell_name]
        old_clock = cell.attrs.get("clock")
        if old_clock is None:
            raise NetlistError(f"{cell_name!r} has no clock pin")
        cell.attrs["clock"] = new_clock
        if old_clock not in cell.inputs:
            self.nets[old_clock].sinks.discard(cell_name)
        self.get_or_add_net(new_clock).sinks.add(cell_name)
        self._note_structure()

    # -- queries --------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_sequential(self) -> int:
        return sum(1 for c in self.cells.values() if c.is_sequential)

    @property
    def num_combinational(self) -> int:
        return self.num_cells - self.num_sequential

    def fanout(self, net_name: str) -> int:
        net = self.nets[net_name]
        return len(net.sinks) + (1 if net.is_output else 0)

    def driver_cell(self, net_name: str) -> Cell | None:
        driver = self.nets[net_name].driver
        return self.cells.get(driver) if driver else None

    def topological_cells(self) -> list[Cell]:
        """Combinational cells in topological order (DFF outputs as sources).

        The order is cached and invalidated by structural mutations; do not
        mutate the returned list.

        Raises:
            NetlistError: if the combinational logic contains a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for cell in self.cells.values():
            if cell.is_sequential:
                continue
            deps = 0
            for net_name in cell.inputs:
                drv = self.nets[net_name].driver
                if drv is not None and not self.cells[drv].is_sequential:
                    deps += 1
                    dependents.setdefault(drv, []).append(cell.name)
            indegree[cell.name] = deps
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[Cell] = []
        while ready:
            name = ready.pop()
            order.append(self.cells[name])
            for dep in dependents.get(name, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indegree):
            raise NetlistError("combinational cycle detected")
        self._topo_cache = order
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError` if broken."""
        for name, net in self.nets.items():
            if net.driver is not None and net.driver not in self.cells:
                raise NetlistError(f"net {name!r} driven by missing cell {net.driver!r}")
            for sink in net.sinks:
                if sink not in self.cells:
                    raise NetlistError(f"net {name!r} sinks missing cell {sink!r}")
                cell = self.cells[sink]
                if name not in cell.inputs and cell.attrs.get("clock") != name:
                    raise NetlistError(
                        f"net {name!r} lists sink {sink!r} that does not read it"
                    )
        for name, cell in self.cells.items():
            if self.nets[cell.output].driver != name:
                raise NetlistError(f"cell {name!r} output net driver mismatch")
            for net_name in cell.inputs:
                if name not in self.nets[net_name].sinks:
                    raise NetlistError(
                        f"cell {name!r} input {net_name!r} missing sink backlink"
                    )
        self.topological_cells()  # raises on combinational cycles

    def stats(self) -> dict:
        """Summary statistics used by reports and CircuitMentor features."""
        gate_counts: dict[str, int] = {}
        for cell in self.cells.values():
            gate_counts[cell.gate] = gate_counts.get(cell.gate, 0) + 1
        max_fanout = max((self.fanout(n) for n in self.nets), default=0)
        return {
            "cells": self.num_cells,
            "sequential": self.num_sequential,
            "combinational": self.num_combinational,
            "nets": len(self.nets),
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "max_fanout": max_fanout,
            "gate_counts": gate_counts,
        }

    def fingerprint(self) -> str:
        """Stable content hash over cells, nets and ports.

        Two netlists with identical structure, bindings and attributes hash
        equal regardless of construction order; used as the netlist half of
        synthesis-cache keys.
        """
        h = hashlib.sha256()
        h.update(self.name.encode())
        for name in sorted(self.cells):
            cell = self.cells[name]
            attrs = ",".join(f"{k}={cell.attrs[k]!r}" for k in sorted(cell.attrs))
            h.update(
                f"C|{name}|{cell.gate}|{cell.lib_cell}|"
                f"{','.join(cell.inputs)}|{cell.output}|{attrs}\n".encode()
            )
        for name in sorted(self.nets):
            net = self.nets[name]
            h.update(
                f"N|{name}|{int(net.is_input)}{int(net.is_output)}"
                f"{int(net.is_clock)}\n".encode()
            )
        h.update(("P|" + ",".join(self.primary_inputs)).encode())
        h.update(("O|" + ",".join(self.primary_outputs)).encode())
        return h.hexdigest()

    def _max_uid(self) -> int:
        """Highest uid ever handed out, recovered from nets and names.

        Autogenerated cell/net names (``$g<uid>``/``$n<uid>``) consume the
        same counter as net uids, so both sources are scanned; clones and
        unpickled netlists resume the counter past this value so their next
        ``add_net``/``add_cell`` cannot collide with an existing name.

        Memoized until the next structural edit: pristine frontend-cache
        entries are cloned once per compile, and the scan would otherwise
        dominate the hit path.
        """
        if self._max_uid_memo is not None:
            return self._max_uid_memo
        max_uid = max((net.uid for net in self.nets.values()), default=-1)
        for name in itertools.chain(self.nets, self.cells):
            if name.startswith(("$n", "$g")) and name[2:].isdigit():
                uid = int(name[2:])
                if uid > max_uid:
                    max_uid = uid
        self._max_uid_memo = max_uid
        return max_uid

    def __getstate__(self) -> dict:
        # itertools.count is not picklable; __setstate__ re-derives it.  The
        # journal and topo cache are dropped: an unpickled netlist is a fresh
        # object no observer holds a cursor into.
        state = self.__dict__.copy()
        del state["_uid"]
        state["_journal"] = []
        state["_journal_base"] = 0
        state["_topo_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_max_uid_memo", None)
        self.__dict__.update(state)
        self._uid = itertools.count(self._max_uid() + 1)

    def replace_with(self, other: "Netlist") -> None:
        """Adopt ``other``'s contents in place (used to roll back passes)."""
        self.name = other.name
        self.nets = other.nets
        self.cells = other.cells
        self.primary_inputs = other.primary_inputs
        self.primary_outputs = other.primary_outputs
        self._uid = other._uid
        for cell in self.cells.values():
            cell._owner = self
        self._note_structure()

    def clone(self) -> "Netlist":
        """Deep-copy the netlist (cells, nets, port lists).

        Hot path: the elaborated-netlist cache hands out a clone per
        read_verilog, so objects are built by direct slot assignment
        instead of the (kwarg-processing) constructors.
        """
        other = Netlist(self.name)
        nets = other.nets
        for name, net in self.nets.items():
            copy = Net.__new__(Net)
            copy.name = net.name
            copy.uid = net.uid
            copy.driver = net.driver
            copy.sinks = set(net.sinks)
            copy.is_input = net.is_input
            copy.is_output = net.is_output
            copy.is_clock = net.is_clock
            nets[name] = copy
        cells = other.cells
        for name, cell in self.cells.items():
            copy = Cell.__new__(Cell)
            copy.name = cell.name
            copy.gate = cell.gate
            copy.inputs = list(cell.inputs)
            copy.output = cell.output
            copy._lib_cell = cell._lib_cell
            copy.attrs = dict(cell.attrs)
            copy._owner = other
            cells[name] = copy
        other.primary_inputs = list(self.primary_inputs)
        other.primary_outputs = list(self.primary_outputs)
        max_uid = self._max_uid()
        other._max_uid_memo = max_uid
        other._uid = itertools.count(max_uid + 1)
        return other
