"""AST node definitions for the Verilog subset.

Nodes are plain dataclasses.  The tree mirrors the textual structure of the
source: a :class:`SourceFile` holds :class:`Module` definitions, each with
port/net declarations, continuous assignments, always blocks and child
instantiations.  :mod:`repro.hdl.elaborator` lowers this tree to a gate
netlist; :mod:`repro.mentor.circuit_graph` lifts it into a property graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node",
    "SourceFile",
    "Module",
    "Port",
    "NetDecl",
    "ParamDecl",
    "Range",
    "Expr",
    "Identifier",
    "Number",
    "UnaryOp",
    "BinaryOp",
    "TernaryOp",
    "Concat",
    "Repeat",
    "IndexSelect",
    "RangeSelect",
    "FunctionCall",
    "Assign",
    "AlwaysBlock",
    "EventControl",
    "Statement",
    "BlockingAssign",
    "NonBlockingAssign",
    "IfStatement",
    "CaseItem",
    "CaseStatement",
    "SeqBlock",
    "Instance",
    "PortConnection",
]


@dataclass
class Node:
    """Base class for every AST node."""

    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class Number(Expr):
    """A numeric literal with optional explicit ``width`` (None = unsized)."""

    value: int
    width: int | None = None
    base: str = "d"
    text: str = ""


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class TernaryOp(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Concat(Expr):
    parts: list[Expr]


@dataclass
class Repeat(Expr):
    count: Expr
    value: Expr


@dataclass
class IndexSelect(Expr):
    base: Expr
    index: Expr


@dataclass
class RangeSelect(Expr):
    base: Expr
    msb: Expr
    lsb: Expr


@dataclass
class FunctionCall(Expr):
    name: str
    args: list[Expr]


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Range(Node):
    """A ``[msb:lsb]`` vector range (expressions, resolved at elaboration)."""

    msb: Expr
    lsb: Expr


@dataclass
class Port(Node):
    name: str
    direction: str  # "input" | "output" | "inout"
    range: Range | None = None
    is_reg: bool = False
    signed: bool = False


@dataclass
class NetDecl(Node):
    name: str
    kind: str  # "wire" | "reg" | "integer"
    range: Range | None = None
    signed: bool = False
    array_range: Range | None = None  # memories: reg [7:0] mem [0:255]


@dataclass
class ParamDecl(Node):
    name: str
    value: Expr
    local: bool = False


# --------------------------------------------------------------------------
# Behavioural statements
# --------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for procedural statements."""


@dataclass
class BlockingAssign(Statement):
    target: Expr
    value: Expr


@dataclass
class NonBlockingAssign(Statement):
    target: Expr
    value: Expr


@dataclass
class IfStatement(Statement):
    cond: Expr
    then_body: list[Statement]
    else_body: list[Statement] = field(default_factory=list)


@dataclass
class CaseItem(Node):
    labels: list[Expr]  # empty list => default
    body: list[Statement] = field(default_factory=list)


@dataclass
class CaseStatement(Statement):
    subject: Expr
    items: list[CaseItem] = field(default_factory=list)
    kind: str = "case"  # case | casez | casex


@dataclass
class SeqBlock(Statement):
    body: list[Statement] = field(default_factory=list)


@dataclass
class EventControl(Node):
    """``@(posedge clk or negedge rst_n)`` / ``@(*)`` sensitivity."""

    edges: list[tuple[str, str]] = field(default_factory=list)  # (edge, signal)
    is_star: bool = False

    @property
    def is_sequential(self) -> bool:
        return any(edge in ("posedge", "negedge") for edge, _ in self.edges)

    @property
    def clock(self) -> str | None:
        """Name of the first posedge/negedge signal, if sequential."""
        for edge, sig in self.edges:
            if edge in ("posedge", "negedge"):
                return sig
        return None


@dataclass
class AlwaysBlock(Node):
    event: EventControl
    body: list[Statement] = field(default_factory=list)


# --------------------------------------------------------------------------
# Structural
# --------------------------------------------------------------------------


@dataclass
class Assign(Node):
    """Continuous assignment ``assign lhs = rhs;``."""

    target: Expr
    value: Expr


@dataclass
class PortConnection(Node):
    port: str | None  # None for positional connections
    expr: Expr | None


@dataclass
class Instance(Node):
    module_name: str
    instance_name: str
    connections: list[PortConnection] = field(default_factory=list)
    param_overrides: list[tuple[str | None, Expr]] = field(default_factory=list)


@dataclass
class Module(Node):
    name: str
    ports: list[Port] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)
    nets: list[NetDecl] = field(default_factory=list)
    assigns: list[Assign] = field(default_factory=list)
    always_blocks: list[AlwaysBlock] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    source_text: str = ""

    def port(self, name: str) -> Port | None:
        for p in self.ports:
            if p.name == name:
                return p
        return None


@dataclass
class SourceFile(Node):
    modules: list[Module] = field(default_factory=list)

    def module(self, name: str) -> Module | None:
        for m in self.modules:
            if m.name == name:
                return m
        return None
