"""Verilog-2001 subset front end: lexer, parser, AST, elaborator, netlist."""

from .ast_nodes import Module, SourceFile
from .elaborator import ElaborationError, Elaborator, elaborate
from .lexer import LexerError, Token, tokenize
from .netlist import Cell, Net, Netlist, NetlistError
from .parser import ParseError, parse_source
from .writer import write_verilog

__all__ = [
    "write_verilog",
    "Module",
    "SourceFile",
    "ElaborationError",
    "Elaborator",
    "elaborate",
    "LexerError",
    "Token",
    "tokenize",
    "Cell",
    "Net",
    "Netlist",
    "NetlistError",
    "ParseError",
    "parse_source",
]
