"""Tokenizer for the Verilog-2001 subset understood by :mod:`repro.hdl`.

The lexer is a small hand-rolled scanner producing a flat list of
:class:`Token` objects.  It handles line/block comments, sized and unsized
numeric literals, identifiers (including escaped identifiers), operators of
up to three characters and string literals.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "LexerError", "tokenize", "KEYWORDS"]


KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "assign",
        "always",
        "posedge",
        "negedge",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "parameter",
        "localparam",
        "integer",
        "genvar",
        "generate",
        "endgenerate",
        "for",
        "function",
        "endfunction",
        "signed",
        "or",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "~&",
    "~|",
    "~^",
    "^~",
    "**",
    "+:",
    "-:",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "@",
    "#",
]


class LexerError(ValueError):
    """Raised when the scanner meets a character it cannot tokenize."""


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of ``KEYWORD``, ``ID``, ``NUMBER``, ``STRING``, ``OP``
            or ``EOF``.
        value: the literal text of the token.
        line: 1-based source line the token starts on.
        col: 1-based source column the token starts on.
    """

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_$"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into a token list terminated by an ``EOF`` token.

    Raises:
        LexerError: on unterminated comments/strings or stray characters.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            advance((end - i) if end != -1 else (n - i))
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexerError(f"unterminated block comment at line {line}")
            advance(end + 2 - i)
            continue
        if ch == "`":
            # Compiler directives (`timescale, `define, ...) — skip the line.
            end = text.find("\n", i)
            advance((end - i) if end != -1 else (n - i))
            continue
        start_line, start_col = line, col
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexerError(f"unterminated string at line {line}")
            value = text[i : j + 1]
            advance(j + 1 - i)
            tokens.append(Token("STRING", value, start_line, start_col))
            continue
        if ch == "\\":
            # Escaped identifier: backslash up to whitespace.
            j = i + 1
            while j < n and not text[j].isspace():
                j += 1
            tokens.append(Token("ID", text[i + 1 : j], start_line, start_col))
            advance(j - i)
            continue
        if ch.isdigit() or (ch == "'" and i + 1 < n):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "_"):
                j += 1
            if j < n and text[j] == "'":
                j += 1
                if j < n and text[j] in "sS":
                    j += 1
                if j < n and text[j] in "bBoOdDhH":
                    j += 1
                while j < n and (text[j].isalnum() or text[j] in "_?xXzZ"):
                    j += 1
            elif j < n and text[j] == ".":
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            value = text[i:j]
            advance(j - i)
            tokens.append(Token("NUMBER", value, start_line, start_col))
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            value = text[i:j]
            advance(j - i)
            kind = "KEYWORD" if value in KEYWORDS else "ID"
            tokens.append(Token(kind, value, start_line, start_col))
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                advance(len(op))
                tokens.append(Token("OP", op, start_line, start_col))
                break
        else:
            raise LexerError(f"unexpected character {ch!r} at line {line}:{col}")
    tokens.append(Token("EOF", "", line, col))
    return tokens
