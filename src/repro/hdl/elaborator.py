"""Elaboration: lower a parsed Verilog AST to a flat gate-level netlist.

The elaborator bit-blasts every signal into single-bit nets and synthesizes
word-level RTL operators into generic gates:

* bitwise ops -> per-bit gates; reductions -> balanced gate trees
* ``+``/``-`` -> ripple-carry adders; ``*`` -> shift-and-add array multiplier
* comparisons -> subtract-based comparators; shifts -> barrel shifters
* ternaries and if/case statements -> MUX2 trees (priority order preserved)
* ``always @(posedge clk)`` bodies -> symbolic next-state functions feeding
  one DFF per written bit; reg arrays become register banks with
  decoder-enabled write ports and mux-tree read ports
* module instances are flattened recursively with ``/``-separated
  hierarchical names; parameter overrides are applied per instance

The output is a :class:`repro.hdl.netlist.Netlist` whose quality is then the
subject of the synthesis engine.
"""

from __future__ import annotations

import math

from .. import perf
from .ast_nodes import (
    AlwaysBlock,
    BinaryOp,
    BlockingAssign,
    CaseStatement,
    Concat,
    Expr,
    FunctionCall,
    Identifier,
    IfStatement,
    IndexSelect,
    Instance,
    Module,
    NonBlockingAssign,
    Number,
    RangeSelect,
    Repeat,
    SeqBlock,
    SourceFile,
    Statement,
    TernaryOp,
    UnaryOp,
)
from .netlist import Netlist

__all__ = ["ElaborationError", "Elaborator", "elaborate", "eval_const_expr"]

#: Safety cap on total memory bits expanded into register banks.
MAX_ARRAY_BITS = 1 << 17


class ElaborationError(ValueError):
    """Raised when the design cannot be lowered to gates."""


def _copy_arrays(arrays: dict[str, list[list[str]]]) -> dict[str, list[list[str]]]:
    return {k: [list(w) for w in v] for k, v in arrays.items()}


class _BitsExpr(Expr):
    """Internal expression wrapping already-synthesized bits."""

    def __init__(self, bits: list[str]) -> None:
        super().__init__()
        self.bits = bits


class _Scope:
    """Per-instance elaboration scope: parameters, signals, net bindings."""

    def __init__(self, module: Module, prefix: str, params: dict[str, int]) -> None:
        self.module = module
        self.prefix = prefix
        self.params = params
        # signal name -> list of net names (one per bit, LSB first)
        self.sigbits: dict[str, list[str]] = {}
        # array signal name -> list of words, each a list of net names
        self.arrays: dict[str, list[list[str]]] = {}
        self.widths: dict[str, int] = {}
        self.array_depths: dict[str, int] = {}


class Elaborator:
    """Drives elaboration of ``top`` within a parsed :class:`SourceFile`."""

    def __init__(
        self,
        source: SourceFile,
        top: str,
        params: dict[str, int] | None = None,
    ) -> None:
        self.source = source
        self.top_name = top
        self.top_params = dict(params or {})
        self.netlist = Netlist(name=top)
        self._const_nets: dict[int, str] = {}

    # -- public API ----------------------------------------------------------

    def elaborate(self) -> Netlist:
        module = self.source.module(self.top_name)
        if module is None:
            raise ElaborationError(f"top module {self.top_name!r} not found")
        scope = self._make_scope(module, prefix="", overrides=self.top_params)
        self._declare_top_ports(scope)
        self._elaborate_module(scope)
        self._finalize_outputs(scope)
        return self.netlist

    # -- scope / signal plumbing ----------------------------------------------

    def _make_scope(
        self, module: Module, prefix: str, overrides: dict[str, int]
    ) -> _Scope:
        params: dict[str, int] = {}
        for decl in module.params:
            if not decl.local and decl.name in overrides:
                params[decl.name] = overrides[decl.name]
            else:
                params[decl.name] = self._eval_const(decl.value, params)
        for name, value in overrides.items():
            params.setdefault(name, value)
        scope = _Scope(module, prefix, params)
        for port in module.ports:
            scope.widths[port.name] = self._range_width(port.range, params)
        for net in module.nets:
            width = self._range_width(net.range, params)
            scope.widths[net.name] = width
            if net.array_range is not None:
                depth = self._range_width(net.array_range, params)
                if depth * width > MAX_ARRAY_BITS:
                    raise ElaborationError(
                        f"array {net.name!r} too large ({depth}x{width} bits)"
                    )
                scope.array_depths[net.name] = depth
        return scope

    def _range_width(self, rng, params: dict[str, int]) -> int:
        if rng is None:
            return 1
        msb = self._eval_const(rng.msb, params)
        lsb = self._eval_const(rng.lsb, params)
        return abs(msb - lsb) + 1

    def _signal_bits(self, scope: _Scope, name: str) -> list[str]:
        """Net names for signal ``name`` in ``scope``, creating lazily."""
        if name in scope.sigbits:
            return scope.sigbits[name]
        if name not in scope.widths:
            if name in scope.params:
                value = scope.params[name]
                width = max(value.bit_length(), 1)
                bits = [self._const_net(value >> i & 1) for i in range(width)]
                scope.sigbits[name] = bits
                return bits
            raise ElaborationError(
                f"undeclared signal {name!r} in {scope.module.name}"
            )
        width = scope.widths[name]
        if width == 1:
            bits = [f"{scope.prefix}{name}"]
        else:
            bits = [f"{scope.prefix}{name}[{i}]" for i in range(width)]
        for bit in bits:
            self.netlist.get_or_add_net(bit)
        scope.sigbits[name] = bits
        return bits

    def _array_words(self, scope: _Scope, name: str) -> list[list[str]]:
        if name in scope.arrays:
            return scope.arrays[name]
        width = scope.widths[name]
        depth = scope.array_depths[name]
        words = []
        for w in range(depth):
            bits = [f"{scope.prefix}{name}[{w}][{i}]" for i in range(width)]
            for bit in bits:
                self.netlist.get_or_add_net(bit)
            words.append(bits)
        scope.arrays[name] = words
        return words

    def _const_net(self, value: int) -> str:
        value = value & 1
        if value not in self._const_nets:
            net = self.netlist.add_net(f"$const{value}")
            self.netlist.add_cell("CONST1" if value else "CONST0", [], net.name)
            self._const_nets[value] = net.name
        return self._const_nets[value]

    def _declare_top_ports(self, scope: _Scope) -> None:
        for port in scope.module.ports:
            bits = self._signal_bits(scope, port.name)
            for bit in bits:
                net = self.netlist.nets[bit]
                if port.direction == "input":
                    net.is_input = True
                    self.netlist.primary_inputs.append(bit)
                elif port.direction == "output":
                    net.is_output = True
                    self.netlist.primary_outputs.append(bit)

    def _finalize_outputs(self, scope: _Scope) -> None:
        """Tie any undriven non-input nets to constant 0 (safe default)."""
        zero = None
        for name, net in list(self.netlist.nets.items()):
            if net.driver is None and not net.is_input and (net.sinks or net.is_output):
                if name.startswith("$const"):
                    continue
                if zero is None:
                    zero = self._const_net(0)
                if name == zero:
                    continue
                self.netlist.add_cell("BUF", [zero], name)

    # -- constant evaluation ----------------------------------------------------

    def _eval_const(self, expr: Expr, params: dict[str, int]) -> int:
        return eval_const_expr(expr, params)


    def _try_const(self, expr: Expr, scope: _Scope) -> int | None:
        try:
            return self._eval_const(expr, scope.params)
        except ElaborationError:
            return None

    # -- width inference ---------------------------------------------------------

    def _width_of(self, expr: Expr, scope: _Scope) -> int:
        if isinstance(expr, Number):
            return expr.width or max(expr.value.bit_length(), 1)
        if isinstance(expr, Identifier):
            if expr.name in scope.widths:
                return scope.widths[expr.name]
            if expr.name in scope.params:
                return max(scope.params[expr.name].bit_length(), 1)
            raise ElaborationError(f"undeclared signal {expr.name!r}")
        if isinstance(expr, UnaryOp):
            if expr.op in ("!", "&", "|", "^", "~&", "~|", "~^"):
                return 1
            return self._width_of(expr.operand, scope)
        if isinstance(expr, BinaryOp):
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||", "===", "!=="):
                return 1
            if expr.op in ("<<", ">>", "<<<", ">>>"):
                return self._width_of(expr.left, scope)
            if expr.op == "*":
                return self._width_of(expr.left, scope) + self._width_of(
                    expr.right, scope
                )
            return max(
                self._width_of(expr.left, scope), self._width_of(expr.right, scope)
            )
        if isinstance(expr, TernaryOp):
            return max(
                self._width_of(expr.if_true, scope),
                self._width_of(expr.if_false, scope),
            )
        if isinstance(expr, Concat):
            return sum(self._width_of(p, scope) for p in expr.parts)
        if isinstance(expr, Repeat):
            count = self._eval_const(expr.count, scope.params)
            return count * self._width_of(expr.value, scope)
        if isinstance(expr, IndexSelect):
            base = expr.base
            if isinstance(base, Identifier) and base.name in scope.array_depths:
                return scope.widths[base.name]
            return 1
        if isinstance(expr, RangeSelect):
            msb = self._eval_const(expr.msb, scope.params)
            lsb = self._eval_const(expr.lsb, scope.params)
            return abs(msb - lsb) + 1
        raise ElaborationError(f"cannot size {type(expr).__name__}")

    # -- gate builders --------------------------------------------------------------

    def _gate(self, gate: str, inputs: list[str]) -> str:
        out = self.netlist.add_net().name
        self.netlist.add_cell(gate, inputs, out)
        return out

    def _reduce_tree(self, gate: str, bits: list[str]) -> str:
        """Balanced reduction tree (AND2/OR2/XOR2) over ``bits``."""
        if not bits:
            return self._const_net(0)
        layer = list(bits)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self._gate(gate, [layer[i], layer[i + 1]]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def _mux(self, sel: str, a: str, b: str) -> str:
        """MUX2: sel==0 -> a, sel==1 -> b."""
        return self._gate("MUX2", [sel, a, b])

    def _ripple_add(
        self, a: list[str], b: list[str], carry: str
    ) -> tuple[list[str], str, list[str]]:
        """Ripple-carry core; returns (sums, carry out, created cell names)."""
        members: list[str] = []

        def gate(kind: str, inputs: list[str]) -> str:
            out = self._gate(kind, inputs)
            members.append(self.netlist.nets[out].driver)
            return out

        out = []
        for i in range(len(a)):
            axb = gate("XOR2", [a[i], b[i]])
            out.append(gate("XOR2", [axb, carry]))
            gen = gate("AND2", [a[i], b[i]])
            prop = gate("AND2", [axb, carry])
            carry = gate("OR2", [gen, prop])
        return out, carry, members

    #: Minimum width at which synthesized adders are tagged for the
    #: carry-select resynthesis pass (repro.synth.optimizer).
    ADDER_TAG_WIDTH = 8

    def _adder(self, a: list[str], b: list[str], carry_in: str | None = None) -> list[str]:
        """Ripple-carry adder; result width = max(len(a), len(b)).

        Wide adders are tagged (attrs['adder'] on the anchor cell) so the
        synthesis engine can later rebuild them as carry-select adders —
        the DesignWare "implementation selection" analogue.
        """
        width = max(len(a), len(b))
        a = self._extend(a, width)
        b = self._extend(b, width)
        cin = carry_in or self._const_net(0)
        out, cout, members = self._ripple_add(a, b, cin)
        self._tag_adder(a, b, cin, out, cout, members)
        return out

    def _tag_adder(
        self,
        a: list[str],
        b: list[str],
        cin: str,
        outs: list[str],
        cout: str,
        members: list[str],
    ) -> None:
        # Adders inside multiplier arrays are not tagged: their critical
        # paths run diagonally through the sums, so carry-select rebuilds
        # only add load there.
        if getattr(self, "_in_multiplier", False):
            return
        if len(outs) < self.ADDER_TAG_WIDTH:
            return
        anchor = self.netlist.nets[outs[0]].driver
        self.netlist.cells[anchor].attrs["adder"] = {
            "a": list(a),
            "b": list(b),
            "cin": cin,
            "outs": list(outs),
            "cout": cout,
            "members": list(members),
        }

    def _negate(self, bits: list[str]) -> list[str]:
        inverted = [self._gate("NOT", [b]) for b in bits]
        one = [self._const_net(1)] + [self._const_net(0)] * (len(bits) - 1)
        return self._adder(inverted, one)

    def _subtract(self, a: list[str], b: list[str]) -> tuple[list[str], str]:
        """a - b via two's complement; returns (diff bits, final carry).

        Final carry==1 means a >= b for unsigned operands.
        """
        width = max(len(a), len(b))
        a = self._extend(a, width)
        b = self._extend(b, width)
        b_inv = [self._gate("NOT", [bit]) for bit in b]
        cin = self._const_net(1)
        out, cout, members = self._ripple_add(a, b_inv, cin)
        self._tag_adder(a, b_inv, cin, out, cout, members)
        return out, cout

    def _multiplier(self, a: list[str], b: list[str]) -> list[str]:
        """Shift-and-add array multiplier, width = len(a)+len(b)."""
        total = len(a) + len(b)
        acc = [self._const_net(0)] * total
        self._in_multiplier = True
        try:
            for j, b_bit in enumerate(b):
                partial = [self._const_net(0)] * j
                partial += [self._gate("AND2", [a_bit, b_bit]) for a_bit in a]
                partial = self._extend(partial, total)
                acc = self._adder(acc, partial)[:total]
        finally:
            self._in_multiplier = False
        return acc

    def _barrel_shift(self, value: list[str], amount: list[str], left: bool) -> list[str]:
        width = len(value)
        stages = max(1, math.ceil(math.log2(width))) if width > 1 else 1
        current = list(value)
        zero = self._const_net(0)
        for s in range(min(stages, len(amount))):
            shift = 1 << s
            shifted = []
            for i in range(width):
                src = i - shift if left else i + shift
                shifted.append(current[src] if 0 <= src < width else zero)
            current = [
                self._mux(amount[s], current[i], shifted[i]) for i in range(width)
            ]
        return current

    def _extend(self, bits: list[str], width: int) -> list[str]:
        if len(bits) >= width:
            return bits[:width]
        return bits + [self._const_net(0)] * (width - len(bits))

    # -- expression synthesis -------------------------------------------------------

    def _synth_expr(
        self,
        expr: Expr,
        scope: _Scope,
        env: dict[str, list[str]] | None = None,
    ) -> list[str]:
        """Synthesize ``expr`` to a bit vector of net names (LSB first).

        ``env`` optionally overrides signal bindings (used inside always
        blocks for blocking-assignment semantics).
        """
        if isinstance(expr, _BitsExpr):
            return list(expr.bits)
        const = self._try_const(expr, scope)
        if const is not None and not isinstance(expr, Identifier):
            width = expr.width if isinstance(expr, Number) and expr.width else None
            width = width or max(const.bit_length(), 1)
            return [self._const_net(const >> i & 1) for i in range(width)]
        if isinstance(expr, Identifier):
            if env is not None and expr.name in env:
                return list(env[expr.name])
            return list(self._signal_bits(scope, expr.name))
        if isinstance(expr, Number):
            width = expr.width or max(expr.value.bit_length(), 1)
            return [self._const_net(expr.value >> i & 1) for i in range(width)]
        if isinstance(expr, UnaryOp):
            return self._synth_unary(expr, scope, env)
        if isinstance(expr, BinaryOp):
            return self._synth_binary(expr, scope, env)
        if isinstance(expr, TernaryOp):
            cond = self._to_bool(self._synth_expr(expr.cond, scope, env))
            t = self._synth_expr(expr.if_true, scope, env)
            f = self._synth_expr(expr.if_false, scope, env)
            width = max(len(t), len(f))
            t = self._extend(t, width)
            f = self._extend(f, width)
            return [self._mux(cond, f[i], t[i]) for i in range(width)]
        if isinstance(expr, Concat):
            bits: list[str] = []
            for part in reversed(expr.parts):  # verilog concat is MSB-first
                bits.extend(self._synth_expr(part, scope, env))
            return bits
        if isinstance(expr, Repeat):
            count = self._eval_const(expr.count, scope.params)
            unit = self._synth_expr(expr.value, scope, env)
            return unit * count
        if isinstance(expr, IndexSelect):
            return self._synth_index(expr, scope, env)
        if isinstance(expr, RangeSelect):
            base_bits = self._synth_expr(expr.base, scope, env)
            msb = self._eval_const(expr.msb, scope.params)
            lsb = self._eval_const(expr.lsb, scope.params)
            lo, hi = min(msb, lsb), max(msb, lsb)
            base_bits = self._extend(base_bits, hi + 1)
            return base_bits[lo : hi + 1]
        raise ElaborationError(f"cannot synthesize {type(expr).__name__}")

    def _synth_index(
        self, expr: IndexSelect, scope: _Scope, env: dict[str, list[str]] | None
    ) -> list[str]:
        base = expr.base
        if isinstance(base, Identifier) and base.name in scope.array_depths:
            words = self._array_words(scope, base.name)
            if env is not None and base.name in getattr(env, "arrays", {}):
                words = env.arrays[base.name]  # pragma: no cover - defensive
            idx_const = self._try_const(expr.index, scope)
            if idx_const is not None:
                return list(words[idx_const % len(words)])
            idx_bits = self._synth_expr(expr.index, scope, env)
            return self._mux_word_tree(words, idx_bits)
        idx_const = self._try_const(expr.index, scope)
        base_bits = self._synth_expr(base, scope, env)
        if idx_const is not None:
            if idx_const >= len(base_bits):
                return [self._const_net(0)]
            return [base_bits[idx_const]]
        idx_bits = self._synth_expr(expr.index, scope, env)
        shifted = self._barrel_shift(base_bits, idx_bits, left=False)
        return [shifted[0]]

    def _mux_word_tree(self, words: list[list[str]], sel: list[str]) -> list[str]:
        """Select one word from ``words`` with select bits (LSB first)."""
        level = [list(w) for w in words]
        bit_idx = 0
        while len(level) > 1:
            s = sel[bit_idx] if bit_idx < len(sel) else self._const_net(0)
            nxt = []
            for i in range(0, len(level) - 1, 2):
                a, b = level[i], level[i + 1]
                width = max(len(a), len(b))
                a = self._extend(a, width)
                b = self._extend(b, width)
                nxt.append([self._mux(s, a[k], b[k]) for k in range(width)])
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
            bit_idx += 1
        return level[0]

    def _to_bool(self, bits: list[str]) -> str:
        if len(bits) == 1:
            return bits[0]
        return self._reduce_tree("OR2", bits)

    def _synth_unary(
        self, expr: UnaryOp, scope: _Scope, env: dict[str, list[str]] | None
    ) -> list[str]:
        bits = self._synth_expr(expr.operand, scope, env)
        if expr.op == "~":
            return [self._gate("NOT", [b]) for b in bits]
        if expr.op == "!":
            return [self._gate("NOT", [self._to_bool(bits)])]
        if expr.op == "-":
            return self._negate(bits)
        if expr.op == "+":
            return bits
        if expr.op == "&":
            return [self._reduce_tree("AND2", bits)]
        if expr.op == "|":
            return [self._reduce_tree("OR2", bits)]
        if expr.op == "^":
            return [self._reduce_tree("XOR2", bits)]
        if expr.op == "~&":
            return [self._gate("NOT", [self._reduce_tree("AND2", bits)])]
        if expr.op == "~|":
            return [self._gate("NOT", [self._reduce_tree("OR2", bits)])]
        if expr.op == "~^":
            return [self._gate("NOT", [self._reduce_tree("XOR2", bits)])]
        raise ElaborationError(f"unsupported unary {expr.op!r}")

    def _synth_binary(
        self, expr: BinaryOp, scope: _Scope, env: dict[str, list[str]] | None
    ) -> list[str]:
        op = expr.op
        if op in ("&&", "||"):
            a = self._to_bool(self._synth_expr(expr.left, scope, env))
            b = self._to_bool(self._synth_expr(expr.right, scope, env))
            return [self._gate("AND2" if op == "&&" else "OR2", [a, b])]
        if op in ("<<", "<<<", ">>", ">>>"):
            value = self._synth_expr(expr.left, scope, env)
            shift_const = self._try_const(expr.right, scope)
            if shift_const is not None:
                zero = self._const_net(0)
                width = len(value)
                if op in ("<<", "<<<"):
                    return ([zero] * shift_const + value)[:width]
                return (value[shift_const:] + [zero] * shift_const)[:width]
            amount = self._synth_expr(expr.right, scope, env)
            return self._barrel_shift(value, amount, left=op in ("<<", "<<<"))
        a = self._synth_expr(expr.left, scope, env)
        b = self._synth_expr(expr.right, scope, env)
        if op in ("&", "|", "^", "~^", "^~"):
            width = max(len(a), len(b))
            a = self._extend(a, width)
            b = self._extend(b, width)
            gate = {"&": "AND2", "|": "OR2", "^": "XOR2", "~^": "XNOR2", "^~": "XNOR2"}[op]
            return [self._gate(gate, [a[i], b[i]]) for i in range(width)]
        if op == "+":
            return self._adder(a, b)
        if op == "-":
            diff, _ = self._subtract(a, b)
            return diff
        if op == "*":
            return self._multiplier(a, b)
        if op in ("==", "!=", "===", "!=="):
            width = max(len(a), len(b))
            a = self._extend(a, width)
            b = self._extend(b, width)
            diffs = [self._gate("XOR2", [a[i], b[i]]) for i in range(width)]
            any_diff = self._reduce_tree("OR2", diffs)
            if op in ("!=", "!=="):
                return [any_diff]
            return [self._gate("NOT", [any_diff])]
        if op in ("<", ">", "<=", ">="):
            if op == "<":
                _, carry = self._subtract(a, b)  # carry==1 -> a >= b
                return [self._gate("NOT", [carry])]
            if op == ">=":
                _, carry = self._subtract(a, b)
                return [carry]
            if op == ">":
                _, carry = self._subtract(b, a)  # carry==1 -> b >= a
                return [self._gate("NOT", [carry])]
            _, carry = self._subtract(b, a)
            return [carry]
        if op in ("/", "%"):
            divisor = self._try_const(expr.right, scope)
            if divisor is not None and divisor > 0 and divisor & (divisor - 1) == 0:
                shift = divisor.bit_length() - 1
                if op == "/":
                    return a[shift:] + [self._const_net(0)] * shift
                return a[:shift] if shift else [self._const_net(0)]
            raise ElaborationError("division only by constant powers of two")
        raise ElaborationError(f"unsupported binary {op!r}")

    # -- statements / always blocks -----------------------------------------------

    def _elaborate_module(self, scope: _Scope) -> None:
        module = scope.module
        for assign in module.assigns:
            value = self._synth_expr(assign.value, scope)
            self._drive_lvalue(assign.target, value, scope)
        for block in module.always_blocks:
            if block.event.is_sequential:
                self._elaborate_sequential(block, scope)
            else:
                self._elaborate_combinational(block, scope)
        for inst in module.instances:
            self._elaborate_instance(inst, scope)

    def _lvalue_bits(self, target: Expr, scope: _Scope) -> list[str]:
        """Resolve an lvalue to the exact nets it drives (no gating)."""
        if isinstance(target, Identifier):
            return self._signal_bits(scope, target.name)
        if isinstance(target, IndexSelect):
            base = target.base
            if isinstance(base, Identifier) and base.name in scope.array_depths:
                idx = self._eval_const(target.index, scope.params)
                return self._array_words(scope, base.name)[idx]
            idx = self._eval_const(target.index, scope.params)
            return [self._signal_bits(scope, self._ident_name(base))[idx]]
        if isinstance(target, RangeSelect):
            msb = self._eval_const(target.msb, scope.params)
            lsb = self._eval_const(target.lsb, scope.params)
            lo, hi = min(msb, lsb), max(msb, lsb)
            return self._signal_bits(scope, self._ident_name(target.base))[lo : hi + 1]
        if isinstance(target, Concat):
            bits: list[str] = []
            for part in reversed(target.parts):
                bits.extend(self._lvalue_bits(part, scope))
            return bits
        raise ElaborationError(f"unsupported lvalue {type(target).__name__}")

    @staticmethod
    def _ident_name(expr: Expr) -> str:
        if isinstance(expr, Identifier):
            return expr.name
        raise ElaborationError("lvalue base must be a plain identifier")

    def _drive_lvalue(self, target: Expr, value: list[str], scope: _Scope) -> None:
        bits = self._lvalue_bits(target, scope)
        value = self._extend(value, len(bits))
        for i, bit in enumerate(bits):
            self.netlist.add_cell("BUF", [value[i]], self._claim(bit))

    def _claim(self, net_name: str) -> str:
        """Return ``net_name`` ready to be driven (errors on double drive)."""
        net = self.netlist.nets[net_name]
        if net.driver is not None:
            raise ElaborationError(f"multiple drivers on net {net_name!r}")
        return net_name

    # Symbolic execution carries two environments so Verilog scheduling
    # semantics hold: ``reads`` is what RHS expressions see (updated by
    # blocking assignments only) and ``env`` is the end-of-block value
    # (updated by both kinds; DFD next-state for sequential blocks).
    def _exec_statements(
        self,
        statements: list[Statement],
        scope: _Scope,
        env: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
        reads: dict[str, list[str]] | None = None,
    ) -> None:
        if reads is None:
            reads = {}
        for stmt in statements:
            self._exec_statement(stmt, scope, env, arrays, reads)

    def _exec_statement(
        self,
        stmt: Statement,
        scope: _Scope,
        env: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
        reads: dict[str, list[str]],
    ) -> None:
        if isinstance(stmt, (BlockingAssign, NonBlockingAssign)):
            self._exec_assign(stmt, scope, env, arrays, reads)
            return
        if isinstance(stmt, SeqBlock):
            self._exec_statements(stmt.body, scope, env, arrays, reads)
            return
        if isinstance(stmt, IfStatement):
            cond = self._to_bool(self._synth_expr(stmt.cond, scope, reads))
            then_env, then_arrays = dict(env), {k: [list(w) for w in v] for k, v in arrays.items()}
            else_env, else_arrays = dict(env), {k: [list(w) for w in v] for k, v in arrays.items()}
            then_reads, else_reads = dict(reads), dict(reads)
            self._exec_statements(stmt.then_body, scope, then_env, then_arrays, then_reads)
            self._exec_statements(stmt.else_body, scope, else_env, else_arrays, else_reads)
            self._merge_env(cond, then_env, else_env, env, scope)
            self._merge_arrays(cond, then_arrays, else_arrays, arrays, scope)
            self._merge_env(cond, then_reads, else_reads, reads, scope)
            return
        if isinstance(stmt, CaseStatement):
            self._exec_case(stmt, scope, env, arrays, reads)
            return
        raise ElaborationError(f"unsupported statement {type(stmt).__name__}")

    def _exec_assign(
        self,
        stmt: BlockingAssign | NonBlockingAssign,
        scope: _Scope,
        env: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
        reads: dict[str, list[str]],
    ) -> None:
        value = self._synth_expr(stmt.value, scope, reads)
        blocking = isinstance(stmt, BlockingAssign)
        self._write_target(stmt.target, value, scope, env, arrays, reads)
        if blocking:
            self._write_target(stmt.target, value, scope, reads, arrays, reads)

    def _write_target(
        self,
        target: Expr,
        value: list[str],
        scope: _Scope,
        store: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
        reads: dict[str, list[str]],
    ) -> None:
        if isinstance(target, Identifier):
            width = scope.widths.get(target.name, len(value))
            store[target.name] = self._extend(value, width)
            return
        if isinstance(target, IndexSelect):
            base = target.base
            if isinstance(base, Identifier) and base.name in scope.array_depths:
                self._exec_array_write(base.name, target.index, value, scope, reads, arrays)
                return
            name = self._ident_name(base)
            current = list(store.get(name) or self._signal_bits(scope, name))
            idx_const = self._try_const(target.index, scope)
            if idx_const is not None:
                if idx_const < len(current):
                    current[idx_const] = self._extend(value, 1)[0]
            else:
                idx_bits = self._synth_expr(target.index, scope, reads)
                bit = self._extend(value, 1)[0]
                for i in range(len(current)):
                    is_i = self._index_equals(idx_bits, i)
                    current[i] = self._mux(is_i, current[i], bit)
            store[name] = current
            return
        if isinstance(target, RangeSelect):
            name = self._ident_name(target.base)
            current = list(store.get(name) or self._signal_bits(scope, name))
            msb = self._eval_const(target.msb, scope.params)
            lsb = self._eval_const(target.lsb, scope.params)
            lo, hi = min(msb, lsb), max(msb, lsb)
            value = self._extend(value, hi - lo + 1)
            for i in range(lo, hi + 1):
                if i < len(current):
                    current[i] = value[i - lo]
            store[name] = current
            return
        if isinstance(target, Concat):
            offset = 0
            for part in reversed(target.parts):
                part_width = self._width_of(part, scope)
                part_bits = self._extend(value[offset : offset + part_width], part_width)
                self._write_target(part, part_bits, scope, store, arrays, reads)
                offset += part_width
            return
        raise ElaborationError(f"unsupported assign target {type(target).__name__}")

    def _exec_array_write(
        self,
        name: str,
        index: Expr,
        value: list[str],
        scope: _Scope,
        reads: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
    ) -> None:
        if name not in arrays:
            arrays[name] = [list(w) for w in self._array_words(scope, name)]
        words = arrays[name]
        width = scope.widths[name]
        value = self._extend(value, width)
        idx_const = self._try_const(index, scope)
        if idx_const is not None:
            words[idx_const % len(words)] = list(value)
            return
        idx_bits = self._synth_expr(index, scope, reads)
        for w, word in enumerate(words):
            en = self._index_equals(idx_bits, w)
            words[w] = [self._mux(en, word[i], value[i]) for i in range(width)]

    def _index_equals(self, idx_bits: list[str], value: int) -> str:
        terms = []
        for i, bit in enumerate(idx_bits):
            want = value >> i & 1
            terms.append(bit if want else self._gate("NOT", [bit]))
        if value >> len(idx_bits):
            return self._const_net(0)
        return self._reduce_tree("AND2", terms)

    def _merge_env(
        self,
        cond: str,
        then_env: dict[str, list[str]],
        else_env: dict[str, list[str]],
        out: dict[str, list[str]],
        scope: _Scope,
    ) -> None:
        for name in set(then_env) | set(else_env):
            # A branch that did not write keeps the signal's prior value.
            t = then_env.get(name) or self._signal_bits(scope, name)
            e = else_env.get(name) or self._signal_bits(scope, name)
            if t == e:
                out[name] = list(t)
                continue
            width = max(len(t), len(e))
            t = self._extend(t, width)
            e = self._extend(e, width)
            out[name] = [self._mux(cond, e[i], t[i]) for i in range(width)]

    def _merge_arrays(
        self,
        cond: str,
        then_arrays: dict[str, list[list[str]]],
        else_arrays: dict[str, list[list[str]]],
        out: dict[str, list[list[str]]],
        scope: _Scope,
    ) -> None:
        for name in set(then_arrays) | set(else_arrays):
            t = then_arrays.get(name) or self._array_words(scope, name)
            e = else_arrays.get(name) or self._array_words(scope, name)
            merged = []
            for tw, ew in zip(t, e):
                if tw == ew:
                    merged.append(list(tw))
                else:
                    merged.append(
                        [self._mux(cond, ew[i], tw[i]) for i in range(len(tw))]
                    )
            out[name] = merged

    def _exec_case(
        self,
        stmt: CaseStatement,
        scope: _Scope,
        env: dict[str, list[str]],
        arrays: dict[str, list[list[str]]],
        reads: dict[str, list[str]],
    ) -> None:
        subject = self._synth_expr(stmt.subject, scope, reads)
        default = (dict(env), _copy_arrays(arrays), dict(reads))
        branches: list[tuple[str, dict, dict, dict]] = []
        for item in stmt.items:
            item_env = dict(env)
            item_arrays = _copy_arrays(arrays)
            item_reads = dict(reads)
            self._exec_statements(item.body, scope, item_env, item_arrays, item_reads)
            if not item.labels:
                default = (item_env, item_arrays, item_reads)
                continue
            matches = []
            for label in item.labels:
                label_bits = self._synth_expr(label, scope, reads)
                width = max(len(subject), len(label_bits))
                s = self._extend(subject, width)
                l = self._extend(label_bits, width)
                diffs = [self._gate("XNOR2", [s[i], l[i]]) for i in range(width)]
                matches.append(self._reduce_tree("AND2", diffs))
            branches.append(
                (self._reduce_tree("OR2", matches), item_env, item_arrays, item_reads)
            )
        # Build a priority chain: earlier items win.
        result_env, result_arrays, result_reads = default
        for match, item_env, item_arrays, item_reads in reversed(branches):
            merged_env: dict[str, list[str]] = {}
            merged_arrays: dict[str, list[list[str]]] = {}
            merged_reads: dict[str, list[str]] = {}
            self._merge_env(match, item_env, result_env, merged_env, scope)
            self._merge_arrays(match, item_arrays, result_arrays, merged_arrays, scope)
            self._merge_env(match, item_reads, result_reads, merged_reads, scope)
            result_env, result_arrays, result_reads = merged_env, merged_arrays, merged_reads
        env.clear()
        env.update(result_env)
        arrays.clear()
        arrays.update(result_arrays)
        reads.clear()
        reads.update(result_reads)

    def _elaborate_sequential(self, block: AlwaysBlock, scope: _Scope) -> None:
        clock = block.event.clock
        if clock is None:
            raise ElaborationError("sequential block without clock")
        clock_net = self._signal_bits(scope, clock)[0]
        env: dict[str, list[str]] = {}
        arrays: dict[str, list[list[str]]] = {}
        self._exec_statements(block.body, scope, env, arrays)
        for name, next_bits in env.items():
            current = self._signal_bits(scope, name)
            width = len(current)
            next_bits = self._extend(next_bits, width)
            for i in range(width):
                if next_bits[i] == current[i]:
                    continue
                self.netlist.add_cell(
                    "DFF", [next_bits[i]], self._claim(current[i]), clock=clock_net
                )
        for name, words in arrays.items():
            current_words = self._array_words(scope, name)
            for w, next_word in enumerate(words):
                for i, next_bit in enumerate(next_word):
                    if next_bit == current_words[w][i]:
                        continue
                    self.netlist.add_cell(
                        "DFF",
                        [next_bit],
                        self._claim(current_words[w][i]),
                        clock=clock_net,
                    )

    def _elaborate_combinational(self, block: AlwaysBlock, scope: _Scope) -> None:
        env: dict[str, list[str]] = {}
        arrays: dict[str, list[list[str]]] = {}
        self._exec_statements(block.body, scope, env, arrays)
        for name, bits in env.items():
            current = self._signal_bits(scope, name)
            bits = self._extend(bits, len(current))
            for i, target in enumerate(current):
                if bits[i] == target:
                    # Unassigned path would form a latch; tie to 0 instead.
                    bits = list(bits)
                    bits[i] = self._const_net(0)
                self.netlist.add_cell("BUF", [bits[i]], self._claim(target))

    # -- hierarchy --------------------------------------------------------------

    def _elaborate_instance(self, inst: Instance, scope: _Scope) -> None:
        child_mod = self.source.module(inst.module_name)
        if child_mod is None:
            raise ElaborationError(f"unknown module {inst.module_name!r}")
        overrides: dict[str, int] = {}
        settable = [p for p in child_mod.params if not p.local]
        for i, (pname, pexpr) in enumerate(inst.param_overrides):
            value = self._eval_const(pexpr, scope.params)
            if pname is not None:
                overrides[pname] = value
            elif i < len(settable):
                overrides[settable[i].name] = value
        prefix = f"{scope.prefix}{inst.instance_name}/"
        child_scope = self._make_scope(child_mod, prefix, overrides)
        # Bind connections before elaborating the child so port bits alias
        # parent nets directly (no buffer insertion for inputs).
        connections = self._resolve_connections(inst, child_mod)
        for port, expr in connections:
            if expr is None:
                continue
            if port.direction == "input":
                bits = self._synth_expr(expr, scope)
                width = child_scope.widths[port.name]
                child_scope.sigbits[port.name] = self._extend(bits, width)
            elif port.direction == "output":
                child_bits = self._signal_bits(child_scope, port.name)
                target_bits = self._lvalue_bits(expr, scope)
                self._bind_output(child_bits, target_bits)
            else:
                raise ElaborationError("inout ports are not supported")
        self._elaborate_module(child_scope)

    def _bind_output(self, child_bits: list[str], target_bits: list[str]) -> None:
        # Hierarchy-boundary buffers: kept by default, removable by the
        # synthesis engine's flatten/ungroup commands.
        for i, target in enumerate(target_bits):
            source = child_bits[i] if i < len(child_bits) else self._const_net(0)
            self.netlist.add_cell("BUF", [source], self._claim(target), hierarchy=True)

    def _resolve_connections(self, inst: Instance, child_mod: Module):
        pairs = []
        if inst.connections and inst.connections[0].port is not None:
            by_name = {c.port: c.expr for c in inst.connections}
            for port in child_mod.ports:
                pairs.append((port, by_name.get(port.name)))
        else:
            for i, port in enumerate(child_mod.ports):
                expr = (
                    inst.connections[i].expr if i < len(inst.connections) else None
                )
                pairs.append((port, expr))
        return pairs


def eval_const_expr(expr: Expr, params: dict[str, int]) -> int:
    """Evaluate a constant Verilog expression under a parameter env.

    Shared by the elaborator and by CircuitMentor's AST feature extraction.
    Raises :class:`ElaborationError` on non-constant expressions.
    """
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Identifier):
        if expr.name in params:
            return params[expr.name]
        raise ElaborationError(f"non-constant identifier {expr.name!r}")
    if isinstance(expr, UnaryOp):
        value = eval_const_expr(expr.operand, params)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
        raise ElaborationError(f"non-constant unary {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = eval_const_expr(expr.left, params)
        right = eval_const_expr(expr.right, params)
        ops = {
        "+": lambda: left + right,
        "-": lambda: left - right,
        "*": lambda: left * right,
        "/": lambda: left // right,
        "%": lambda: left % right,
        "**": lambda: left**right,
        "<<": lambda: left << right,
        ">>": lambda: left >> right,
        "<": lambda: int(left < right),
        ">": lambda: int(left > right),
        "<=": lambda: int(left <= right),
        ">=": lambda: int(left >= right),
        "==": lambda: int(left == right),
        "!=": lambda: int(left != right),
        "&": lambda: left & right,
        "|": lambda: left | right,
        "^": lambda: left ^ right,
        "&&": lambda: int(bool(left) and bool(right)),
        "||": lambda: int(bool(left) or bool(right)),
        }
        if expr.op in ops:
            return ops[expr.op]()
        raise ElaborationError(f"non-constant binary {expr.op!r}")
    if isinstance(expr, TernaryOp):
        cond = eval_const_expr(expr.cond, params)
        branch = expr.if_true if cond else expr.if_false
        return eval_const_expr(branch, params)
    if isinstance(expr, FunctionCall) and expr.name == "$clog2":
        value = eval_const_expr(expr.args[0], params)
        return max(1, math.ceil(math.log2(max(value, 1))))
    raise ElaborationError(f"cannot constant-fold {type(expr).__name__}")


def elaborate(
    source: SourceFile | str,
    top: str,
    params: dict[str, int] | None = None,
) -> Netlist:
    """Elaborate ``top`` from parsed or raw Verilog ``source`` to a netlist."""
    if isinstance(source, str):
        from .parser import parse_source

        with perf.timer("hdl.parse"):
            source = parse_source(source)
    with perf.timer("hdl.elaborate"):
        return Elaborator(source, top, params).elaborate()
