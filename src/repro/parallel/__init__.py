"""Parallel execution for the evaluation harness.

The Table III/IV harnesses fan out over independent units of work —
designs, models, pass@k seeds — that share no mutable state.  This
package provides the one primitive they need, an order-preserving
:func:`parallel_map`, behind two interchangeable backends:

* ``thread`` (the default) — a :mod:`concurrent.futures` thread pool.
  Each task runs inside a copy of the **caller's**
  ``contextvars.Context`` (one fresh copy per task, taken at submit
  time), so ambient context — in particular the current
  :mod:`repro.obs` span — survives the thread hop and worker spans nest
  under the harness span that spawned them.  Threads share the GIL:
  this backend overlaps I/O and caches, not Python compute.
* ``process`` — a persistent **warm multiprocessing pool**
  (:mod:`repro.parallel.pool`): spawned workers pre-load the technology
  library and the synthesis/eval stack once, then serve pickled tasks
  over pipes, with large payloads moved through
  ``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`) and a
  work-stealing scheduler (:mod:`repro.parallel.sched`) balancing
  per-design costs across workers.  This is the backend that scales
  full-corpus evaluation with core count.

Backend selection, in priority order: explicit ``backend=`` argument,
the ``REPRO_PARALLEL_BACKEND`` environment variable, then ``thread``.
The process backend transparently **falls back to threads** when a task
function or item cannot be pickled (e.g. closure-based fan-outs), so
``parallel_map``'s contract is backend-independent:

* results are returned in input order regardless of completion order;
* exceptions propagate as in a serial loop (the lowest failing input
  index raises; under the process backend the raised object is the
  unpickled equivalent of the worker's exception);
* ``jobs=1`` (or ``REPRO_JOBS=1``) forces fully serial execution;
* inside a process-pool worker, nested ``parallel_map`` calls default
  to serial (no pools-within-pools) unless ``jobs=`` is explicit.

Job count resolution: explicit ``jobs=`` argument, then ``REPRO_JOBS``,
then ``os.cpu_count()`` — capped at :data:`DEFAULT_MAX_JOBS` for the
thread backend only (more GIL-bound threads than that just add
contention; the process backend happily uses every core).

Use :func:`shared` to broadcast one large read-only object (an expert
database, a report map) to every task without per-task pickling, and
:func:`shutdown_pools` to retire warm workers (their perf registries
merge into this process's on the way out).
"""

from __future__ import annotations

import contextvars
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .. import obs, perf
from .shm import (  # noqa: F401  (re-exported transport API)
    SharedRef,
    ShmHandle,
    release_all_shared,
    release_shared,
    resolve_shared,
    shared,
)

__all__ = [
    "DEFAULT_MAX_JOBS",
    "BACKENDS",
    "resolve_backend",
    "resolve_jobs",
    "effective_backend",
    "in_worker",
    "parallel_map",
    "parallel_map_async",
    "shared",
    "resolve_shared",
    "release_shared",
    "shutdown_pools",
    "sync_worker_perf",
]

#: Upper bound on the default *thread* worker count (override with
#: REPRO_JOBS).  The process backend is not capped: its workers own
#: their interpreters, so more cores genuinely mean more throughput.
DEFAULT_MAX_JOBS = 8

BACKENDS = ("thread", "process")

T = TypeVar("T")
R = TypeVar("R")

#: Sentinel: process backend declined the work (unpicklable fn/items).
_FALLBACK = object()

#: Last-resolved execution info, surfaced via the ``parallel`` stats
#: provider so run reports show the effective backend and job count.
_LAST: dict = {"backend": None, "jobs": None, "tasks": 0}

#: Tasks currently executing in this process (thread backend and process
#: fallback), for the live queue-depth gauge on the metrics endpoint.
_INFLIGHT_LOCK = threading.Lock()
_INFLIGHT = 0


def in_worker() -> bool:
    """True inside a process-pool worker (set by the worker entry point)."""
    return os.environ.get("REPRO_PARALLEL_WORKER") == "1"


def resolve_backend(backend: str | None = None) -> str:
    """Effective backend honouring ``REPRO_PARALLEL_BACKEND``.

    Worker processes always resolve to ``thread``: a worker fanning out
    into its own process pool would oversubscribe every core with whole
    pools-within-pools.
    """
    if in_worker():
        return "thread"
    if backend is None:
        backend = os.environ.get("REPRO_PARALLEL_BACKEND", "").strip().lower()
        if not backend:
            return "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_PARALLEL_BACKEND must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_jobs(jobs: int | None = None, backend: str | None = None) -> int:
    """Effective worker count honouring the ``REPRO_JOBS`` override.

    The :data:`DEFAULT_MAX_JOBS` cap applies only to the thread backend;
    the process backend defaults to every core.  Inside a pool worker an
    unspecified ``jobs`` resolves to 1 (nested fan-out stays serial even
    if the parent exported ``REPRO_JOBS``), while an explicit ``jobs=``
    argument is always respected.
    """
    if jobs is None:
        if in_worker():
            return 1
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            cpus = os.cpu_count() or 1
            if resolve_backend(backend) == "process":
                jobs = cpus
            else:
                jobs = min(cpus, DEFAULT_MAX_JOBS)
    return max(1, jobs)


def effective_backend(
    jobs: int | None = None,
    items: int | None = None,
    backend: str | None = None,
) -> str:
    """Predict which backend a :func:`parallel_map` call would use.

    Returns ``"serial"`` when the resolved worker count (or item count,
    if given) cannot sustain a fan-out.  Callers use this to decide
    whether :func:`shared` should bother creating shared-memory segments
    before the map actually runs.
    """
    resolved = resolve_backend(backend)
    workers = resolve_jobs(jobs, backend=resolved)
    if items is not None:
        workers = min(workers, items)
        if items <= 1:
            return "serial"
    if workers <= 1:
        return "serial"
    return resolved


def _run_task(
    ctx: contextvars.Context,
    fn: Callable[[T], R],
    item: T,
    index: int,
    label: str,
    submitted: float,
) -> R:
    """Worker-side wrapper: queue-wait timing + caller-context execution."""
    global _INFLIGHT
    perf.add_time("eval.parallel_queue_wait", time.perf_counter() - submitted)
    with _INFLIGHT_LOCK:
        _INFLIGHT += 1
    try:
        return ctx.run(_run_traced, fn, item, index, label)
    finally:
        with _INFLIGHT_LOCK:
            _INFLIGHT -= 1


def _run_traced(fn: Callable[[T], R], item: T, index: int, label: str) -> R:
    with obs.span("eval.task", label=label, index=index):
        return fn(item)


def _thread_map(
    fn: Callable[[T], R], work: Sequence[T], workers: int, label: str
) -> list[R]:
    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix=label) as pool:
        # One context copy per task, taken here in the caller's thread:
        # a Context can only be entered once at a time, so tasks sharing
        # a single copy would collide when they run concurrently.
        futures = [
            pool.submit(
                _run_task,
                contextvars.copy_context(),
                fn,
                item,
                index,
                label,
                time.perf_counter(),
            )
            for index, item in enumerate(work)
        ]
        return [future.result() for future in futures]


def _process_map(
    fn: Callable[[T], R],
    work: Sequence[T],
    workers: int,
    label: str,
    cost: Callable[[T], float] | None,
):
    """Run through the warm pool, or return ``_FALLBACK`` if unpicklable."""
    from .pool import TaskSerializationError, get_pool

    try:
        pickle.dumps(fn)
    except Exception as exc:
        perf.incr("parallel.process_fallback")
        obs.warning(
            "parallel.process_fallback", label=label,
            reason=f"function not picklable: {exc!r}",
        )
        return _FALLBACK
    pool = get_pool(workers)
    with obs.span(
        "eval.parallel_map",
        backend="process", workers=workers, tasks=len(work), label=label,
    ):
        try:
            return pool.map(fn, work, label=label, cost=cost)
        except TaskSerializationError as exc:
            perf.incr("parallel.process_fallback")
            obs.warning(
                "parallel.process_fallback", label=label, reason=str(exc)
            )
            return _FALLBACK


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    label: str = "repro-eval",
    backend: str | None = None,
    cost: Callable[[T], float] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, possibly concurrently.

    Deterministic: the result list matches the input order regardless of
    completion order, and the first (lowest-input-index) exception raised
    by ``fn`` propagates as in a serial loop.  Runs serially when only
    one worker is resolved or there is at most one item.  ``cost`` is an
    optional cheap per-item cost estimate (e.g. gate count) that shapes
    the process backend's work-stealing schedule; it never affects
    results.
    """
    work: Sequence[T] = list(items)
    resolved = resolve_backend(backend)
    workers = min(resolve_jobs(jobs, backend=resolved), len(work))
    _LAST.update(
        backend=resolved if workers > 1 else "serial",
        jobs=max(1, workers),
        tasks=len(work),
    )
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    perf.incr("eval.parallel_batches")
    perf.incr("eval.parallel_tasks", len(work))
    if resolved == "process":
        result = _process_map(fn, work, workers, label, cost)
        if result is not _FALLBACK:
            return result
    return _thread_map(fn, work, workers, label)


async def parallel_map_async(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    label: str = "repro-eval",
    backend: str | None = None,
    cost: Callable[[T], float] | None = None,
    executor=None,
) -> list[R]:
    """Async bridge onto :func:`parallel_map` for event-loop callers.

    The blocking map runs in ``executor`` (or the loop's default) so the
    serving engine's other stage coroutines keep draining their queues
    while a fan-out is in flight.  Same contract as :func:`parallel_map`:
    input order preserved, lowest-index exception propagates.
    """
    import asyncio
    import functools

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        executor,
        functools.partial(
            parallel_map, fn, list(items),
            jobs=jobs, label=label, backend=backend, cost=cost,
        ),
    )


def shutdown_pools() -> None:
    """Retire warm process pools, merging worker perf into this process."""
    import sys

    pool_module = sys.modules.get(f"{__name__}.pool")
    if pool_module is not None:
        pool_module.shutdown_pools()


def sync_worker_perf() -> int:
    """Drain live pools' worker perf registries into the parent's, now."""
    import sys

    pool_module = sys.modules.get(f"{__name__}.pool")
    if pool_module is None:
        return 0
    return pool_module.sync_worker_perf()


def _parallel_stats() -> dict:
    """Effective backend/jobs + live pool stats (obs run report)."""
    import sys

    info = dict(_LAST)
    pool_module = sys.modules.get(f"{__name__}.pool")
    if pool_module is not None:
        info.update(pool_module.pool_stats())
    return info


perf.register_stats_provider("parallel", _parallel_stats)


def _parallel_metric_families() -> list:
    """Executor gauges for the metrics endpoint (collect-time only)."""
    from ..obs import metrics as obs_metrics

    inflight = obs_metrics.MetricFamily(
        "repro_parallel_inflight_tasks", "gauge",
        "Tasks currently executing in this process's executor.",
    )
    inflight.add(_INFLIGHT)
    info = obs_metrics.MetricFamily(
        "repro_parallel_info", "gauge",
        "Effective backend/jobs of the most recent parallel_map.",
    )
    if _LAST["backend"] is not None:
        info.add(1, backend=_LAST["backend"], jobs=_LAST["jobs"])
    return [inflight, info]


def _register_parallel_metrics() -> None:
    from ..obs import metrics as obs_metrics

    obs_metrics.register_callback("parallel", _parallel_metric_families)


_register_parallel_metrics()
