"""Worker-process entry point for the process pool.

Each worker is **warm**: at spawn it imports the heavy stack (synthesis,
eval harness, GNN/RAG layers), constructs the Liberty-flavoured technology
library and attaches the frontend/synthesis cache layers once, so every
task after the first message runs against hot modules and caches.  It then
serves a pickle-based request loop over its pipe:

* ``("task", index, fn, payload_kind, payload, label)`` →
  ``("ok", index, result, run_s)`` or ``("err", index, exc, detail)``;
* ``("perf",)`` → ``("perf", state)`` — drain the worker's perf registry
  (counters/timers exported via :func:`repro.perf.export_state`, then
  reset) for parent-side aggregation;
* ``("close",)`` → ``("closed", state)`` — final perf drain, tracer
  flush, exit.

Payloads arrive inline (small items, pickled bytes) or as a
:class:`~repro.parallel.shm.ShmHandle` (large items, mapped zero-copy for
the duration of the task).

**Span re-rooting.**  ``contextvars`` do not cross process boundaries, so
worker task spans cannot nest under the parent's harness span the way
thread-backend spans do.  Instead, when the parent has ``REPRO_TRACE``
set, each worker writes its own *sidecar* trace (``<path>.wNN``) where
every task is a root span carrying ``worker`` and ``index`` attributes;
``python -m repro.obs.report`` merges sidecars back into the parent
report.  This re-rooting is the documented process-backend tracing
contract.

Workers set ``REPRO_PARALLEL_WORKER=1`` so nested ``parallel_map`` calls
(e.g. pass@k fan-out inside a Table III cell) run serially instead of
spawning pools-within-pools.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from multiprocessing.connection import Connection

from .. import obs, perf
from .shm import ShmHandle, load_from_shm

__all__ = ["worker_main", "warm_worker"]


def warm_worker() -> dict:
    """Pre-load libraries and prime caches; returns what was warmed.

    Imports pull in the parser/elaborator, techmap, timing/power engines,
    the SoA kernels, ChatLS/RAG/GNN layers and the eval harness; building
    the library once compiles its cell tables.  The frontend/synthesis
    caches register their stats providers here, and their on-disk layers
    (if directories are configured) serve this worker from the shared
    store immediately.
    """
    start = time.perf_counter()
    from ..synth import cache as synth_cache  # noqa: F401  (providers register)
    from ..synth.library import nangate45
    import repro.eval.harness  # noqa: F401  (pulls chatls/rag/gnn/mentor)

    library = nangate45()
    _, frontend_disk = synth_cache.frontend_cache_mode()
    _, synth_disk = synth_cache.synth_cache_mode()
    return {
        "warm_s": round(time.perf_counter() - start, 6),
        "library": library.name,
        "frontend_disk": frontend_disk,
        "synth_disk": synth_disk,
    }


def _load_item(payload_kind: str, payload):
    """Materialize one task item; returns (item, open_payload_or_None)."""
    if payload_kind == "shm":
        assert isinstance(payload, ShmHandle)
        opened = load_from_shm(payload, copy=False)
        return opened.obj, opened
    data, buffers = payload
    return pickle.loads(data, buffers=buffers), None


def _serve_task(conn: Connection, worker_id: int, msg: tuple) -> None:
    _, index, fn, payload_kind, payload, label = msg
    opened = None
    started = time.perf_counter()
    try:
        item, opened = _load_item(payload_kind, payload)
        with obs.span("eval.task", label=label, index=index, worker=worker_id):
            result = fn(item)
        run_s = time.perf_counter() - started
        perf.add_time(f"parallel.task_run.w{worker_id:02d}", run_s)
        try:
            conn.send(("ok", index, result, run_s))
        except Exception as exc:  # unpicklable result: report, don't die
            conn.send(
                ("err", index, None,
                 f"task {index} result not picklable: {exc!r}")
            )
    except Exception as exc:
        detail = traceback.format_exc()
        try:
            conn.send(("err", index, exc, detail))
        except Exception:  # unpicklable exception: ship the traceback text
            conn.send(("err", index, None, detail))
    finally:
        if opened is not None:
            opened.close()


def worker_main(conn: Connection, worker_id: int, trace_path: str | None) -> None:
    """Serve tasks until told to close (the spawned process's main)."""
    os.environ["REPRO_PARALLEL_WORKER"] = "1"
    if trace_path:
        obs.configure(trace_path)
    try:
        info = warm_worker()
    except Exception:
        conn.send(("spawn_error", worker_id, traceback.format_exc()))
        return
    conn.send(("ready", worker_id, info))
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent died: exit quietly
                return
            kind = msg[0]
            if kind == "task":
                _serve_task(conn, worker_id, msg)
            elif kind == "perf":
                state = perf.export_state()
                perf.reset()
                conn.send(("perf", worker_id, state))
            elif kind == "close":
                state = perf.export_state()
                if trace_path:
                    obs.flush()
                    obs.configure(None)  # atexit shutdown becomes a no-op
                conn.send(("closed", worker_id, state))
                return
            else:
                conn.send(("err", -1, None, f"unknown message {kind!r}"))
    finally:
        conn.close()
