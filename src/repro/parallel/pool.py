"""Persistent warm process pool with work-stealing dispatch.

Workers are spawned once (``spawn`` start method: clean interpreters, no
inherited locks) and stay resident across ``parallel_map`` calls, so the
per-spawn warm-up — importing the synthesis/eval stack, building the
technology library, attaching the on-disk cache layers — is paid once per
pool, not once per task.  Pools are keyed by worker count **and** a
fingerprint of the ``REPRO_*`` environment: changing a gate (cache dirs,
vector modes, trace paths) between calls retires the stale pool and warms
a fresh one, because workers bind those gates at spawn.

Dispatch is parent-coordinated: every worker holds exactly one task in
flight; on completion the parent hands it the next task from its deque in
the :class:`~repro.parallel.sched.WorkStealingScheduler` (stealing the
tail half of the longest queue when its own runs dry).  Task payloads are
pre-serialized once — small ones ride the pipe, large ones (elaborated
netlists, SoA arrays) move through shared memory — and results return
over the pipe keyed by input index, so output order and exception
semantics match a serial loop exactly: every task runs, then the
exception of the lowest failing input index is raised (the unpickled
instance of the worker's exception).

At shutdown each worker exports its :mod:`repro.perf` registry and the
parent merges it (:func:`repro.perf.merge_state`), so counters, cache
stats and per-worker queue-wait/steal percentiles from sharded runs land
in the parent's snapshot and the obs run report.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait

from .. import obs, perf
from . import shm
from .sched import WorkStealingScheduler
from .worker import worker_main

__all__ = [
    "ProcessPool",
    "TaskSerializationError",
    "WorkerTaskError",
    "get_pool",
    "shutdown_pools",
    "sync_worker_perf",
    "pool_stats",
]

_UNSET = object()


class TaskSerializationError(Exception):
    """A task function or item cannot be pickled for the process backend."""


class WorkerTaskError(RuntimeError):
    """A task failed with an exception that could not itself be pickled."""


class _Worker:
    __slots__ = ("process", "conn", "id", "info")

    def __init__(self, process, conn, worker_id: int) -> None:
        self.process = process
        self.conn = conn
        self.id = worker_id
        self.info: dict = {}


class ProcessPool:
    """A warm pool of ``size`` worker processes (see module docstring)."""

    def __init__(self, size: int, label: str = "repro-pool") -> None:
        if size < 1:
            raise ValueError("pool needs at least one worker")
        self.size = size
        self.label = label
        self.closed = False
        self.maps = 0
        self.tasks = 0
        self.steal_total = 0
        self.created = time.perf_counter()
        #: Cumulative per-worker telemetry (run seconds from worker task
        #: replies; dispatch/steal counts folded in after every map) —
        #: the utilization and steal-rate gauges on the metrics endpoint.
        self.worker_run_s = [0.0] * size
        self.worker_dispatched = [0] * size
        self.worker_steals = [0] * size
        self.worker_stolen_tasks = [0] * size
        #: Live view of the in-flight map (scheduler + busy set), read by
        #: the metrics collector for queue-depth gauges; None between maps.
        self.active: dict | None = None
        #: One map at a time: the scheduler, busy set and worker pipes are
        #: shared pool state, so concurrent maps (e.g. two serving-engine
        #: stage fan-outs overlapping from executor threads) serialize here.
        self._map_lock = threading.Lock()
        ctx = get_context("spawn")
        trace_base = os.environ.get("REPRO_TRACE", "").strip() or None
        self.workers: list[_Worker] = []
        started = time.perf_counter()
        for worker_id in range(size):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            sidecar = f"{trace_base}.w{worker_id:02d}" if trace_base else None
            process = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_id, sidecar),
                name=f"{label}-w{worker_id:02d}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(_Worker(process, parent_conn, worker_id))
        for worker in self.workers:
            try:
                msg = worker.conn.recv()
            except EOFError:
                self.shutdown(force=True)
                raise RuntimeError(
                    "pool worker died before its ready handshake (spawn "
                    "re-imports __main__: scripts must guard pool use with "
                    "`if __name__ == '__main__':` and be importable files)"
                ) from None
            if msg[0] != "ready":
                detail = msg[2] if len(msg) > 2 else msg
                self.shutdown(force=True)
                raise RuntimeError(f"pool worker failed to warm up:\n{detail}")
            worker.info = msg[2]
        self.spawn_s = time.perf_counter() - started
        perf.incr("parallel.workers_spawned", size)
        perf.add_time("parallel.pool_spawn", self.spawn_s)
        obs.info(
            "parallel.pool_ready", workers=size,
            spawn_s=round(self.spawn_s, 3),
            warm_s=[w.info.get("warm_s") for w in self.workers],
        )

    # -- liveness -------------------------------------------------------------

    @property
    def usable(self) -> bool:
        return not self.closed and all(w.process.is_alive() for w in self.workers)

    # -- mapping --------------------------------------------------------------

    def _prepare_payloads(self, work: list) -> tuple[list, list[shm.ShmHandle]]:
        """Serialize every item once; big ones go to shared memory."""
        threshold = shm.shm_min_bytes()
        payloads: list[tuple] = []
        handles: list[shm.ShmHandle] = []
        try:
            for item in work:
                data, raws = shm._serialize(item)
                total = len(data) + sum(raw.nbytes for raw in raws)
                if total >= threshold:
                    handle = shm._dump_parts(data, raws)
                    handles.append(handle)
                    payloads.append(("shm", handle))
                else:
                    payloads.append(
                        ("inline", (data, [bytes(raw) for raw in raws]))
                    )
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            for handle in handles:
                shm.unlink_handle(handle)
            raise TaskSerializationError(f"task item not picklable: {exc!r}")
        return payloads, handles

    def map(self, fn, items, label: str = "repro-eval", cost=None) -> list:
        """Order-preserving map with serial-equivalent exception semantics.

        Thread-safe: concurrent callers serialize on the pool's map lock.
        """
        with self._map_lock:
            return self._map_locked(fn, items, label, cost)

    def _map_locked(self, fn, items, label: str, cost) -> list:
        if self.closed:
            raise RuntimeError("pool is shut down")
        work = list(items)
        if not work:
            return []
        payloads, handles = self._prepare_payloads(work)
        costs = (
            [max(0.0, float(cost(item))) for item in work]
            if cost is not None
            else [1.0] * len(work)
        )
        sched = WorkStealingScheduler(costs, self.size)
        results: list = [_UNSET] * len(work)
        errors: dict[int, tuple[BaseException | None, str]] = {}
        busy: dict[int, int] = {}  # worker id -> in-flight task index
        self.maps += 1
        self.tasks += len(work)
        self.active = {"sched": sched, "busy": busy, "label": label}

        def dispatch(worker: _Worker) -> None:
            index = sched.next_task(worker.id)
            if index is None:
                return
            worker.conn.send(
                ("task", index, fn, *payloads[index], label)
            )
            busy[worker.id] = index

        try:
            for worker in self.workers:
                dispatch(worker)
            by_conn = {worker.conn: worker for worker in self.workers}
            while busy:
                ready = connection_wait(
                    [w.conn for w in self.workers if w.id in busy]
                )
                for conn in ready:
                    worker = by_conn[conn]
                    try:
                        msg = conn.recv()
                    except EOFError:
                        self.shutdown(force=True)
                        raise RuntimeError(
                            f"pool worker {worker.id} died while running "
                            f"task {busy.get(worker.id)} of {label!r}"
                        )
                    kind = msg[0]
                    if kind == "ok":
                        _, index, result, run_s = msg
                        results[index] = result
                        self.worker_run_s[worker.id] += run_s
                    elif kind == "err":
                        _, index, exc, detail = msg
                        errors[index] = (exc, detail)
                    else:  # pragma: no cover - protocol safety net
                        raise RuntimeError(f"unexpected worker message {kind!r}")
                    busy.pop(worker.id, None)
                    dispatch(worker)
        finally:
            self.active = None
            for wid in range(self.size):
                self.worker_dispatched[wid] += sched.dispatched[wid]
                self.worker_steals[wid] += sched.steals[wid]
                self.worker_stolen_tasks[wid] += sched.stolen_tasks[wid]
            for handle in handles:
                shm.unlink_handle(handle)
        self.steal_total += sum(sched.steals)
        if errors:
            index = min(errors)
            exc, detail = errors[index]
            if exc is None:
                raise WorkerTaskError(
                    f"task {index} of {label!r} failed:\n{detail}"
                )
            raise exc
        return results

    # -- perf aggregation -----------------------------------------------------

    def drain_perf(self) -> int:
        """Merge every worker's perf registry into the parent's, now.

        Only call between maps.  Workers reset their registries after
        exporting, so repeated drains never double-count.  Returns the
        number of workers drained.
        """
        drained = 0
        for worker in self.workers:
            if not worker.process.is_alive():
                continue
            worker.conn.send(("perf",))
            msg = worker.conn.recv()
            if msg[0] == "perf":
                perf.merge_state(msg[2])
                drained += 1
        perf.incr("parallel.perf_drains")
        return drained

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self, force: bool = False) -> None:
        """Stop every worker, merging their perf registries on clean exit."""
        if self.closed:
            return
        self.closed = True
        for worker in self.workers:
            if not worker.process.is_alive():
                continue
            if not force:
                try:
                    worker.conn.send(("close",))
                    while True:
                        msg = worker.conn.recv()
                        if msg[0] == "closed":
                            perf.merge_state(msg[2])
                            break
                except (EOFError, OSError, BrokenPipeError):
                    pass
            worker.conn.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)

    def stats(self) -> dict:
        return {
            "workers": self.size,
            "alive": sum(w.process.is_alive() for w in self.workers),
            "maps": self.maps,
            "tasks": self.tasks,
            "steals": self.steal_total,
            "spawn_s": round(self.spawn_s, 6),
        }


# -- the persistent pool registry ---------------------------------------------

_POOLS: dict[tuple, ProcessPool] = {}


def _env_fingerprint() -> tuple:
    """The REPRO_* environment slice workers bind at spawn."""
    return tuple(
        sorted(
            (key, value)
            for key, value in os.environ.items()
            if key.startswith("REPRO_") and key != "REPRO_PARALLEL_WORKER"
        )
    )


def get_pool(workers: int) -> ProcessPool:
    """The warm pool for the current environment, spawning if needed."""
    fingerprint = _env_fingerprint()
    key = (workers, fingerprint)
    pool = _POOLS.get(key)
    if pool is not None and pool.usable:
        return pool
    if pool is not None:
        pool.shutdown()
        del _POOLS[key]
    # Retire pools warmed under a different environment: their workers
    # bound stale gates at spawn and would silently disagree with the
    # parent's current configuration.
    for other_key in [k for k in _POOLS if k[1] != fingerprint]:
        _POOLS.pop(other_key).shutdown()
    pool = ProcessPool(workers)
    _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every pool (merges worker perf into the parent registry)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


def sync_worker_perf() -> int:
    """Drain worker perf registries of every live pool into the parent."""
    return sum(pool.drain_perf() for pool in _POOLS.values() if pool.usable)


def pool_stats() -> dict:
    """Aggregated stats over live pools (for the ``parallel`` provider)."""
    pools = list(_POOLS.values())
    return {
        "pools": len(pools),
        "pool_workers": sum(p.size for p in pools),
        "maps": sum(p.maps for p in pools),
        "pool_tasks": sum(p.tasks for p in pools),
        "steals": sum(p.steal_total for p in pools),
    }


def _pool_metric_families() -> list:
    """Live pool gauges for the metrics endpoint (collect-time only).

    Reads the in-flight scheduler/busy view without locks: the GIL makes
    ``len(deque)`` and dict snapshots safe, the values are monotone
    approximations anyway, and a scrape must never slow the dispatch
    loop.  Emits nothing when no pool is warm.
    """
    from ..obs import metrics as obs_metrics

    pools = [p for p in _POOLS.values() if not p.closed]
    if not pools:
        return []
    depth = obs_metrics.MetricFamily(
        "repro_pool_queue_depth", "gauge",
        "Tasks queued per process-pool worker (in-flight map only).",
    )
    busy_f = obs_metrics.MetricFamily(
        "repro_pool_worker_busy", "gauge",
        "1 while a worker has a task in flight.",
    )
    util = obs_metrics.MetricFamily(
        "repro_pool_worker_utilization", "gauge",
        "Fraction of pool lifetime each worker spent running tasks.",
    )
    steal_rate = obs_metrics.MetricFamily(
        "repro_pool_worker_steal_rate", "gauge",
        "Steals per dispatched task, per worker (cumulative).",
    )
    tasks_total = obs_metrics.MetricFamily(
        "repro_pool_worker_tasks_total", "counter",
        "Tasks dispatched to each worker (completed maps).",
    )
    steals_total = obs_metrics.MetricFamily(
        "repro_pool_worker_steals_total", "counter",
        "Steal events per worker (completed maps).",
    )
    summary = obs_metrics.MetricFamily(
        "repro_pool_workers_alive", "gauge", "Live process-pool workers."
    )
    now = time.perf_counter()
    for pool_index, pool in enumerate(pools):
        pool_label = f"p{pool_index}"
        summary.add(
            sum(w.process.is_alive() for w in pool.workers), pool=pool_label
        )
        active = pool.active
        sched = active["sched"] if active else None
        busy = dict(active["busy"]) if active else {}
        age = max(now - pool.created, 1e-9)
        for wid in range(pool.size):
            worker = f"w{wid:02d}"
            if sched is not None:
                try:
                    depth.add(len(sched.queues[wid]), pool=pool_label, worker=worker)
                except IndexError:
                    pass
            busy_f.add(int(wid in busy), pool=pool_label, worker=worker)
            util.add(pool.worker_run_s[wid] / age, pool=pool_label, worker=worker)
            dispatched = pool.worker_dispatched[wid]
            steal_rate.add(
                pool.worker_steals[wid] / dispatched if dispatched else 0.0,
                pool=pool_label, worker=worker,
            )
            tasks_total.add(dispatched, pool=pool_label, worker=worker)
            steals_total.add(pool.worker_steals[wid], pool=pool_label, worker=worker)
    return [depth, busy_f, util, steal_rate, tasks_total, steals_total, summary]


def _register_pool_metrics() -> None:
    from ..obs import metrics as obs_metrics

    obs_metrics.register_callback("parallel_pool", _pool_metric_families)


_register_pool_metrics()

atexit.register(shutdown_pools)
