"""Shared-memory payload transport for the process backend.

Serialization uses pickle protocol 5 with out-of-band buffers: numpy
arrays (levelized SoA timing arrays, embedding matrices, GNN weights)
export their backing memory zero-copy through :class:`pickle.PickleBuffer`,
and everything — the pickle stream plus every raw buffer — lands in a
single :mod:`multiprocessing.shared_memory` segment.  Receivers either
reconstruct with one memcpy per buffer (``copy=True``, for long-lived
objects that must outlive the segment) or map numpy arrays directly onto
the shared pages (``copy=False``, for task-scoped payloads released when
the task completes).

Segment layout::

    [u64 section count n][u64 size x n][pickle stream][buffer 0]...[buffer n-2]

Two client-facing shapes sit on top:

* :func:`dump_to_shm` / :func:`load_from_shm` — one payload, one segment;
  the :class:`ShmHandle` travels over the task pipe instead of the bytes.
* :class:`SharedRef` via :func:`shared` — broadcast objects (the expert
  database, the Table IV report map): serialized **once** in the parent,
  resolved and memoized per worker process, so a thousand tasks
  referencing the same database ship a ~60-byte token each instead of
  re-pickling megabytes per task.  Under the thread backend (or in-process
  resolution) no segment is created at all and resolution is identity.

The parent owns every segment it creates and unlinks them at release /
interpreter exit; workers attach read-mostly and never unlink.  Attaching
is wrapped to keep Python's ``resource_tracker`` from adopting (and then
double-unlinking or warning about) segments the parent owns.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from .. import perf

__all__ = [
    "ShmHandle",
    "SharedRef",
    "OpenPayload",
    "dump_to_shm",
    "load_from_shm",
    "unlink_handle",
    "shared",
    "resolve_shared",
    "release_shared",
    "release_all_shared",
    "shm_min_bytes",
]

#: Task payloads below this pickled size go inline over the pipe; at or
#: above it they move through a shared-memory segment instead.
DEFAULT_SHM_MIN_BYTES = 64 * 1024

#: Worker-side resolved-broadcast memo bound (entries, not bytes).
RESOLVED_MEMO_CAP = 16

_U64 = struct.Struct("<Q")


def shm_min_bytes() -> int:
    """Inline/shared-memory threshold (``REPRO_SHM_MIN_BYTES`` override)."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            raise ValueError(f"REPRO_SHM_MIN_BYTES must be an integer, got {raw!r}")
    return DEFAULT_SHM_MIN_BYTES


@dataclass(frozen=True)
class ShmHandle:
    """Name + size of one parent-owned shared-memory payload segment."""

    name: str
    size: int


class OpenPayload:
    """A payload mapped zero-copy onto its shared segment.

    ``obj`` may hold numpy arrays whose data lives in the segment; call
    :meth:`close` only once the object is dead (end of task).  If buffers
    are still exported at close time the unmap is skipped — the mapping
    then lives until process exit, which is safe, merely unaccounted.
    """

    __slots__ = ("obj", "_segment", "_views")

    def __init__(self, obj, segment, views) -> None:
        self.obj = obj
        self._segment = segment
        self._views = views

    def close(self) -> None:
        self.obj = None
        for view in self._views:
            try:
                view.release()
            except BufferError:
                return  # numpy still holds the pages; leave mapped
        self._views = ()
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                pass
            self._segment = None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    3.13+ has ``track=False`` for exactly this.  On older Pythons the
    attach re-registers the name with the resource tracker — but spawned
    pool workers inherit the *parent's* tracker process, whose name set
    is not refcounted, so the re-register is a harmless no-op and the
    creator's eventual ``unlink()`` performs the single removal.
    Explicitly unregistering here would strip the creator's own
    registration and make that unlink a tracker error.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _serialize(obj) -> tuple[bytes, list[memoryview]]:
    """Pickle with out-of-band buffers (raw, contiguous memoryviews)."""
    buffers: list[pickle.PickleBuffer] = []
    try:
        data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        raws = [buf.raw() for buf in buffers]
    except pickle.PickleError:
        raise
    except BufferError:
        # A non-contiguous exporter slipped through: fall back to fully
        # in-band pickling (correct, just not zero-copy).
        data = pickle.dumps(obj, protocol=5)
        raws = []
    return data, raws


# Parent-side registry of segments this process created, for unlink at
# release / exit.  Maps segment name -> SharedMemory.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
_OWNED_LOCK = threading.Lock()


def dump_to_shm(obj) -> ShmHandle:
    """Serialize ``obj`` into a fresh shared-memory segment (parent side)."""
    return _dump_parts(*_serialize(obj))


def _dump_parts(data: bytes, raws: list[memoryview]) -> ShmHandle:
    """Write an already-serialized payload into a fresh segment."""
    sizes = [len(data)] + [raw.nbytes for raw in raws]
    header = _U64.pack(len(sizes)) + b"".join(_U64.pack(s) for s in sizes)
    total = len(header) + sum(sizes)
    segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    offset = 0
    segment.buf[offset : offset + len(header)] = header
    offset += len(header)
    for chunk in (data, *raws):
        size = chunk.nbytes if isinstance(chunk, memoryview) else len(chunk)
        segment.buf[offset : offset + size] = chunk
        offset += size
    with _OWNED_LOCK:
        _OWNED[segment.name] = segment
    perf.incr("parallel.shm_segments")
    perf.incr("parallel.shm_bytes", total)
    return ShmHandle(name=segment.name, size=total)


def load_from_shm(handle: ShmHandle, copy: bool = True):
    """Deserialize a payload segment.

    ``copy=True`` returns the plain object (one memcpy per buffer, the
    segment is detached before returning).  ``copy=False`` returns an
    :class:`OpenPayload` whose arrays alias the shared pages; treat them
    as read-only and :meth:`OpenPayload.close` when done.
    """
    segment = _attach(handle.name)
    try:
        buf = segment.buf
        (count,) = _U64.unpack_from(buf, 0)
        sizes = [
            _U64.unpack_from(buf, 8 + 8 * i)[0] for i in range(count)
        ]
        offset = 8 + 8 * count
        views: list[memoryview] = []
        for size in sizes:
            views.append(buf[offset : offset + size])
            offset += size
        if copy:
            data = bytes(views[0])
            buffers = [bytes(view) for view in views[1:]]
            for view in views:
                view.release()
            return pickle.loads(data, buffers=buffers)
        obj = pickle.loads(views[0], buffers=views[1:])
        payload = OpenPayload(obj, segment, views)
        segment = None  # ownership moved to the payload
        return payload
    finally:
        if segment is not None:
            segment.close()


def unlink_handle(handle: ShmHandle) -> None:
    """Destroy a segment this process created (no-op for foreign/gone ones)."""
    with _OWNED_LOCK:
        segment = _OWNED.pop(handle.name, None)
    if segment is None:
        return
    try:
        segment.close()
    except BufferError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


# -- broadcast objects --------------------------------------------------------

_REF_IDS = itertools.count(1)


@dataclass
class SharedRef:
    """Token for an object broadcast to the worker pool.

    Created by :func:`shared` in the parent.  The in-process ``_local``
    object never pickles; workers resolve through the segment once and
    memoize by token.
    """

    token: str
    handle: ShmHandle | None = None
    _local: object | None = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        return {"token": self.token, "handle": self.handle}

    def __setstate__(self, state: dict) -> None:
        self.token = state["token"]
        self.handle = state["handle"]
        self._local = None


# Parent-side refs (for release) and worker-side resolution memo.
_PARENT_REFS: dict[str, SharedRef] = {}
_RESOLVED: OrderedDict[str, object] = OrderedDict()
_RESOLVED_LOCK = threading.Lock()


def shared(obj, backend: str | None = None) -> SharedRef:
    """Wrap ``obj`` for cheap reuse across parallel tasks.

    Under the process backend the object is serialized once into shared
    memory; under the thread backend (or serial execution) the ref simply
    carries the object and no segment exists.  Resolution on either side
    goes through :func:`resolve_shared`.
    """
    from . import resolve_backend  # local import: __init__ imports us

    token = f"shmref-{os.getpid()}-{next(_REF_IDS)}"
    ref = SharedRef(token=token, _local=obj)
    if (backend or resolve_backend()) == "process":
        ref.handle = dump_to_shm(obj)
    _PARENT_REFS[token] = ref
    return ref


def resolve_shared(ref: SharedRef):
    """The object behind a ref: local when present, else shm, memoized."""
    if ref._local is not None:
        return ref._local
    with _RESOLVED_LOCK:
        if ref.token in _RESOLVED:
            _RESOLVED.move_to_end(ref.token)
            perf.incr("parallel.shared_memo_hit")
            return _RESOLVED[ref.token]
    if ref.handle is None:
        raise ValueError(f"shared ref {ref.token} has no payload here")
    obj = load_from_shm(ref.handle, copy=True)
    perf.incr("parallel.shared_resolve")
    with _RESOLVED_LOCK:
        _RESOLVED[ref.token] = obj
        while len(_RESOLVED) > RESOLVED_MEMO_CAP:
            _RESOLVED.popitem(last=False)
    return obj


def release_shared(ref: SharedRef) -> None:
    """Drop a broadcast ref and destroy its segment (parent side)."""
    _PARENT_REFS.pop(ref.token, None)
    with _RESOLVED_LOCK:
        _RESOLVED.pop(ref.token, None)
    if ref.handle is not None:
        unlink_handle(ref.handle)
        ref.handle = None
    ref._local = None


def release_all_shared() -> None:
    """Destroy every live broadcast ref and owned segment (exit hook)."""
    for ref in list(_PARENT_REFS.values()):
        release_shared(ref)
    with _OWNED_LOCK:
        segments = list(_OWNED.values())
        _OWNED.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (BufferError, FileNotFoundError):
            pass


atexit.register(release_all_shared)
