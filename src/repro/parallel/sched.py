"""Work-stealing scheduler for the process pool.

The pool is parent-coordinated: workers hold at most one task in flight
and come back for the next, so the scheduler runs entirely in the parent
and needs no cross-process synchronization.  Each worker owns a deque;
tasks are pre-assigned longest-processing-time-first by a cheap cost
estimate (gate count, source size — whatever the caller supplies), each
queue ordered costliest-first.  A worker whose queue runs dry steals the
**tail half** of the longest remaining queue — the classic steal-half
discipline: owners drain expensive work from the front, thieves lift the
cheap tail, so a steal moves the most work with the least disruption to
the victim's locality.

Cost estimates only shape placement; correctness never depends on them
(results are keyed by input index, and any worker may run any task).
Per-task queue wait (scheduler build → dispatch) and per-worker steal
counts are recorded through :mod:`repro.perf` for the run report.
"""

from __future__ import annotations

import time
from collections import deque

from .. import perf

__all__ = ["WorkStealingScheduler"]


class WorkStealingScheduler:
    """Per-worker deques with LPT pre-assignment and steal-half rebalance."""

    def __init__(self, costs: list[float], workers: int) -> None:
        if workers < 1:
            raise ValueError("scheduler needs at least one worker")
        self.costs = costs
        self.queues: list[deque[int]] = [deque() for _ in range(workers)]
        self.steals = [0] * workers
        self.stolen_tasks = [0] * workers
        self.dispatched = [0] * workers
        self.created = time.perf_counter()
        loads = [0.0] * workers
        # LPT: costliest first, ties broken by input index; each task goes
        # to the least-loaded queue, keeping every queue cost-descending.
        order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
        for index in order:
            target = min(range(workers), key=lambda w: (loads[w], w))
            self.queues[target].append(index)
            loads[target] += costs[index]
        self.initial_loads = loads

    def remaining(self) -> int:
        return sum(len(q) for q in self.queues)

    def next_task(self, worker: int) -> int | None:
        """Next task index for ``worker`` (stealing if its queue is dry)."""
        queue = self.queues[worker]
        if not queue:
            victim = max(
                (w for w in range(len(self.queues)) if w != worker),
                key=lambda w: len(self.queues[w]),
                default=None,
            )
            if victim is None or not self.queues[victim]:
                return None
            victim_queue = self.queues[victim]
            take = (len(victim_queue) + 1) // 2
            # Lift the cheap tail, then restore cost-descending order.
            stolen = [victim_queue.pop() for _ in range(take)]
            queue.extend(reversed(stolen))
            self.steals[worker] += 1
            self.stolen_tasks[worker] += take
            perf.incr("parallel.steals")
            perf.incr(f"parallel.steals.w{worker:02d}")
            perf.incr("parallel.stolen_tasks", take)
        index = queue.popleft()
        self.dispatched[worker] += 1
        wait = time.perf_counter() - self.created
        perf.add_time("eval.parallel_queue_wait", wait)
        perf.add_time(f"parallel.queue_wait.w{worker:02d}", wait)
        perf.incr(f"parallel.tasks.w{worker:02d}")
        return index

    def stats(self) -> dict:
        return {
            "workers": len(self.queues),
            "tasks": len(self.costs),
            "dispatched": list(self.dispatched),
            "steals": list(self.steals),
            "stolen_tasks": list(self.stolen_tasks),
            "initial_loads": [round(load, 3) for load in self.initial_loads],
        }
