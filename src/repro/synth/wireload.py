"""Wireload models: pre-layout net capacitance estimation.

A wireload model maps a net's fanout count to estimated wire capacitance
(fF).  The paper's experiments use the ``5K_heavy_1k`` model from the
Nangate kit; we provide it plus lighter/heavier siblings for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WireLoadModel", "WIRELOAD_MODELS", "get_wireload"]


@dataclass(frozen=True)
class WireLoadModel:
    """Piecewise-linear fanout -> wire capacitance model.

    Attributes:
        name: model name as referenced in synthesis scripts.
        table: capacitance (fF) for fanout = 1..len(table).
        slope: extrapolation slope (fF per extra fanout) past the table.
    """

    name: str
    table: tuple[float, ...]
    slope: float

    def capacitance(self, fanout: int) -> float:
        """Estimated wire capacitance in fF for a net with ``fanout`` sinks."""
        if fanout <= 0:
            return 0.0
        if fanout <= len(self.table):
            return self.table[fanout - 1]
        extra = fanout - len(self.table)
        return self.table[-1] + self.slope * extra


WIRELOAD_MODELS = {
    "5K_hvratio_1_1": WireLoadModel(
        name="5K_hvratio_1_1",
        table=(1.1, 2.3, 3.6, 5.0, 6.4, 7.9, 9.4, 11.0),
        slope=1.6,
    ),
    "5K_heavy_1k": WireLoadModel(
        name="5K_heavy_1k",
        table=(1.7, 3.5, 5.4, 7.5, 9.7, 12.0, 14.4, 16.9),
        slope=2.5,
    ),
    "10K_heavy_2k": WireLoadModel(
        name="10K_heavy_2k",
        table=(2.4, 5.0, 7.8, 10.8, 14.0, 17.3, 20.8, 24.4),
        slope=3.6,
    ),
    "zero": WireLoadModel(name="zero", table=(0.0,), slope=0.0),
}


def get_wireload(name: str) -> WireLoadModel:
    """Look up a wireload model by name."""
    try:
        return WIRELOAD_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown wireload model {name!r}; known: {sorted(WIRELOAD_MODELS)}"
        ) from None
