"""Technology library model and the built-in Nangate-45nm-class library.

Cells follow a linear (NLDM-inspired) delay model::

    delay_ns = intrinsic_ns + drive_res_kohm * load_ff / 1000

which keeps kΩ x fF = ps arithmetic exact.  Areas, capacitances and
leakage values are scaled to the published Nangate 45nm open cell library
so that design-level area totals land in the same regime as the paper's
Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LibCell", "TechLibrary", "nangate45"]


@dataclass(frozen=True)
class LibCell:
    """One library cell.

    Attributes:
        name: cell name, e.g. ``NAND2_X1``.
        function: generic gate implemented (``AND2``, ``DFF``, ...).
        drive: drive-strength index (1, 2, 4, ...).
        area: cell area in square microns.
        input_cap: capacitance of each input pin, fF.
        drive_res: output drive resistance, kOhm.
        intrinsic: intrinsic delay, ns.
        leakage: leakage power, nW.
        setup: setup time (sequential cells only), ns.
        clk_to_q: clock-to-output delay (sequential cells only), ns.
    """

    name: str
    function: str
    drive: int
    area: float
    input_cap: float
    drive_res: float
    intrinsic: float
    leakage: float
    setup: float = 0.0
    clk_to_q: float = 0.0

    @property
    def is_sequential(self) -> bool:
        return self.function == "DFF"

    def delay(self, load_ff: float) -> float:
        """Propagation delay in ns for an output load in fF."""
        return self.intrinsic + self.drive_res * load_ff / 1000.0


class TechLibrary:
    """A collection of cells indexed by name and by (function, drive)."""

    def __init__(self, name: str, cells: list[LibCell]) -> None:
        self.name = name
        self._by_name: dict[str, LibCell] = {}
        self._by_function: dict[str, list[LibCell]] = {}
        for cell in cells:
            self.add_cell(cell)

    def add_cell(self, cell: LibCell) -> None:
        if cell.name in self._by_name:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self._by_name[cell.name] = cell
        siblings = self._by_function.setdefault(cell.function, [])
        siblings.append(cell)
        siblings.sort(key=lambda c: c.drive)

    def cell(self, name: str) -> LibCell:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no cell {name!r} in library {self.name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def cells(self) -> list[LibCell]:
        return list(self._by_name.values())

    def variants(self, function: str) -> list[LibCell]:
        """Drive-strength variants of ``function``, weakest first."""
        return list(self._by_function.get(function, []))

    def weakest(self, function: str) -> LibCell:
        variants = self.variants(function)
        if not variants:
            raise KeyError(f"library {self.name} has no cell for {function!r}")
        return variants[0]

    def next_size_up(self, cell: LibCell) -> LibCell | None:
        """The next stronger variant of the same function, if any."""
        variants = self.variants(cell.function)
        for candidate in variants:
            if candidate.drive > cell.drive:
                return candidate
        return None

    def functions(self) -> set[str]:
        return set(self._by_function)


def _scaled(
    function: str,
    base_name: str,
    area: float,
    cap: float,
    res: float,
    intrinsic: float,
    leak: float,
    drives: tuple[int, ...] = (1, 2, 4),
    setup: float = 0.0,
    clk_to_q: float = 0.0,
) -> list[LibCell]:
    """Generate drive-strength variants with standard scaling rules."""
    cells = []
    for drive in drives:
        cells.append(
            LibCell(
                name=f"{base_name}_X{drive}",
                function=function,
                drive=drive,
                area=round(area * (1.0 + 0.55 * (drive - 1)), 3),
                input_cap=round(cap * (1.0 + 0.45 * (drive - 1)), 3),
                drive_res=round(res / drive, 3),
                intrinsic=round(intrinsic * (1.0 + 0.08 * (drive - 1)), 4),
                leakage=round(leak * drive, 2),
                setup=setup,
                clk_to_q=clk_to_q,
            )
        )
    return cells


def nangate45() -> TechLibrary:
    """The built-in 45nm-class library (Nangate FreePDK45 flavoured).

    Areas track the published NangateOpenCellLibrary values; delays follow
    the kΩ x fF linear model with an FO4 around 35 ps at X1.
    """
    cells: list[LibCell] = []
    cells += _scaled("BUF", "BUF", area=0.798, cap=0.9, res=4.2, intrinsic=0.022, leak=8.5)
    cells += _scaled("NOT", "INV", area=0.532, cap=1.0, res=4.0, intrinsic=0.012, leak=6.0)
    cells += _scaled("AND2", "AND2", area=1.064, cap=1.1, res=4.6, intrinsic=0.032, leak=12.1)
    cells += _scaled("OR2", "OR2", area=1.064, cap=1.1, res=4.8, intrinsic=0.034, leak=12.4)
    cells += _scaled("NAND2", "NAND2", area=0.798, cap=1.0, res=4.1, intrinsic=0.018, leak=10.2)
    cells += _scaled("NOR2", "NOR2", area=0.798, cap=1.0, res=4.5, intrinsic=0.020, leak=10.5)
    cells += _scaled("XOR2", "XOR2", area=1.596, cap=1.5, res=5.2, intrinsic=0.046, leak=18.9)
    cells += _scaled("XNOR2", "XNOR2", area=1.596, cap=1.5, res=5.2, intrinsic=0.048, leak=19.1)
    cells += _scaled("MUX2", "MUX2", area=1.862, cap=1.3, res=5.0, intrinsic=0.042, leak=17.6)
    cells += _scaled("AOI21", "AOI21", area=1.064, cap=1.1, res=4.9, intrinsic=0.030, leak=11.8)
    cells += _scaled("OAI21", "OAI21", area=1.064, cap=1.1, res=4.9, intrinsic=0.031, leak=11.9)
    cells += _scaled(
        "DFF",
        "DFF",
        area=4.522,
        cap=1.2,
        res=4.4,
        intrinsic=0.0,
        leak=48.0,
        drives=(1, 2),
        setup=0.045,
        clk_to_q=0.085,
    )
    return TechLibrary("nangate45", cells)
