"""Liberty (.lib) subset parser and writer.

Reads the attribute/group structure used by our cells::

    library (nangate45) {
      cell (NAND2_X1) {
        area : 0.798;
        cell_leakage_power : 10.2;
        function_class : "NAND2";
        drive_strength : 1;
        pin (o) {
          direction : output;
          drive_resistance : 4.1;
          intrinsic_delay : 0.018;
        }
        pin (a) { direction : input; capacitance : 1.0; }
      }
    }

The writer emits exactly this dialect, so write->parse round-trips.  Real
Nangate .lib files carry 2-D NLDM tables; this subset collapses them to the
linear model documented in :mod:`repro.synth.library`.
"""

from __future__ import annotations

import re

from .library import LibCell, TechLibrary

__all__ = ["LibertyError", "parse_liberty", "write_liberty"]


class LibertyError(ValueError):
    """Raised on malformed liberty text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|/\*.*?\*/|//[^\n]*)
  | (?P<NUMBER>-?\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<STRING>"[^"]*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<OP>[(){};:,])
    """,
    re.VERBOSE | re.DOTALL,
)


def _lex(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise LibertyError(f"cannot tokenize near {text[pos:pos+20]!r}")
        pos = m.end()
        if m.lastgroup != "WS":
            tokens.append((m.lastgroup, m.group()))
    tokens.append(("EOF", ""))
    return tokens


class _Group:
    """Parsed liberty group: name, argument, attributes, subgroups."""

    def __init__(self, kind: str, arg: str) -> None:
        self.kind = kind
        self.arg = arg
        self.attributes: dict[str, object] = {}
        self.groups: list[_Group] = []

    def first(self, kind: str) -> "_Group | None":
        for g in self.groups:
            if g.kind == kind:
                return g
        return None

    def all(self, kind: str) -> list["_Group"]:
        return [g for g in self.groups if g.kind == kind]


class _LibertyParser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def expect(self, kind: str, value: str | None = None) -> str:
        k, v = self.peek()
        if k != kind or (value is not None and v != value):
            raise LibertyError(f"expected {value or kind}, got {v!r}")
        self.pos += 1
        return v

    def parse_group(self) -> _Group:
        kind = self.expect("NAME")
        self.expect("OP", "(")
        arg = ""
        if self.peek()[0] in ("NAME", "STRING", "NUMBER"):
            arg = self.peek()[1].strip('"')
            self.pos += 1
        self.expect("OP", ")")
        self.expect("OP", "{")
        group = _Group(kind, arg)
        while self.peek() != ("OP", "}"):
            name = self.expect("NAME")
            k, v = self.peek()
            if (k, v) == ("OP", ":"):
                self.pos += 1
                value = self._parse_value()
                self.expect("OP", ";")
                group.attributes[name] = value
            elif (k, v) == ("OP", "("):
                self.pos -= 1
                group.groups.append(self.parse_group())
            else:
                raise LibertyError(f"unexpected {v!r} in group {kind}")
        self.expect("OP", "}")
        return group

    def _parse_value(self):
        k, v = self.peek()
        self.pos += 1
        if k == "NUMBER":
            return float(v) if any(c in v for c in ".eE") else int(v)
        if k == "STRING":
            return v.strip('"')
        if k == "NAME":
            return v
        raise LibertyError(f"bad attribute value {v!r}")


def parse_liberty(text: str) -> TechLibrary:
    """Parse liberty ``text`` into a :class:`TechLibrary`."""
    parser = _LibertyParser(_lex(text))
    root = parser.parse_group()
    if root.kind != "library":
        raise LibertyError("top-level group must be 'library'")
    cells = []
    for cell_group in root.all("cell"):
        attrs = cell_group.attributes
        out_pin = None
        input_cap = 0.0
        for pin in cell_group.all("pin"):
            if pin.attributes.get("direction") == "output":
                out_pin = pin
            elif pin.attributes.get("direction") == "input":
                input_cap = float(pin.attributes.get("capacitance", 1.0))
        if out_pin is None:
            raise LibertyError(f"cell {cell_group.arg} has no output pin")
        cells.append(
            LibCell(
                name=cell_group.arg,
                function=str(attrs.get("function_class", "BUF")),
                drive=int(attrs.get("drive_strength", 1)),
                area=float(attrs.get("area", 1.0)),
                input_cap=input_cap,
                drive_res=float(out_pin.attributes.get("drive_resistance", 4.0)),
                intrinsic=float(out_pin.attributes.get("intrinsic_delay", 0.02)),
                leakage=float(attrs.get("cell_leakage_power", 0.0)),
                setup=float(attrs.get("setup_time", 0.0)),
                clk_to_q=float(attrs.get("clk_to_q", 0.0)),
            )
        )
    return TechLibrary(root.arg, cells)


def write_liberty(library: TechLibrary) -> str:
    """Serialize ``library`` to liberty text (parseable by this module)."""
    lines = [f"library ({library.name}) {{"]
    for cell in library.cells():
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    area : {cell.area};")
        lines.append(f"    cell_leakage_power : {cell.leakage};")
        lines.append(f'    function_class : "{cell.function}";')
        lines.append(f"    drive_strength : {cell.drive};")
        if cell.is_sequential:
            lines.append(f"    setup_time : {cell.setup};")
            lines.append(f"    clk_to_q : {cell.clk_to_q};")
        lines.append("    pin (o) {")
        lines.append("      direction : output;")
        lines.append(f"      drive_resistance : {cell.drive_res};")
        lines.append(f"      intrinsic_delay : {cell.intrinsic};")
        lines.append("    }")
        lines.append("    pin (a) {")
        lines.append("      direction : input;")
        lines.append(f"      capacitance : {cell.input_cap};")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
