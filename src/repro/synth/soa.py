"""Structure-of-arrays compute kernels for the synthesis backend.

The scalar :class:`~repro.synth.timing.TimingEngine` walks dicts of
objects — one Python iteration per cell pin.  That is the dominant cost
of every *first* compile of a design (the incremental path in PR 1 only
accelerates the gate-sizing hot loop).  This module lowers the timing
graph once into levelized numpy arrays and runs the hot analyses as
per-level vectorized kernels:

* **Lowering** (:class:`SoAStructure`) — cells and nets are assigned
  dense indices; net loads become a ``bincount`` over (net, sink-pin)
  contribution pairs; combinational cells are levelized so that every
  cell's inputs come from strictly lower levels.  The structure depends
  only on netlist *topology*: it is cached per netlist and revalidated
  against the change journal, so resize-only edit streams (the sizing
  loop) and fresh engines over an unchanged netlist reuse it.
* **Binding** (:class:`SoAKernel`) — per-cell library parameters
  (input cap, drive resistance, intrinsic delay / clk-to-q, setup,
  leakage, drive index) live in a row matrix indexed by a per-cell row
  vector; a resize rewrites one row index.
* **Kernels** — full STA arrival propagation is one
  ``np.maximum.reduceat`` + add per level; endpoint slack, WNS/CPS/TNS
  reduction and activity/power estimation are single vector
  expressions.  Journal resizes re-run only the levels at or above the
  first dirtied level.

Parity contract
---------------

Every kernel evaluates *the same arithmetic expressions on the same
operands in the same accumulation order* as the scalar engine: net pin
caps accumulate in the scalar's ``net.sinks`` iteration order (bincount
adds sequentially in pair order), delays are ``base + res * load /
1000.0`` elementwise, and max-reduction is exact regardless of order.
Vectorized WNS/CPS/TNS, endpoint slacks and switching activities are
therefore bit-identical to :meth:`TimingEngine.full_analyze` and the
scalar :class:`~repro.synth.power.PowerAnalyzer`; only whole-design
power *sums* may differ at float rounding level (numpy pairwise
summation), which vanishes under the reports' 3-decimal rounding.
Property tests in ``tests/synth/test_soa_parity.py`` enforce this in
both modes.

Set ``REPRO_VECTOR_STA=0`` to fall back to the scalar engine everywhere.
"""

from __future__ import annotations

import os
import threading
import weakref

import numpy as np

from .. import perf

__all__ = [
    "vector_sta_enabled",
    "SoAStructure",
    "SoAKernel",
    "get_structure",
    "peek_structure",
    "structure_cache_stats",
    "clear_structure_cache",
    "vector_power",
]

_CONSTS = ("CONST0", "CONST1")


def vector_sta_enabled() -> bool:
    """Whether the vectorized kernels are active (``REPRO_VECTOR_STA``)."""
    return os.environ.get("REPRO_VECTOR_STA", "1").lower() not in (
        "0", "false", "no", "off",
    )


class _Level:
    """One propagation level: cells whose inputs are all resolved."""

    __slots__ = ("cells", "out", "in_ptr", "in_net")

    def __init__(self, cells, out, in_ptr, in_net) -> None:
        self.cells = cells  # cell indices at this level
        self.out = out  # their output net indices
        self.in_ptr = in_ptr  # CSR starts into in_net (len = cells + 1)
        self.in_net = in_net  # flat input net indices (cell.inputs order)


class SoAStructure:
    """Topology-only lowering of one netlist into dense arrays.

    Valid until the next *structural* journal event; resizes never
    invalidate it (pin counts, fanouts and levels are binding-free).
    """

    __slots__ = (
        "net_names", "net_index", "cell_names", "cell_index",
        "num_nets", "num_cells",
        "pair_net", "pair_cell", "pair_pins", "pair_ptr", "fanout", "ext_cap",
        "net_is_output", "net_is_clock", "net_is_input", "net_has_driver",
        "cell_out", "cell_gate", "cell_is_seq", "cell_is_const", "cell_level",
        "levels",
        "pi_nets", "pi_is_clock",
        "seq_cells", "seq_out", "seq_d", "seq_names",
        "const_out", "const0_out", "const1_out",
        "po_nets", "po_names",
        "_power_schedule",
    )

    def __init__(self, netlist) -> None:
        nets = netlist.nets
        cells = netlist.cells
        self.net_names = list(nets)
        self.net_index = {name: i for i, name in enumerate(self.net_names)}
        self.cell_names = list(cells)
        self.cell_index = {name: i for i, name in enumerate(self.cell_names)}
        self.num_nets = len(self.net_names)
        self.num_cells = len(self.cell_names)
        net_index = self.net_index
        cell_index = self.cell_index

        # -- per-net electricals: (net, sink) pin pairs in the exact order the
        # scalar load loop visits them, so bincount accumulates identically.
        pair_net: list[int] = []
        pair_cell: list[int] = []
        pair_pins: list[float] = []
        fanout = np.zeros(self.num_nets, dtype=np.int64)
        net_is_output = np.zeros(self.num_nets, dtype=bool)
        net_is_clock = np.zeros(self.num_nets, dtype=bool)
        net_is_input = np.zeros(self.num_nets, dtype=bool)
        net_has_driver = np.zeros(self.num_nets, dtype=bool)
        for ni, (name, net) in enumerate(nets.items()):
            net_is_output[ni] = net.is_output
            net_is_clock[ni] = net.is_clock
            net_is_input[ni] = net.is_input
            net_has_driver[ni] = net.driver is not None
            pins_total = 0
            for sink_name in net.sinks:
                sink = cells[sink_name]
                pins = sink.inputs.count(name)
                if sink.attrs.get("clock") == name:
                    pins += 1
                if pins:
                    pair_net.append(ni)
                    pair_cell.append(cell_index[sink_name])
                    pair_pins.append(float(pins))
                pins_total += pins
            if net.is_output:
                pins_total += 1
            fanout[ni] = pins_total
        self.pair_net = np.asarray(pair_net, dtype=np.intp)
        self.pair_cell = np.asarray(pair_cell, dtype=np.intp)
        self.pair_pins = np.asarray(pair_pins, dtype=np.float64)
        # CSR over the (sorted-by-net) pair arrays: pairs of net ``ni`` live
        # in ``pair_ptr[ni]:pair_ptr[ni + 1]`` — the per-net segment view the
        # batched trial evaluator uses to re-accumulate single net loads.
        self.pair_ptr = np.searchsorted(
            self.pair_net, np.arange(self.num_nets + 1)
        )
        self.fanout = fanout
        self.ext_cap = np.where(net_is_output, 2.0, 0.0)
        self.net_is_output = net_is_output
        self.net_is_clock = net_is_clock
        self.net_is_input = net_is_input
        self.net_has_driver = net_has_driver

        # -- per-cell skeleton -------------------------------------------------
        cell_out = np.zeros(self.num_cells, dtype=np.intp)
        cell_is_seq = np.zeros(self.num_cells, dtype=bool)
        cell_is_const = np.zeros(self.num_cells, dtype=bool)
        self.cell_gate = []
        seq_cells: list[int] = []
        seq_out: list[int] = []
        seq_d: list[int] = []
        seq_names: list[str] = []
        const_out: list[int] = []
        const0_out: list[int] = []
        const1_out: list[int] = []
        for ci, (name, cell) in enumerate(cells.items()):
            cell_out[ci] = net_index[cell.output]
            self.cell_gate.append(cell.gate)
            if cell.is_sequential:
                cell_is_seq[ci] = True
                seq_cells.append(ci)
                seq_out.append(net_index[cell.output])
                seq_d.append(net_index[cell.inputs[0]])
                seq_names.append(name)
            elif cell.gate in _CONSTS:
                cell_is_const[ci] = True
                const_out.append(net_index[cell.output])
                if cell.gate == "CONST0":
                    const0_out.append(net_index[cell.output])
                else:
                    const1_out.append(net_index[cell.output])
        self.cell_out = cell_out
        self.cell_is_seq = cell_is_seq
        self.cell_is_const = cell_is_const
        self.seq_cells = np.asarray(seq_cells, dtype=np.intp)
        self.seq_out = np.asarray(seq_out, dtype=np.intp)
        self.seq_d = np.asarray(seq_d, dtype=np.intp)
        self.seq_names = seq_names
        self.const_out = np.asarray(const_out, dtype=np.intp)
        self.const0_out = np.asarray(const0_out, dtype=np.intp)
        self.const1_out = np.asarray(const1_out, dtype=np.intp)

        # -- levelization: level(cell) = max level of its input nets; a net
        # driven by a comb cell carries that cell's level + 1, sources carry 0.
        net_level = np.zeros(self.num_nets, dtype=np.int64)
        cell_level = np.full(self.num_cells, -1, dtype=np.int64)
        buckets: list[dict] = []  # per level: {"cells": [], "out": [], "in": [], "ptr": []}
        for cell in netlist.topological_cells():
            if cell.gate in _CONSTS:
                continue
            ci = cell_index[cell.name]
            lvl = 0
            in_ids = [net_index[n] for n in cell.inputs]
            for ni in in_ids:
                if net_level[ni] > lvl:
                    lvl = net_level[ni]
            cell_level[ci] = lvl
            net_level[cell_out[ci]] = lvl + 1
            while len(buckets) <= lvl:
                buckets.append({"cells": [], "out": [], "in": [], "ptr": [0]})
            bucket = buckets[lvl]
            bucket["cells"].append(ci)
            bucket["out"].append(cell_out[ci])
            bucket["in"].extend(in_ids)
            bucket["ptr"].append(len(bucket["in"]))
        self.cell_level = cell_level
        self.levels = [
            _Level(
                np.asarray(b["cells"], dtype=np.intp),
                np.asarray(b["out"], dtype=np.intp),
                np.asarray(b["ptr"], dtype=np.intp),
                np.asarray(b["in"], dtype=np.intp),
            )
            for b in buckets
        ]

        # -- launch / endpoint orderings (match scalar dict construction) -----
        self.pi_nets = np.asarray(
            [net_index[n] for n in netlist.primary_inputs], dtype=np.intp
        )
        self.pi_is_clock = np.asarray(
            [nets[n].is_clock for n in netlist.primary_inputs], dtype=bool
        )
        self.po_names = list(netlist.primary_outputs)
        self.po_nets = np.asarray(
            [net_index[n] for n in self.po_names], dtype=np.intp
        )
        self._power_schedule = None

    # -- power schedule (lazy: pure-STA users never pay for it) ---------------

    def power_schedule(self):
        """Per-level, per-gate-kind groups for activity propagation.

        Returns a list of ``(kind, cell_idx, out_net, in_cols)`` tuples in
        dependency order; ``in_cols`` is an ``(arity, k)`` array of input
        net indices in pin order.  Constant generators come first.
        """
        if self._power_schedule is not None:
            return self._power_schedule
        schedule = []
        if len(self.const0_out):
            schedule.append(("CONST0", None, self.const0_out, None))
        if len(self.const1_out):
            schedule.append(("CONST1", None, self.const1_out, None))
        for lvl in self.levels:
            groups: dict[str, list[int]] = {}
            for pos, ci in enumerate(lvl.cells):
                groups.setdefault(self.cell_gate[ci], []).append(pos)
            for kind, positions in groups.items():
                pos_arr = np.asarray(positions, dtype=np.intp)
                cells_arr = lvl.cells[pos_arr]
                out_arr = lvl.out[pos_arr]
                starts = lvl.in_ptr[pos_arr]
                arity = int(lvl.in_ptr[pos_arr[0] + 1] - starts[0])
                in_cols = np.stack(
                    [lvl.in_net[starts + pin] for pin in range(arity)]
                ) if arity else np.zeros((0, len(pos_arr)), dtype=np.intp)
                schedule.append((kind, cells_arr, out_arr, in_cols))
        self._power_schedule = schedule
        return schedule


# -- structure cache -----------------------------------------------------------

_STRUCT_LOCK = threading.Lock()
_STRUCTURES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_STRUCT_HITS = 0
_STRUCT_MISSES = 0


def get_structure(netlist) -> SoAStructure:
    """The lowered structure for ``netlist``, reusing a journal-valid cache."""
    global _STRUCT_HITS, _STRUCT_MISSES
    with _STRUCT_LOCK:
        entry = _STRUCTURES.get(netlist)
        if entry is not None:
            cursor, structure = entry
            events = netlist.journal_since(cursor)
            if events is not None and all(kind == "resize" for kind, _ in events):
                _STRUCTURES[netlist] = (netlist.version, structure)
                _STRUCT_HITS += 1
                perf.incr("soa.structure_hit")
                return structure
    with perf.timer("sta.lower"):
        structure = SoAStructure(netlist)
    with _STRUCT_LOCK:
        _STRUCT_MISSES += 1
        _STRUCTURES[netlist] = (netlist.version, structure)
    perf.incr("soa.structure_miss")
    return structure


def peek_structure(netlist) -> SoAStructure | None:
    """The cached lowering for ``netlist`` if still journal-valid, else None.

    Unlike :func:`get_structure` this never lowers: callers that merely
    *benefit* from the arrays (e.g. the fanout scan in
    ``buffer_high_fanout``) use it to avoid paying a full lowering for a
    netlist that is about to be structurally edited anyway.
    """
    with _STRUCT_LOCK:
        entry = _STRUCTURES.get(netlist)
        if entry is None:
            return None
        cursor, structure = entry
        events = netlist.journal_since(cursor)
        if events is not None and all(kind == "resize" for kind, _ in events):
            return structure
    return None


def structure_cache_stats() -> dict:
    """Lowering/kernel activity, shaped for ``perf.snapshot()["caches"]``."""
    with _STRUCT_LOCK:
        entries, hits, misses = len(_STRUCTURES), _STRUCT_HITS, _STRUCT_MISSES
    return {
        "entries": entries,
        "hits": hits,
        "misses": misses,
        "lower_s": round(perf.elapsed("sta.lower"), 6),
        "kernel_s": round(perf.elapsed("sta.kernel"), 6),
        "levels_run": perf.counter("sta.vector_levels"),
        "trials": perf.counter("sta.trial"),
        "trial_batches": perf.counter("sta.trial_batch"),
    }


def clear_structure_cache() -> None:
    global _STRUCT_HITS, _STRUCT_MISSES
    with _STRUCT_LOCK:
        _STRUCTURES.clear()
        _STRUCT_HITS = 0
        _STRUCT_MISSES = 0


perf.register_stats_provider("vector_sta", structure_cache_stats)


# -- kernel --------------------------------------------------------------------

# Library-parameter matrix columns.
_CAP, _RES, _BASE, _SETUP, _LEAK, _DRIVE, _AREA = range(7)


class SoAKernel:
    """Vectorized STA state for one (netlist, library, wireload, constraints).

    The environment is assumed frozen for the kernel's lifetime — the
    owning engine rebuilds the kernel when its signature changes.
    """

    def __init__(self, netlist, library, wireload, constraints) -> None:
        self.netlist = netlist
        self.library = library
        self.wireload = wireload
        self.constraints = constraints
        self.s = get_structure(netlist)
        s = self.s
        # library binding: per-cell row index into a parameter matrix
        self._rows: list[tuple] = []
        self._row_of: dict = {}
        self._params: np.ndarray | None = None
        self.cell_row = np.zeros(s.num_cells, dtype=np.intp)
        cells = netlist.cells
        for ci, name in enumerate(s.cell_names):
            self.cell_row[ci] = self._resolve_row(cells[name])
        # constraint vectors (constraints object frozen per kernel)
        launch = ~self._pi_clock_mask()
        self.pi_launch = s.pi_nets[launch]
        self._pi_offsets = np.asarray(
            [
                constraints.arrival_offset(s.net_names[ni])
                for ni in self.pi_launch
            ],
            dtype=np.float64,
        )
        self._po_margin = np.asarray(
            [constraints.required_margin(name) for name in s.po_names],
            dtype=np.float64,
        )
        self._wire_cap = self._wire_caps()
        self.loads: np.ndarray | None = None
        self.delay: np.ndarray | None = None
        self.arrivals: np.ndarray | None = None
        self._seq_pos: dict[int, int] | None = None
        self._pi_pos: dict[int, int] | None = None
        self._lvl_pos: dict[int, tuple[int, int]] | None = None
        self._reader_min: np.ndarray | None = None

    # -- binding -------------------------------------------------------------

    def _resolve_row(self, cell) -> int:
        """Row index holding ``cell``'s bound library parameters."""
        return self._row_for_binding(cell.gate, cell.lib_cell)

    def _row_for_binding(self, gate: str, lib_cell: str | None) -> int:
        """Row index for a (gate, lib_cell) binding — hypothetical or real."""
        if gate in _CONSTS:
            key = ("__const__",)
        elif lib_cell is not None and lib_cell in self.library:
            key = lib_cell
        else:
            key = ("__weakest__", gate)
        row = self._row_of.get(key)
        if row is not None:
            return row
        if key == ("__const__",):
            params = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        else:
            lib = (
                self.library.cell(key)
                if isinstance(key, str)
                else self.library.weakest(gate)
            )
            base = lib.clk_to_q if lib.is_sequential else lib.intrinsic
            params = (
                lib.input_cap, lib.drive_res, base,
                lib.setup, lib.leakage, float(lib.drive), lib.area,
            )
        row = len(self._rows)
        self._rows.append(params)
        self._row_of[key] = row
        self._params = None
        return row

    @property
    def params(self) -> np.ndarray:
        if self._params is None:
            self._params = np.asarray(self._rows, dtype=np.float64).reshape(
                len(self._rows), 7
            )
        return self._params

    def _pi_clock_mask(self) -> np.ndarray:
        s = self.s
        if self.constraints.clock_port is not None:
            names = [s.net_names[ni] for ni in s.pi_nets]
            return np.asarray(
                [name == self.constraints.clock_port for name in names], dtype=bool
            )
        return s.pi_is_clock

    # -- electricals ---------------------------------------------------------

    def _wire_caps(self) -> np.ndarray:
        model = self.wireload
        table = np.asarray(model.table, dtype=np.float64)
        fanout = self.s.fanout
        clipped = table[np.clip(fanout, 1, len(table)) - 1]
        beyond = table[-1] + model.slope * (fanout - len(table))
        return np.where(
            fanout <= 0, 0.0, np.where(fanout <= len(table), clipped, beyond)
        )

    def compute_loads(self) -> np.ndarray:
        """Per-net load in fF: sink pin caps + external load + wireload."""
        s = self.s
        caps = self.params[:, _CAP][self.cell_row]
        pin_cap = np.bincount(
            s.pair_net, weights=s.pair_pins * caps[s.pair_cell], minlength=s.num_nets
        )
        self.loads = (pin_cap + s.ext_cap) + self._wire_cap
        return self.loads

    def compute_delays(self) -> np.ndarray:
        """Per-cell propagation delay (intrinsic/clk-to-q + RC term)."""
        params = self.params
        rows = self.cell_row
        self.delay = (
            params[:, _BASE][rows]
            + params[:, _RES][rows] * self.loads[self.s.cell_out] / 1000.0
        )
        return self.delay

    # -- arrival propagation -------------------------------------------------

    def _source_arrivals(self, arrivals: np.ndarray) -> None:
        s = self.s
        c = self.constraints
        arrivals[self.pi_launch] = (
            self._pi_offsets + c.input_drive_res * self.loads[self.pi_launch] / 1000.0
        )
        arrivals[s.seq_out] = self.delay[s.seq_cells]
        arrivals[s.const_out] = 0.0

    def propagate(self, from_level: int = 0) -> np.ndarray:
        """Run the per-level arrival kernels from ``from_level`` up."""
        s = self.s
        with perf.timer("sta.kernel"):
            if self.arrivals is None:
                self.arrivals = np.zeros(s.num_nets, dtype=np.float64)
            arrivals = self.arrivals
            self._source_arrivals(arrivals)
            delay = self.delay
            for lvl in s.levels[from_level:]:
                worst = np.maximum.reduceat(arrivals[lvl.in_net], lvl.in_ptr[:-1])
                arrivals[lvl.out] = worst + delay[lvl.cells]
        perf.incr("sta.vector_levels", len(s.levels) - from_level)
        return arrivals

    def run_full(self) -> None:
        """Bind, compute electricals and propagate every level."""
        perf.incr("sta.vector_full")
        self.compute_loads()
        self.compute_delays()
        self.arrivals = None
        self.propagate(0)

    def update_resizes(self, resized) -> None:
        """Fold journal resizes in: rebind rows, re-run dirty levels only."""
        perf.incr("sta.vector_incremental")
        s = self.s
        cells = self.netlist.cells
        nets = self.netlist.nets
        min_level = len(s.levels)
        sources_dirty = False
        for name in resized:
            cell = cells[name]
            ci = s.cell_index[name]
            self.cell_row[ci] = self._resolve_row(cell)
            affected = list(cell.inputs)
            clock = cell.attrs.get("clock")
            if clock is not None:
                affected.append(clock)
            for net_in in affected:
                driver = nets[net_in].driver
                if driver is None:
                    sources_dirty = True
                    continue
                di = s.cell_index[driver]
                if s.cell_is_seq[di] or s.cell_is_const[di]:
                    sources_dirty = True
                else:
                    min_level = min(min_level, int(s.cell_level[di]))
            if s.cell_is_seq[ci]:
                sources_dirty = True  # clk-to-q and setup changed
            elif not s.cell_is_const[ci]:
                min_level = min(min_level, int(s.cell_level[ci]))
        self.compute_loads()
        self.compute_delays()
        self.propagate(0 if sources_dirty else min_level)

    # -- batched trial evaluation ---------------------------------------------

    def _seq_position(self, ci: int) -> int | None:
        """Position of cell ``ci`` within the seq endpoint arrays, if any."""
        if self._seq_pos is None:
            self._seq_pos = {
                int(c): i for i, c in enumerate(self.s.seq_cells.tolist())
            }
        return self._seq_pos.get(ci)

    def _pi_position(self, ni: int) -> int | None:
        """Position of net ``ni`` within the launch-point arrays, if any."""
        if self._pi_pos is None:
            self._pi_pos = {
                int(n): i for i, n in enumerate(self.pi_launch.tolist())
            }
        return self._pi_pos.get(ni)

    def _level_position(self, ci: int) -> tuple[int, int]:
        """``(level, position within that level)`` for comb cell ``ci``."""
        if self._lvl_pos is None:
            self._lvl_pos = {}
            for li, lvl in enumerate(self.s.levels):
                for pos, c in enumerate(lvl.cells.tolist()):
                    self._lvl_pos[int(c)] = (li, pos)
        return self._lvl_pos[ci]

    def _reader_min_level(self) -> np.ndarray:
        """Per net, the lowest level with a cell reading it (else #levels)."""
        if self._reader_min is None:
            s = self.s
            rm = np.full(s.num_nets, len(s.levels), dtype=np.intp)
            for li in range(len(s.levels) - 1, -1, -1):
                rm[s.levels[li].in_net] = li
            self._reader_min = rm
        return self._reader_min

    @staticmethod
    def _normalize_trials(trials) -> list[list[tuple[str, str]]]:
        """Each lane as a list of ``(cell, lib_cell)`` rebinds."""
        lanes = []
        for lane in trials:
            if isinstance(lane[0], str):
                lanes.append([lane])
            else:
                lanes.append(list(lane))
        return lanes

    def trial_cps_batch(self, trials) -> list[float]:
        """CPS verdicts for hypothetical cell rebinds, no mutation.

        ``trials`` is a sequence of lanes; each lane is one
        ``(cell_name, lib_cell_name)`` pair or a list of such pairs
        (a grouped rebind, evaluated as if all of them were committed
        together).  Every lane is evaluated against the *committed*
        arrays: loads of the rebound cells' input/clock nets are
        re-accumulated over their pair segments in bincount order,
        dirtied delays and launch arrivals are patched with the scalar
        forms of the committed expressions, and arrivals re-propagate as
        2-D per-level kernels restricted to the union dirty cone of the
        batch (a 1-D boolean sweep finds it; the workspace starts as a
        copy of the committed arrivals, so anything outside the cone
        already holds its exact committed value, and a cone cell that is
        clean in some lane recomputes to the identical value there).
        The returned values are bit-identical to committing each lane
        alone and reading ``analyze().cps`` — same expressions, same
        operands, same accumulation order — but neither the netlist nor
        the committed kernel state is touched, so rejected candidates
        cost no revert.
        """
        if self.arrivals is None:
            self.run_full()
        s = self.s
        lanes = self._normalize_trials(trials)
        k = len(lanes)
        perf.incr("sta.trial", k)
        perf.incr("sta.trial_batch")
        cells = self.netlist.cells
        nets = self.netlist.nets
        resolved: list[dict[int, int]] = []  # per lane: cell index -> new row
        for lane in lanes:
            rows_map = {}
            for name, lib_name in lane:
                ci = s.cell_index[name]
                rows_map[ci] = self._row_for_binding(cells[name].gate, lib_name)
            resolved.append(rows_map)
        params = self.params  # after row resolution: may have appended rows
        caps = params[:, _CAP]
        with perf.timer("sta.kernel"):
            arrivals2 = np.repeat(self.arrivals[None, :], k, axis=0)
            net_dirty = np.zeros(s.num_nets, dtype=bool)
            forced = np.zeros(s.num_cells, dtype=bool)
            # comb-delay patches grouped by level: {li: [(t, pos, delay)]}
            patches: dict[int, list[tuple[int, int, float]]] = {}
            setup_patches: list[tuple[int, int, int]] = []  # (t, seq pos, row)
            pair_cell, pair_pins, pair_ptr = s.pair_cell, s.pair_pins, s.pair_ptr
            c = self.constraints
            reader_min = self._reader_min_level()
            start_level = len(s.levels)
            for t, rows_map in enumerate(resolved):
                lane_loads: dict[int, float] = {}
                dirty_cells = set(rows_map)
                for ci in rows_map:
                    cell = cells[s.cell_names[ci]]
                    affected = list(cell.inputs)
                    clock = cell.attrs.get("clock")
                    if clock is not None:
                        affected.append(clock)
                    for net_in in affected:
                        ni = s.net_index[net_in]
                        if ni in lane_loads:
                            continue
                        # Exact per-net load: accumulate the pair segment in
                        # the order bincount adds it, swapping in trial caps.
                        # cumsum is a strict left-to-right float64 fold, so
                        # its final element is bit-identical to bincount's
                        # per-bin accumulation over the same segment.
                        a, b = int(pair_ptr[ni]), int(pair_ptr[ni + 1])
                        seg_cells = pair_cell[a:b]
                        seg_rows = self.cell_row[seg_cells]
                        for pc, row in rows_map.items():
                            hits = np.flatnonzero(seg_cells == pc)
                            if hits.size:
                                seg_rows = seg_rows.copy()
                                seg_rows[hits] = row
                        weights = pair_pins[a:b] * caps[seg_rows]
                        pin_cap = (
                            float(np.cumsum(weights)[-1]) if b > a else 0.0
                        )
                        lane_loads[ni] = (
                            (pin_cap + s.ext_cap[ni]) + self._wire_cap[ni]
                        )
                        driver = nets[net_in].driver
                        if driver is None:
                            # PI arrival depends on the net load.
                            pos = self._pi_position(ni)
                            if pos is not None:
                                arrivals2[t, ni] = (
                                    self._pi_offsets[pos]
                                    + c.input_drive_res
                                    * lane_loads[ni] / 1000.0
                                )
                                net_dirty[ni] = True
                                start_level = min(
                                    start_level, int(reader_min[ni])
                                )
                            continue
                        di = s.cell_index[driver]
                        if not s.cell_is_const[di]:
                            # Const outputs launch at 0.0 regardless of load.
                            dirty_cells.add(int(di))
                for dc in dirty_cells:
                    if s.cell_is_const[dc]:
                        continue
                    row = rows_map.get(dc)
                    if row is None:
                        row = int(self.cell_row[dc])
                    out = int(s.cell_out[dc])
                    load = lane_loads.get(out)
                    if load is None:
                        load = float(self.loads[out])
                    d = params[row, _BASE] + params[row, _RES] * load / 1000.0
                    if s.cell_is_seq[dc]:
                        # Launch arrival of the register output is clk-to-q.
                        arrivals2[t, out] = d
                        net_dirty[out] = True
                        start_level = min(start_level, int(reader_min[out]))
                    else:
                        li, pos = self._level_position(dc)
                        patches.setdefault(li, []).append((t, pos, d))
                        forced[dc] = True
                        start_level = min(start_level, li)
                for ci, row in rows_map.items():
                    pos = self._seq_position(ci)
                    if pos is not None:
                        setup_patches.append((t, pos, row))
            # 1-D boolean sweep finds each level's dirty cells, then a 2-D
            # kernel recomputes just those columns; everything else keeps
            # its committed value from the workspace copy.  Levels before
            # the first possible reader of a dirtied launch point (or the
            # first forced cell) cannot change and are skipped outright.
            for li in range(start_level, len(s.levels)):
                lvl = s.levels[li]
                # Cheap pre-check: most levels outside the cone see no
                # dirty inputs (and forced cells only exist at patch
                # levels), so skip before paying the per-cell reduceat.
                flags = net_dirty[lvl.in_net]
                lvl_patches = patches.get(li)
                if lvl_patches is None and not flags.any():
                    continue
                dirty = np.logical_or.reduceat(flags, lvl.in_ptr[:-1])
                if lvl_patches is not None:
                    dirty |= forced[lvl.cells]
                if not dirty.any():
                    continue
                idx = None
                nd = int(np.count_nonzero(dirty))
                if nd * 4 >= dirty.size or dirty.size <= 48:
                    # Dense or small level: recompute every column with one
                    # reduceat.  Clean columns see only committed inputs and
                    # committed delays, so they reproduce the committed
                    # arrival bit-for-bit — over-computing is free parity-
                    # wise and skips the gather construction below.  Only
                    # truly dirty outputs propagate dirtiness.
                    sub_in_net = lvl.in_net
                    sub_ptr = lvl.in_ptr[:-1]
                    sub_out = lvl.out
                    sub_cells = lvl.cells
                    dirty_out = lvl.out if nd == dirty.size else lvl.out[dirty]
                else:
                    idx = np.flatnonzero(dirty)
                    starts = lvl.in_ptr[idx]
                    counts = lvl.in_ptr[idx + 1] - starts
                    sub_ptr = np.cumsum(counts) - counts
                    gather = (
                        np.repeat(starts - sub_ptr, counts)
                        + np.arange(int(counts.sum()))
                    )
                    sub_in_net = lvl.in_net[gather]
                    sub_out = lvl.out[idx]
                    sub_cells = lvl.cells[idx]
                    dirty_out = sub_out
                worst = np.maximum.reduceat(
                    arrivals2[:, sub_in_net], sub_ptr, axis=1
                )
                out2 = worst + self.delay[sub_cells][None, :]
                if lvl_patches:
                    for t, pos, d in lvl_patches:
                        j = (
                            pos if idx is None
                            else int(np.searchsorted(idx, pos))
                        )
                        out2[t, j] = worst[t, j] + d
                arrivals2[:, sub_out] = out2
                net_dirty[dirty_out] = True
            # endpoint reduction: exact min over PO + register slacks
            period = c.effective_period
            worst2 = np.full(k, np.inf)
            if len(s.po_nets):
                po_slack2 = (
                    (period - self._po_margin)[None, :]
                    - arrivals2[:, s.po_nets]
                )
                worst2 = po_slack2.min(axis=1)
            if len(s.seq_cells):
                reg_req = period - params[:, _SETUP][self.cell_row[s.seq_cells]]
                reg_slack2 = reg_req[None, :] - arrivals2[:, s.seq_d]
                for t, pos, row in setup_patches:
                    reg_slack2[t, pos] = (
                        (period - params[row, _SETUP])
                        - arrivals2[t, s.seq_d[pos]]
                    )
                worst2 = np.minimum(worst2, reg_slack2.min(axis=1))
        if not len(s.po_nets) and not len(s.seq_cells):
            return [0.0] * k
        return [round(float(w), 4) for w in worst2]

    def trial_metrics_batch(self, trials) -> list[tuple[float, float]]:
        """``(CPS, total area)`` verdicts for hypothetical rebinds.

        Same lane format and parity contract as :meth:`trial_cps_batch`
        (the CPS half *is* that sweep), extended with the area the design
        would have after committing each lane: the committed binding rows
        are patched per lane and folded through the same strict
        left-to-right ``cumsum`` as :meth:`committed_area`, so entry
        ``i`` is bit-identical to committing ``trials[i]`` and reading
        ``(analyze().cps, total_area())`` — with no mutation and no
        revert.  This is the scoring kernel of the design-space explorer
        (:mod:`repro.synth.explore`): one sweep evaluates a whole batch
        of multi-gate move sets.
        """
        cps = self.trial_cps_batch(trials)
        lanes = self._normalize_trials(trials)
        cells = self.netlist.cells
        s = self.s
        patched_rows = []
        for lane in lanes:
            rows = self.cell_row.copy()
            for name, lib_name in lane:
                ci = s.cell_index[name]
                rows[ci] = self._row_for_binding(cells[name].gate, lib_name)
            patched_rows.append(rows)
        # Gather areas only after every row is resolved: resolution may
        # append parameter rows, rebuilding the params matrix.
        areas = self.params[:, _AREA]
        out: list[tuple[float, float]] = []
        for rows, lane_cps in zip(patched_rows, cps):
            vals = areas[rows]
            area = float(np.cumsum(vals)[-1]) if vals.size else 0.0
            out.append((lane_cps, area))
        return out

    # -- reductions ----------------------------------------------------------

    def committed_cps(self) -> float:
        """Worst endpoint slack over the committed arrays, report-rounded.

        Bit-identical to ``TimingReport.cps`` from :meth:`TimingEngine.
        analyze` — the same slack values feed the same exact ``min`` and
        the same ``round(..., 4)`` — without materializing the endpoint
        dictionaries.
        """
        s = self.s
        period = self.constraints.effective_period
        worst = None
        if len(s.po_nets):
            worst = ((period - self._po_margin) - self.arrivals[s.po_nets]).min()
        if len(s.seq_cells):
            reg_req = period - self.params[:, _SETUP][self.cell_row[s.seq_cells]]
            reg_worst = (reg_req - self.arrivals[s.seq_d]).min()
            worst = reg_worst if worst is None else min(worst, reg_worst)
        if worst is None:
            return 0.0
        return round(float(worst), 4)

    def committed_area(self) -> float:
        """Total cell area under the committed bindings.

        Bit-identical to the scalar engine's Python fold over netlist
        order: ``cumsum`` is a strict left-to-right float64 accumulation,
        cells appear in insertion order, and const rows carry area 0.0
        (adding exact ``+0.0`` terms where the scalar fold skips).
        """
        areas = self.params[:, _AREA][self.cell_row]
        if not areas.size:
            return 0.0
        return float(np.cumsum(areas)[-1])

    def endpoint_arrays(self):
        """Endpoint slacks/required in scalar construction order.

        Returns ``(po_names, po_required, po_slack, reg_names,
        reg_required, reg_slack)``; register endpoints follow the cells
        dict order exactly like the scalar pass.
        """
        s = self.s
        period = self.constraints.effective_period
        po_required = period - self._po_margin
        po_slack = po_required - self.arrivals[s.po_nets]
        reg_required = period - self.params[:, _SETUP][self.cell_row[s.seq_cells]]
        reg_slack = reg_required - self.arrivals[s.seq_d]
        return s.po_names, po_required, po_slack, s.seq_names, reg_required, reg_slack

    def arrival_of(self, net_name: str) -> float:
        """Arrival time at a net (0.0 for unknown/launch-less nets)."""
        idx = self.s.net_index.get(net_name)
        if idx is None or self.arrivals is None:
            return 0.0
        return float(self.arrivals[idx])


# -- vectorized power --------------------------------------------------------


def _group_prob(kind: str, p):
    """Vectorized :func:`repro.synth.power._prob_out` (same expressions)."""
    if kind == "BUF":
        return p[0]
    if kind == "NOT":
        return 1.0 - p[0]
    if kind == "AND2":
        return p[0] * p[1]
    if kind == "NAND2":
        return 1.0 - p[0] * p[1]
    if kind == "OR2":
        return 1.0 - (1 - p[0]) * (1 - p[1])
    if kind == "NOR2":
        return (1 - p[0]) * (1 - p[1])
    if kind in ("XOR2", "XNOR2"):
        x = p[0] * (1 - p[1]) + (1 - p[0]) * p[1]
        return x if kind == "XOR2" else 1.0 - x
    if kind == "MUX2":
        sel, a, b = p
        return (1 - sel) * a + sel * b
    if kind == "AOI21":
        return (1 - p[0] * p[1]) * (1 - p[2])
    if kind == "OAI21":
        return 1 - (1 - (1 - p[0]) * (1 - p[1])) * p[2]
    raise ValueError(f"unknown gate {kind!r}")


def _group_sens(kind: str, p):
    """Vectorized :func:`repro.synth.power._sensitivities`."""
    if kind in ("BUF", "NOT"):
        return [np.ones_like(p[0])]
    if kind in ("AND2", "NAND2"):
        return [p[1], p[0]]
    if kind in ("OR2", "NOR2"):
        return [1 - p[1], 1 - p[0]]
    if kind in ("XOR2", "XNOR2"):
        one = np.ones_like(p[0])
        return [one, one]
    if kind == "MUX2":
        sel, a, b = p
        return [a * (1 - b) + (1 - a) * b, 1 - sel, sel]
    if kind == "AOI21":
        return [p[1] * (1 - p[2]), p[0] * (1 - p[2]), 1 - p[0] * p[1]]
    if kind == "OAI21":
        return [(1 - p[1]) * p[2], (1 - p[0]) * p[2], 1 - (1 - p[0]) * (1 - p[1])]
    raise ValueError(f"unknown gate {kind!r}")


def vector_power(
    kernel: SoAKernel,
    input_probability: float,
    input_activity: float,
    voltage: float,
    internal_energy_fj: float,
):
    """Activity propagation + power integration over SoA arrays.

    Mirrors the scalar :class:`~repro.synth.power.PowerAnalyzer` pass
    structure exactly — including the sequential (Gauss-Seidel, cells
    dict order) register sweep and the convergence early-exit — so
    switching activities are bit-identical to the scalar pass.

    Returns ``(dynamic, internal, leakage, clock_tree, activities)``
    with unrounded sums and the net-activity dict.
    """
    perf.incr("power.vector")
    s = kernel.s
    if kernel.loads is None:
        kernel.compute_loads()
    prob = np.full(s.num_nets, input_probability, dtype=np.float64)
    act = np.full(s.num_nets, input_activity, dtype=np.float64)
    clock_pis = s.pi_nets[s.pi_is_clock]
    prob[clock_pis] = 0.5
    act[clock_pis] = 2.0

    schedule = s.power_schedule()
    seq_pairs = list(zip(s.seq_out.tolist(), s.seq_d.tolist()))
    for iteration in range(2):
        changed = False
        for q, d in seq_pairs:
            p_new = prob[d]
            a_new = min(act[d], 1.0)
            if prob[q] != p_new or act[q] != a_new:
                changed = True
                prob[q] = p_new
                act[q] = a_new
        if iteration and not changed:
            perf.incr("power.fixpoint_early_exit")
            break
        for kind, _cells, out, in_cols in schedule:
            if kind == "CONST0":
                prob[out] = 0.0
                act[out] = 0.0
                continue
            if kind == "CONST1":
                prob[out] = 1.0
                act[out] = 0.0
                continue
            p = [prob[col] for col in in_cols]
            a = [act[col] for col in in_cols]
            prob[out] = _group_prob(kind, p)
            sens = _group_sens(kind, p)
            total = sens[0] * a[0]
            for pin in range(1, len(sens)):
                total = total + sens[pin] * a[pin]
            act[out] = np.minimum(total, 4.0)

    period = kernel.constraints.clock_period
    freq_ghz = 1.0 / max(period, 1e-9)
    v2 = voltage**2
    assigned = s.net_is_input | s.net_has_driver
    act_eff = np.where(assigned, act, 0.0)
    energy = 0.5 * kernel.loads * v2 * freq_ghz * act_eff
    clock_tree = float(energy[s.net_is_clock].sum())
    dynamic = float(energy[~s.net_is_clock].sum())
    cell_mask = ~s.cell_is_const
    rows = kernel.cell_row[cell_mask]
    params = kernel.params
    leakage = float((params[:, _LEAK][rows] / 1000.0).sum())
    internal = float(
        (
            internal_energy_fj
            * params[:, _DRIVE][rows]
            * act_eff[s.cell_out[cell_mask]]
            * freq_ghz
        ).sum()
    )
    activities = {
        s.net_names[ni]: float(act[ni]) for ni in np.flatnonzero(assigned)
    }
    return dynamic, internal, leakage, clock_tree, activities
