"""Logic synthesis engine: the Design Compiler substitute.

Full flow: elaborated RTL netlist -> technology mapping (Nangate-45nm-class
built-in library or parsed Liberty) -> optimization passes (cleanup, chain
balancing, gate sizing, fanout buffering, retiming) -> static timing
analysis and QoR reporting, all driven by DC-format Tcl scripts through
:class:`DCShell`.
"""

from .cache import (
    FrontendCache,
    SynthesisCache,
    clear_caches,
    default_cache,
    elaborate_cached,
    frontend_cache,
    frontend_cache_mode,
    synthesize_cached,
)
from .dcshell import DCShell, DCShellError, ScriptResult
from .explore import (
    ChainResult,
    ExploreConfig,
    anneal_chain,
    explore_enabled,
    explore_sizing,
)
from .liberty import LibertyError, parse_liberty, write_liberty
from .library import LibCell, TechLibrary, nangate45
from .optimizer import (
    PassResult,
    balance_chains,
    buffer_high_fanout,
    recover_area,
    retime,
    size_gates,
)
from .passes import PassContext, fast_opt_enabled, sizing_neighbors
from .power import PowerAnalyzer, PowerReport
from .reports import QoRSnapshot, render_qor_report, render_timing_report
from .sdc import Constraints
from .soa import vector_sta_enabled
from .tcl import TclError, TclInterpreter
from .techmap import cleanup, map_to_library
from .timing import TimingEngine, TimingPath, TimingReport
from .wireload import WIRELOAD_MODELS, WireLoadModel, get_wireload

__all__ = [
    "PowerAnalyzer",
    "PowerReport",
    "FrontendCache",
    "SynthesisCache",
    "clear_caches",
    "default_cache",
    "elaborate_cached",
    "frontend_cache",
    "frontend_cache_mode",
    "synthesize_cached",
    "vector_sta_enabled",
    "DCShell",
    "DCShellError",
    "ScriptResult",
    "LibertyError",
    "parse_liberty",
    "write_liberty",
    "LibCell",
    "TechLibrary",
    "nangate45",
    "PassContext",
    "fast_opt_enabled",
    "sizing_neighbors",
    "ChainResult",
    "ExploreConfig",
    "anneal_chain",
    "explore_enabled",
    "explore_sizing",
    "PassResult",
    "balance_chains",
    "buffer_high_fanout",
    "recover_area",
    "retime",
    "size_gates",
    "QoRSnapshot",
    "render_qor_report",
    "render_timing_report",
    "Constraints",
    "TclError",
    "TclInterpreter",
    "cleanup",
    "map_to_library",
    "TimingEngine",
    "TimingPath",
    "TimingReport",
    "WIRELOAD_MODELS",
    "WireLoadModel",
    "get_wireload",
]
