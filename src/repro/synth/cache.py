"""Content-addressed synthesis result cache.

Pass@k evaluation re-synthesizes aggressively: seeded drafts frequently
produce *identical* scripts (and the Table III harness re-runs the Table IV
baseline script per design).  Synthesis is deterministic — same RTL, same
script, same library, same starting constraints always yield the same
result — so one content-addressed lookup replaces a full
elaborate/map/optimize/time run.

Keys are SHA-256 over (library name, design name, RTL source, top module,
script text); for callers that already hold an elaborated netlist,
:meth:`Netlist.fingerprint` supplies the netlist half of the key instead of
the RTL text.  Values are deep copies of :class:`ScriptResult`, so cached
transcripts/QoR can never be mutated by one caller into another.

The default cache is process-global, LRU-bounded and thread-safe (the
parallel evaluation executor hits it from worker threads).  Set
``REPRO_SYNTH_CACHE=0`` to disable caching without touching call sites.
"""

from __future__ import annotations

import copy
import hashlib
import os
import threading
from collections import OrderedDict

from .. import obs, perf
from ..hdl.elaborator import elaborate
from ..hdl.netlist import Netlist
from .dcshell import DCShell, ScriptResult
from .library import TechLibrary

__all__ = [
    "SynthesisCache",
    "default_cache",
    "cache_enabled",
    "synthesis_key",
    "synthesize_cached",
    "elaborate_cached",
    "netlist_cache_stats",
    "clear_caches",
]


def cache_enabled() -> bool:
    """Whether the synthesis cache is active (``REPRO_SYNTH_CACHE`` gate)."""
    return os.environ.get("REPRO_SYNTH_CACHE", "1").lower() not in (
        "0", "false", "no", "off",
    )


def synthesis_key(
    library_name: str,
    design_name: str,
    content: str,
    top: str | None,
    script: str,
) -> str:
    """Content address for one (design, script) synthesis run.

    ``content`` is either the RTL source or a netlist fingerprint — any
    stable digest of what ``read_verilog`` will load.
    """
    h = hashlib.sha256()
    for part in (library_name, design_name, content, top or "", script):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class SynthesisCache:
    """Thread-safe LRU cache of :class:`ScriptResult` by content key."""

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, ScriptResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> ScriptResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                perf.incr("synthcache.miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            perf.incr("synthcache.hit")
            return copy.deepcopy(result)

    def put(self, key: str, result: ScriptResult) -> None:
        with self._lock:
            self._entries[key] = copy.deepcopy(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_DEFAULT = SynthesisCache()

# Elaborated-netlist cache: distinct scripts against the same design all
# start from the same RTL, and elaboration dominates read_verilog.  Keyed
# by (source, top); entries are pristine netlists handed out as clones so
# downstream optimization can never corrupt the cache.
_NETLIST_LOCK = threading.Lock()
_NETLISTS: OrderedDict[str, Netlist] = OrderedDict()
_NETLIST_LIMIT = 64
_NETLIST_HITS = 0
_NETLIST_MISSES = 0


def netlist_cache_stats() -> dict:
    """Hit/miss/occupancy stats, shaped like :meth:`SynthesisCache.stats`."""
    with _NETLIST_LOCK:
        return {
            "entries": len(_NETLISTS),
            "hits": _NETLIST_HITS,
            "misses": _NETLIST_MISSES,
        }


def elaborate_cached(source: str, top: str | None = None) -> Netlist:
    """Elaborate RTL, serving repeated (source, top) pairs as clones."""
    global _NETLIST_HITS, _NETLIST_MISSES
    if not cache_enabled():
        with obs.span("synth.elaborate", cached=False):
            return elaborate(source, top)
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(b"\x00")
    digest.update((top or "").encode())
    key = digest.hexdigest()
    with _NETLIST_LOCK:
        hit = _NETLISTS.get(key)
        if hit is not None:
            _NETLISTS.move_to_end(key)
            _NETLIST_HITS += 1
    if hit is not None:
        perf.incr("netcache.hit")
        return hit.clone()
    perf.incr("netcache.miss")
    with obs.span("synth.elaborate", cached=False):
        netlist = elaborate(source, top)
    with _NETLIST_LOCK:
        _NETLIST_MISSES += 1
        _NETLISTS[key] = netlist.clone()
        while len(_NETLISTS) > _NETLIST_LIMIT:
            _NETLISTS.popitem(last=False)
    return netlist


def default_cache() -> SynthesisCache:
    """The process-global cache shared by all evaluation runners."""
    return _DEFAULT


def clear_caches() -> None:
    """Empty every process-global cache (benchmark cold-start helper)."""
    global _NETLIST_HITS, _NETLIST_MISSES
    _DEFAULT.clear()
    with _NETLIST_LOCK:
        _NETLISTS.clear()
        _NETLIST_HITS = 0
        _NETLIST_MISSES = 0


# Surface both caches in ``perf.snapshot()["caches"]``.
perf.register_stats_provider("synthesis", _DEFAULT.stats)
perf.register_stats_provider("netlist", netlist_cache_stats)


def synthesize_cached(
    library: TechLibrary | None,
    design_name: str,
    verilog: str,
    script: str,
    top: str | None = None,
    cache: SynthesisCache | None = None,
) -> ScriptResult:
    """Run ``script`` against ``verilog`` in a fresh shell, with caching.

    Equivalent to building a :class:`DCShell`, registering the design and
    calling :meth:`DCShell.run_script` — except identical (library, design,
    script) triples are served from the cache.  Always uses a fresh shell,
    so results are independent of any prior shell state.
    """
    use_cache = cache_enabled()
    # `cache or _DEFAULT` would discard an *empty* cache (len() == 0 is falsy).
    store = _DEFAULT if cache is None else cache
    with obs.span("synth.synthesize", design=design_name) as sp:
        shell = DCShell(library=library)
        key = None
        if use_cache:
            key = synthesis_key(shell.library.name, design_name, verilog, top, script)
            cached = store.get(key)
            if cached is not None:
                sp.set_attribute("cached", True)
                return cached
        sp.set_attribute("cached", False)
        shell.add_design(design_name, verilog, top=top)
        with perf.timer("synth.run_script"):
            result = shell.run_script(script)
        sp.set_attribute("success", result.success)
        if not result.success:
            obs.warning("synth.script_failed", design=design_name, error=result.error)
        if use_cache and key is not None:
            store.put(key, result)
        return result
