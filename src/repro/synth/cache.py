"""Content-addressed synthesis result cache.

Pass@k evaluation re-synthesizes aggressively: seeded drafts frequently
produce *identical* scripts (and the Table III harness re-runs the Table IV
baseline script per design).  Synthesis is deterministic — same RTL, same
script, same library, same starting constraints always yield the same
result — so one content-addressed lookup replaces a full
elaborate/map/optimize/time run.

Keys are SHA-256 over (library name, design name, RTL source, top module,
script text); for callers that already hold an elaborated netlist,
:meth:`Netlist.fingerprint` supplies the netlist half of the key instead of
the RTL text.  Values are deep copies of :class:`ScriptResult`, so cached
transcripts/QoR can never be mutated by one caller into another.

The default cache is process-global, LRU-bounded and thread-safe (the
parallel evaluation executor hits it from worker threads).  Set
``REPRO_SYNTH_CACHE=0`` to disable caching without touching call sites.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import os
import pickle
import threading
from collections import OrderedDict

from .. import obs, perf
from ..hdl.elaborator import elaborate
from ..hdl.netlist import Netlist
from .dcshell import DCShell, ScriptResult
from .library import TechLibrary

__all__ = [
    "SynthesisCache",
    "FrontendCache",
    "default_cache",
    "frontend_cache",
    "cache_enabled",
    "frontend_cache_mode",
    "synth_cache_mode",
    "synthesis_key",
    "frontend_key",
    "synthesize_cached",
    "elaborate_cached",
    "netlist_cache_stats",
    "clear_caches",
    "atomic_pickle_write",
]


def synth_cache_mode() -> tuple[bool, str | None]:
    """Parse ``REPRO_SYNTH_CACHE`` into ``(enabled, disk_dir)``.

    Off-values (``0``/``false``/``no``/``off``) disable the synthesis
    cache entirely; unset or on-values keep the in-memory layer only; any
    other string is a directory path enabling a persistent pickle layer
    shared across processes — the process-backend worker pool reads and
    writes one store, so a design synthesized by any worker is a hit for
    every other.
    """
    raw = os.environ.get("REPRO_SYNTH_CACHE", "1").strip()
    lowered = raw.lower()
    if lowered in ("0", "false", "no", "off"):
        return False, None
    if lowered in ("", "1", "true", "yes", "on"):
        return True, None
    return True, raw


def cache_enabled() -> bool:
    """Whether the synthesis cache is active (``REPRO_SYNTH_CACHE`` gate)."""
    return synth_cache_mode()[0]


#: Monotonic suffix so concurrent writers in one process never share a
#: temp file (pid alone is not unique across threads).
_TMP_IDS = itertools.count(1)


def atomic_pickle_write(path: str, obj) -> bool:
    """Write ``pickle(obj)`` to ``path`` atomically; False on any OS error.

    A unique temp name (pid + thread id + counter) plus ``os.replace``
    guarantees readers — worker processes racing on one on-disk cache
    directory — only ever observe complete entries, never torn bytes:
    either the old file, the new file, or a miss.
    """
    tmp = (
        f"{path}.{os.getpid()}.{threading.get_ident()}.{next(_TMP_IDS)}.tmp"
    )
    try:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(tmp, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    return True


def atomic_pickle_read(path: str, expected_type: type):
    """Load a pickled cache entry; None on missing/torn/foreign content."""
    try:
        with open(path, "rb") as fh:
            obj = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    return obj if isinstance(obj, expected_type) else None


def synthesis_key(
    library_name: str,
    design_name: str,
    content: str,
    top: str | None,
    script: str,
) -> str:
    """Content address for one (design, script) synthesis run.

    ``content`` is either the RTL source or a netlist fingerprint — any
    stable digest of what ``read_verilog`` will load.
    """
    h = hashlib.sha256()
    for part in (library_name, design_name, content, top or "", script):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class SynthesisCache:
    """Thread-safe LRU cache of :class:`ScriptResult` by content key.

    An optional on-disk pickle layer (directory-valued
    ``REPRO_SYNTH_CACHE``) backs the in-memory LRU: entries written by
    any process are hits for every other.  Disk writes are atomic
    (:func:`atomic_pickle_write`), so concurrent worker processes never
    read torn entries.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, ScriptResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0

    def _disk_path(self, disk_dir: str, key: str) -> str:
        return os.path.join(disk_dir, f"{key}.result.pkl")

    def get(self, key: str, disk_dir: str | None = None) -> ScriptResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if result is not None:
            perf.incr("synthcache.hit")
            return copy.deepcopy(result)
        if disk_dir is not None:
            loaded = atomic_pickle_read(self._disk_path(disk_dir, key), ScriptResult)
            if loaded is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._entries[key] = loaded
                    self._trim()
                perf.incr("synthcache.hit")
                perf.incr("synthcache.disk_hit")
                return copy.deepcopy(loaded)
        with self._lock:
            self.misses += 1
        perf.incr("synthcache.miss")
        return None

    def put(self, key: str, result: ScriptResult, disk_dir: str | None = None) -> None:
        with self._lock:
            self._entries[key] = copy.deepcopy(result)
            self._entries.move_to_end(key)
            self._trim()
        if disk_dir is not None:
            if atomic_pickle_write(self._disk_path(disk_dir, key), result):
                with self._lock:
                    self.disk_writes += 1
                perf.incr("synthcache.disk_write")

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk_writes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / lookups, 6) if lookups else 0.0,
                "disk_hits": self.disk_hits,
                "disk_writes": self.disk_writes,
            }


_DEFAULT = SynthesisCache()


def frontend_cache_mode() -> tuple[bool, str | None]:
    """Parse ``REPRO_FRONTEND_CACHE`` into ``(enabled, disk_dir)``.

    Off-values (``0``/``false``/``no``/``off``) disable the frontend cache;
    unset or on-values keep the in-memory layer only; any other string is a
    directory path enabling the persistent pickle layer (shared across
    processes — the table3/table4/pass@k harnesses recompile the same
    designs every run).
    """
    raw = os.environ.get("REPRO_FRONTEND_CACHE", "1").strip()
    lowered = raw.lower()
    if lowered in ("0", "false", "no", "off"):
        return False, None
    if lowered in ("", "1", "true", "yes", "on"):
        return True, None
    return True, raw


def frontend_key(source: str, top: str | None, params: dict | None = None) -> str:
    """Content address of one elaboration: RTL source + top + parameters."""
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(b"\x00")
    digest.update((top or "").encode())
    if params:
        digest.update(b"\x00")
        digest.update(repr(sorted(params.items())).encode())
    return digest.hexdigest()


class FrontendCache:
    """Content-addressed cache of elaborated netlists.

    Two layers: an in-memory LRU of pristine netlists (handed out as
    clones so downstream optimization can never corrupt an entry), and an
    optional on-disk pickle layer keyed by the same content address.
    Disk writes are atomic (tmp + rename), so concurrent processes racing
    on the same design at worst both write the same bytes.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Netlist] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0

    def _disk_path(self, disk_dir: str, key: str) -> str:
        return os.path.join(disk_dir, f"{key}.netlist.pkl")

    def get(self, key: str, disk_dir: str | None = None) -> Netlist | None:
        """A private clone of the cached netlist, or None on miss."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if hit is not None:
            perf.incr("frontend.hit")
            return hit.clone()
        if disk_dir is not None:
            netlist = self._disk_get(key, disk_dir)
            if netlist is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._entries[key] = netlist
                    self._trim()
                perf.incr("frontend.hit")
                perf.incr("frontend.disk_hit")
                return netlist.clone()
        with self._lock:
            self.misses += 1
        perf.incr("frontend.miss")
        return None

    def put(self, key: str, netlist: Netlist, disk_dir: str | None = None) -> None:
        with self._lock:
            self._entries[key] = netlist.clone()
            self._entries.move_to_end(key)
            self._trim()
        if disk_dir is not None:
            self._disk_put(key, netlist, disk_dir)

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _disk_get(self, key: str, disk_dir: str) -> Netlist | None:
        return atomic_pickle_read(self._disk_path(disk_dir, key), Netlist)

    def _disk_put(self, key: str, netlist: Netlist, disk_dir: str) -> None:
        if atomic_pickle_write(self._disk_path(disk_dir, key), netlist):
            self.disk_writes += 1
            perf.incr("frontend.disk_write")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk_writes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        enabled, disk_dir = frontend_cache_mode()
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / lookups, 6) if lookups else 0.0,
                "disk_hits": self.disk_hits,
                "disk_writes": self.disk_writes,
                "disk_dir": disk_dir,
            }


_FRONTEND = FrontendCache()


def frontend_cache() -> FrontendCache:
    """The process-global frontend (elaborated netlist) cache."""
    return _FRONTEND


def netlist_cache_stats() -> dict:
    """Hit/miss/occupancy stats, shaped like :meth:`SynthesisCache.stats`.

    Kept as the ``netlist`` stats-provider shape from PR 1; the frontend
    cache is its successor and reports the same counters.
    """
    stats = _FRONTEND.stats()
    return {
        "entries": stats["entries"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def elaborate_cached(
    source: str, top: str | None = None, params: dict | None = None
) -> Netlist:
    """Elaborate RTL, serving repeated (source, top, params) from the cache.

    Honors both cache gates: ``REPRO_SYNTH_CACHE=0`` (the blanket synthesis
    cache switch) and ``REPRO_FRONTEND_CACHE`` (off / memory-only / disk
    directory) — see :func:`frontend_cache_mode`.
    """
    enabled, disk_dir = frontend_cache_mode()
    if not (cache_enabled() and enabled):
        with obs.span("synth.elaborate", cached=False):
            return elaborate(source, top, params)
    key = frontend_key(source, top, params)
    hit = _FRONTEND.get(key, disk_dir)
    if hit is not None:
        perf.incr("netcache.hit")
        return hit
    perf.incr("netcache.miss")
    with obs.span("synth.elaborate", cached=False):
        netlist = elaborate(source, top, params)
    _FRONTEND.put(key, netlist, disk_dir)
    return netlist


def default_cache() -> SynthesisCache:
    """The process-global cache shared by all evaluation runners."""
    return _DEFAULT


def clear_caches() -> None:
    """Empty every process-global cache (benchmark cold-start helper)."""
    _DEFAULT.clear()
    _FRONTEND.clear()


# Surface the caches in ``perf.snapshot()["caches"]``.  ``netlist`` keeps
# the PR 1 shape; ``frontend`` adds the disk-layer counters.
perf.register_stats_provider("synthesis", _DEFAULT.stats)
perf.register_stats_provider("netlist", netlist_cache_stats)
perf.register_stats_provider("frontend", _FRONTEND.stats)


def synthesize_cached(
    library: TechLibrary | None,
    design_name: str,
    verilog: str,
    script: str,
    top: str | None = None,
    cache: SynthesisCache | None = None,
) -> ScriptResult:
    """Run ``script`` against ``verilog`` in a fresh shell, with caching.

    Equivalent to building a :class:`DCShell`, registering the design and
    calling :meth:`DCShell.run_script` — except identical (library, design,
    script) triples are served from the cache.  Always uses a fresh shell,
    so results are independent of any prior shell state.  A directory-
    valued ``REPRO_SYNTH_CACHE`` adds a cross-process on-disk layer (see
    :func:`synth_cache_mode`).
    """
    use_cache, disk_dir = synth_cache_mode()
    # `cache or _DEFAULT` would discard an *empty* cache (len() == 0 is falsy).
    store = _DEFAULT if cache is None else cache
    with obs.span("synth.synthesize", design=design_name) as sp:
        shell = DCShell(library=library)
        key = None
        if use_cache:
            key = synthesis_key(shell.library.name, design_name, verilog, top, script)
            cached = store.get(key, disk_dir)
            if cached is not None:
                sp.set_attribute("cached", True)
                return cached
        sp.set_attribute("cached", False)
        shell.add_design(design_name, verilog, top=top)
        with perf.timer("synth.run_script"):
            result = shell.run_script(script)
        sp.set_attribute("success", result.success)
        if not result.success:
            obs.warning("synth.script_failed", design=design_name, error=result.error)
        if use_cache and key is not None:
            store.put(key, result, disk_dir)
        return result
