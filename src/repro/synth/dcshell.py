"""``dc_shell``: a Design-Compiler-style synthesis shell.

Executes Tcl synthesis scripts against the engine: reads RTL, applies
constraints, runs compile/optimization commands as real netlist
transformations, and renders DC-style reports.  This is the "commercial
logic synthesis tool" substitute the whole evaluation runs through.

Typical script::

    read_verilog aes
    current_design aes
    link
    set_wire_load_model -name 5K_heavy_1k
    create_clock -period 2.0 clk
    set_max_fanout 24
    compile_ultra -retime
    report_qor
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..hdl.elaborator import ElaborationError, elaborate
from ..hdl.netlist import Netlist
from ..hdl.parser import ParseError
from .explore import explore_sizing
from .library import TechLibrary, nangate45
from .optimizer import (
    balance_chains,
    buffer_high_fanout,
    recover_area,
    resynthesize_adders,
    retime,
    size_gates,
)
from .passes import PassContext
from .reports import (
    QoRSnapshot,
    render_area_report,
    render_qor_report,
    render_timing_report,
    snapshot,
)
from .sdc import Constraints
from .tcl import TclError, TclInterpreter
from .techmap import cleanup, map_complex_gates, map_to_library, merge_inverters
from .timing import TimingEngine
from .wireload import WireLoadModel, get_wireload

__all__ = ["DCShell", "ScriptResult", "DCShellError"]


class DCShellError(TclError):
    """Raised for semantically invalid shell commands."""


@dataclass
class ScriptResult:
    """Outcome of running one synthesis script."""

    success: bool
    error: str | None
    transcript: list[tuple[str, str]] = field(default_factory=list)
    qor: QoRSnapshot | None = None

    @property
    def executable(self) -> bool:
        return self.success


class DCShell:
    """One synthesis session: design + library + constraints + commands."""

    def __init__(self, library: TechLibrary | None = None) -> None:
        self.library = library or nangate45()
        self.wireload: WireLoadModel = get_wireload("5K_hvratio_1_1")
        self.constraints = Constraints()
        self.design_sources: dict[str, str] = {}
        self.design_tops: dict[str, str] = {}
        self.netlist: Netlist | None = None
        self.design_name: str | None = None
        self.flatten = False
        self.compiled = False
        self.pass_log: list[str] = []
        self.last_written: str | None = None
        self.interp = TclInterpreter()
        self._context_cache: PassContext | None = None
        self._register_commands()

    # -- design registry ------------------------------------------------------------

    def add_design(self, name: str, verilog: str, top: str | None = None) -> None:
        """Register RTL so scripts can ``read_verilog <name>``."""
        self.design_sources[name] = verilog
        self.design_tops[name] = top or name

    # -- script execution --------------------------------------------------------------

    def run_script(self, script: str) -> ScriptResult:
        """Execute a full Tcl script; never raises (errors are captured)."""
        with obs.span("synth.script", commands=len(script.splitlines())) as sp:
            try:
                transcript = self.interp.eval_script(script)
            except (TclError, ElaborationError, ParseError, KeyError, ValueError) as exc:
                sp.set_attribute("failed", True)
                return ScriptResult(success=False, error=str(exc))
            qor = self.qor() if self.netlist is not None else None
            return ScriptResult(
                success=True, error=None, transcript=transcript, qor=qor
            )

    def qor(self) -> QoRSnapshot:
        """Structured QoR for the current design."""
        engine = self._engine()
        return snapshot(self.design_name or "unknown", engine, engine.analyze())

    def timing_report(self) -> str:
        engine = self._engine()
        return render_timing_report(self.design_name or "?", engine.analyze())

    def _pass_context(self) -> PassContext:
        """The session's shared pass context (one engine for everything).

        Every optimization pass and report command runs against this
        context's :class:`TimingEngine`: it tracks the netlist's change
        journal and its own constraint/wireload signature, so pass-to-pass
        handoff and repeated report commands reuse (or incrementally
        update) the previous analysis instead of rebuilding from cold.
        """
        if self.netlist is None:
            raise DCShellError("no design loaded (run read_verilog first)")
        cached = self._context_cache
        if (
            cached is None
            or cached.netlist is not self.netlist
            or cached.library is not self.library
            or cached.wireload is not self.wireload
            or cached.constraints is not self.constraints
        ):
            cached = PassContext(
                self.netlist, self.library, self.wireload, self.constraints
            )
            self._context_cache = cached
        return cached

    def _engine(self) -> TimingEngine:
        return self._pass_context().engine

    # -- command registration ---------------------------------------------------------

    def _register_commands(self) -> None:
        shell_commands = {
            "read_verilog": self._cmd_read_verilog,
            "current_design": self._cmd_current_design,
            "link": self._cmd_link,
            "set_wire_load_model": self._cmd_set_wire_load_model,
            "create_clock": self._cmd_create_clock,
            "set_clock_uncertainty": self._cmd_set_clock_uncertainty,
            "set_input_delay": self._cmd_set_input_delay,
            "set_output_delay": self._cmd_set_output_delay,
            "set_max_area": self._cmd_set_max_area,
            "set_max_fanout": self._cmd_set_max_fanout,
            "set_flatten": self._cmd_set_flatten,
            "ungroup": self._cmd_ungroup,
            "compile": self._cmd_compile,
            "compile_ultra": self._cmd_compile_ultra,
            "optimize_registers": self._cmd_optimize_registers,
            "balance_buffer": self._cmd_balance_buffer,
            "explore_sizing": self._cmd_explore_sizing,
            "report_timing": self._cmd_report_timing,
            "report_area": self._cmd_report_area,
            "report_qor": self._cmd_report_qor,
            "report_power": self._cmd_report_power,
            "write": self._cmd_write,
            "all_inputs": lambda a: "[all_inputs]",
            "all_outputs": lambda a: "[all_outputs]",
            "get_ports": lambda a: a[0] if a else "",
        }
        for name, method in shell_commands.items():
            self.interp.register(name, lambda i, a, m=method: m(a))

    # -- option parsing helper -----------------------------------------------------------

    @staticmethod
    def _parse_options(
        args: list[str], value_options: set[str]
    ) -> tuple[dict[str, str], list[str], set[str]]:
        """Split args into ``-opt value`` pairs, flags and positionals."""
        options: dict[str, str] = {}
        flags: set[str] = set()
        positional: list[str] = []
        i = 0
        while i < len(args):
            arg = args[i]
            if arg.startswith("-"):
                name = arg[1:]
                if name in value_options and i + 1 < len(args):
                    options[name] = args[i + 1]
                    i += 2
                else:
                    flags.add(name)
                    i += 1
            else:
                positional.append(arg)
                i += 1
        return options, positional, flags

    # Passes that take the shared engine context (timing-driven ones).
    _CONTEXT_PASSES = frozenset(
        {
            "size_gates", "retime", "buffer_high_fanout", "recover_area",
            "explore_sizing",
        }
    )

    def _optimize(self, name: str, fn, *args, **kwargs):
        """Run one optimizer pass inside a ``synth.optimize`` span.

        Timing-driven passes receive the session's shared
        :class:`PassContext`, so the whole compile flow drives one
        incremental timing engine instead of a cold STA per pass.
        """
        if name in self._CONTEXT_PASSES:
            kwargs.setdefault("context", self._pass_context())
        with obs.span("synth.optimize", opt=name):
            return fn(*args, **kwargs)

    # -- commands ------------------------------------------------------------------------

    def _cmd_read_verilog(self, args: list[str]) -> str:
        if not args:
            raise DCShellError("read_verilog: missing design name")
        name = args[0].strip("{}")
        if name not in self.design_sources:
            raise DCShellError(f"read_verilog: unknown design {name!r}")
        top = self.design_tops[name]
        # Late import: cache.py imports DCShell, so the module level would cycle.
        from .cache import elaborate_cached

        self.netlist = elaborate_cached(self.design_sources[name], top)
        self.design_name = name
        self.compiled = False
        self.pass_log = [f"read_verilog {name}"]
        return f"Loaded design {name} ({self.netlist.num_cells} cells)"

    def _cmd_current_design(self, args: list[str]) -> str:
        if not args:
            return self.design_name or ""
        requested = args[0].strip("{}")
        if self.design_name is not None and requested not in (
            self.design_name,
            self.design_tops.get(self.design_name, ""),
        ):
            raise DCShellError(f"current_design: {requested!r} is not loaded")
        return requested

    def _cmd_link(self, args: list[str]) -> str:
        if self.netlist is None:
            raise DCShellError("link: no design loaded")
        self.netlist.validate()
        return "Linked successfully"

    def _cmd_set_wire_load_model(self, args: list[str]) -> str:
        options, positional, _ = self._parse_options(args, {"name"})
        name = options.get("name") or (positional[0] if positional else None)
        if name is None:
            raise DCShellError("set_wire_load_model: -name required")
        self.wireload = get_wireload(name)
        return name

    def _cmd_create_clock(self, args: list[str]) -> str:
        options, positional, _ = self._parse_options(args, {"period", "name"})
        if "period" not in options:
            raise DCShellError("create_clock: -period required")
        self.constraints.clock_period = float(options["period"])
        self.constraints.clock_name = options.get("name", "clk")
        if positional:
            port = positional[0].strip("{}")
            self.constraints.clock_port = port
        return self.constraints.clock_name

    def _cmd_set_clock_uncertainty(self, args: list[str]) -> str:
        if not args:
            raise DCShellError("set_clock_uncertainty: missing value")
        self.constraints.clock_uncertainty = float(args[0])
        return args[0]

    def _cmd_set_input_delay(self, args: list[str]) -> str:
        options, positional, _ = self._parse_options(args, {"clock"})
        if not positional:
            raise DCShellError("set_input_delay: missing delay value")
        value = float(positional[0])
        ports = [p.strip("{}") for p in positional[1:]]
        if not ports or ports == ["[all_inputs]"]:
            self.constraints.input_delay = value
        else:
            for port in ports:
                self.constraints.per_input_delay[port] = value
        return positional[0]

    def _cmd_set_output_delay(self, args: list[str]) -> str:
        options, positional, _ = self._parse_options(args, {"clock"})
        if not positional:
            raise DCShellError("set_output_delay: missing delay value")
        value = float(positional[0])
        ports = [p.strip("{}") for p in positional[1:]]
        if not ports or ports == ["[all_outputs]"]:
            self.constraints.output_delay = value
        else:
            for port in ports:
                self.constraints.per_output_delay[port] = value
        return positional[0]

    def _cmd_set_max_area(self, args: list[str]) -> str:
        if not args:
            raise DCShellError("set_max_area: missing value")
        self.constraints.max_area = float(args[0])
        return args[0]

    def _cmd_set_max_fanout(self, args: list[str]) -> str:
        positional = [a for a in args if not a.startswith("-")]
        if not positional:
            raise DCShellError("set_max_fanout: missing value")
        self.constraints.max_fanout = int(float(positional[0]))
        return positional[0]

    def _cmd_set_flatten(self, args: list[str]) -> str:
        value = args[0].lower() if args else "true"
        self.flatten = value in ("true", "1", "yes")
        return str(self.flatten).lower()

    def _cmd_ungroup(self, args: list[str]) -> str:
        _, _, flags = self._parse_options(args, set())
        if "all" in flags or "flatten" in flags:
            self.flatten = True
        return "1"

    def _require_design(self, command: str) -> Netlist:
        if self.netlist is None:
            raise DCShellError(f"{command}: no design loaded")
        return self.netlist

    def _cmd_compile(self, args: list[str]) -> str:
        netlist = self._require_design("compile")
        options, _, flags = self._parse_options(
            args, {"map_effort", "area_effort", "power_effort"}
        )
        effort = options.get("map_effort", "medium")
        if "incremental" in flags and self.compiled:
            # Incremental compile: keep the mapped netlist and push the
            # timing-driven passes harder than the main flow — a wider
            # sizing candidate scan and a deeper retiming budget find the
            # moves the first invocation's greedy search abandoned.
            with obs.span("synth.compile", incremental=True):
                self._optimize(
                    "size_gates", size_gates,
                    netlist, self.library, self.wireload, self.constraints,
                    max_rounds=60, scan=40,
                )
                self._optimize(
                    "retime", retime,
                    netlist, self.library, self.wireload, self.constraints,
                    max_moves=500,
                )
                if self.constraints.max_fanout:
                    self._optimize(
                        "buffer_high_fanout", buffer_high_fanout,
                        netlist, self.library, self.wireload, self.constraints,
                    )
                self._optimize(
                    "size_gates", size_gates,
                    netlist, self.library, self.wireload, self.constraints,
                    max_rounds=30, scan=40,
                )
                if self.constraints.max_area is not None:
                    self._optimize(
                        "recover_area", recover_area,
                        netlist, self.library, self.wireload, self.constraints,
                    )
                self.pass_log.append("compile -incremental")
                return self._compile_summary()
        with obs.span("synth.compile", effort=effort):
            with obs.span("synth.techmap"):
                map_to_library(netlist, self.library)
                cleanup(netlist, self.library, flatten=self.flatten)
            self.pass_log.append(f"compile -map_effort {effort}")
            if effort == "high":
                self._optimize(
                    "resynthesize_adders", resynthesize_adders, netlist, self.library
                )
                self._optimize("balance_chains", balance_chains, netlist, self.library)
                with obs.span("synth.techmap"):
                    cleanup(netlist, self.library, flatten=self.flatten)
                    map_to_library(netlist, self.library)
                self._optimize(
                    "size_gates", size_gates,
                    netlist, self.library, self.wireload, self.constraints,
                    max_rounds=25,
                )
            if self.constraints.max_fanout:
                self._optimize(
                    "buffer_high_fanout", buffer_high_fanout,
                    netlist, self.library, self.wireload, self.constraints,
                )
            if self.constraints.max_area is not None:
                with obs.span("synth.techmap", complex_gates=True):
                    map_complex_gates(netlist, self.library)
                if effort != "high":
                    self._optimize(
                        "recover_area", recover_area,
                        netlist, self.library, self.wireload, self.constraints,
                    )
            self.compiled = True
            return self._compile_summary()

    def _cmd_compile_ultra(self, args: list[str]) -> str:
        netlist = self._require_design("compile_ultra")
        _, _, flags = self._parse_options(args, set())
        if "no_autoungroup" not in flags:
            self.flatten = True
        with obs.span("synth.compile", ultra=True, retime="retime" in flags):
            with obs.span("synth.techmap"):
                map_to_library(netlist, self.library)
            self._optimize(
                "resynthesize_adders", resynthesize_adders, netlist, self.library
            )
            with obs.span("synth.techmap"):
                cleanup(netlist, self.library, flatten=self.flatten)
            self._optimize("balance_chains", balance_chains, netlist, self.library)
            with obs.span("synth.techmap"):
                cleanup(netlist, self.library, flatten=self.flatten)
                map_to_library(netlist, self.library)
            self.pass_log.append(
                "compile_ultra" + (" -retime" if "retime" in flags else "")
            )
            if "retime" in flags:
                self._optimize(
                    "retime", retime,
                    netlist, self.library, self.wireload, self.constraints,
                )
            self._optimize(
                "size_gates", size_gates,
                netlist, self.library, self.wireload, self.constraints, max_rounds=60,
            )
            self._optimize(
                "buffer_high_fanout", buffer_high_fanout,
                netlist, self.library, self.wireload, self.constraints,
                max_fanout=self.constraints.max_fanout or 24,
            )
            self._optimize(
                "size_gates", size_gates,
                netlist, self.library, self.wireload, self.constraints, max_rounds=30,
            )
            if self.constraints.max_area is not None:
                self._optimize(
                    "recover_area", recover_area,
                    netlist, self.library, self.wireload, self.constraints,
                )
            self.compiled = True
            return self._compile_summary()

    def _cmd_optimize_registers(self, args: list[str]) -> str:
        netlist = self._require_design("optimize_registers")
        result = self._optimize(
            "retime", retime, netlist, self.library, self.wireload, self.constraints
        )
        self.pass_log.append("optimize_registers")
        return (
            f"retiming: {result.changes} moves, "
            f"slack {result.wns_before:.3f} -> {result.wns_after:.3f}"
        )

    def _cmd_balance_buffer(self, args: list[str]) -> str:
        netlist = self._require_design("balance_buffer")
        options, _, _ = self._parse_options(args, {"max_fanout"})
        limit = int(options.get("max_fanout", self.constraints.max_fanout or 12))
        result = self._optimize(
            "buffer_high_fanout", buffer_high_fanout,
            netlist, self.library, self.wireload, self.constraints, max_fanout=limit,
        )
        self.pass_log.append("balance_buffer")
        return f"buffering: {result.changes} buffers inserted"

    def _cmd_explore_sizing(self, args: list[str]) -> str:
        netlist = self._require_design("explore_sizing")
        options, _, _ = self._parse_options(
            args, {"budget", "seed", "chains", "max_gates", "derate"}
        )
        kwargs = {}
        if "budget" in options:
            kwargs["budget"] = int(options["budget"])
        if "seed" in options:
            kwargs["seed"] = int(options["seed"])
        if "chains" in options:
            kwargs["chains"] = int(options["chains"])
        if "max_gates" in options:
            kwargs["max_gates"] = int(options["max_gates"])
        if "derate" in options:
            kwargs["derate"] = float(options["derate"])
        result = self._optimize(
            "explore_sizing", explore_sizing,
            netlist, self.library, self.wireload, self.constraints, **kwargs,
        )
        self.pass_log.append("explore_sizing")
        return (
            f"exploration: {result.changes} cells resized, "
            f"slack {result.wns_before:.3f} -> {result.wns_after:.3f}, "
            f"area {result.area_before:.1f} -> {result.area_after:.1f}"
        )

    def _compile_summary(self) -> str:
        qor = self.qor()
        return (
            f"Optimization complete: area={qor.area:.1f} "
            f"wns={qor.wns:.3f} tns={qor.tns:.3f}"
        )

    def _cmd_report_timing(self, args: list[str]) -> str:
        self._require_design("report_timing")
        return self.timing_report()

    def _cmd_report_area(self, args: list[str]) -> str:
        self._require_design("report_area")
        return render_area_report(self.design_name or "?", self._engine())

    def _cmd_report_qor(self, args: list[str]) -> str:
        self._require_design("report_qor")
        return render_qor_report(self.qor())

    def _cmd_report_power(self, args: list[str]) -> str:
        self._require_design("report_power")
        from .power import PowerAnalyzer

        analyzer = PowerAnalyzer(
            self.netlist, self.library, self.wireload, self.constraints
        )
        return analyzer.analyze().render(self.design_name or "?")

    def _cmd_write(self, args: list[str]) -> str:
        """``write -format verilog``: emit the gate-level netlist."""
        self._require_design("write")
        options, _, _ = self._parse_options(args, {"format", "output"})
        fmt = options.get("format", "verilog")
        if fmt != "verilog":
            raise DCShellError(f"write: unsupported format {fmt!r}")
        from ..hdl.writer import write_verilog

        self.last_written = write_verilog(self.netlist, self.design_name)
        return f"wrote {len(self.last_written)} bytes of structural verilog"
