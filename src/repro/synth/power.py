"""Activity-propagation power analysis (the PrimePower-flavoured extension).

The paper's future work points at coupling the flow with power signoff
(PrimePower [52]).  This module implements the classical static approach:

* **signal probability** P(net = 1) propagated through gate functions
  (inputs assumed independent — the standard first-order approximation);
* **transition density** D(net) in transitions/cycle, propagated via the
  Boolean-difference rule  D(out) = sum_i P(dOut/dIn_i) * D(in_i)
  approximated per gate type;
* **dynamic power** per net: 0.5 * C_load * Vdd^2 * f * D(net);
* **internal + leakage power** per cell from the library.

Registers reset probabilities to their D-input steady state and emit one
output transition per input transition capped at 1/cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import perf
from ..hdl.netlist import Cell, Netlist
from . import soa
from .library import TechLibrary
from .sdc import Constraints
from .timing import TimingEngine
from .wireload import WireLoadModel

__all__ = ["PowerReport", "PowerAnalyzer"]


@dataclass
class PowerReport:
    """Design-level power summary (uW unless noted)."""

    dynamic_uw: float
    internal_uw: float
    leakage_uw: float
    clock_tree_uw: float
    net_activities: dict[str, float] = field(default_factory=dict)

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.internal_uw + self.leakage_uw + self.clock_tree_uw

    def render(self, design: str) -> str:
        lines = [
            "****************************************",
            "Report : power (activity propagation)",
            f"Design : {design}",
            "****************************************",
            "",
            f"  Net Switching Power:   {self.dynamic_uw:>12.2f} uW",
            f"  Cell Internal Power:   {self.internal_uw:>12.2f} uW",
            f"  Cell Leakage Power:    {self.leakage_uw:>12.2f} uW",
            f"  Clock Tree Power:      {self.clock_tree_uw:>12.2f} uW",
            f"  Total Power:           {self.total_uw:>12.2f} uW",
        ]
        return "\n".join(lines)


# P(out=1) for each gate given input 1-probabilities.
def _prob_out(gate: str, p: list[float]) -> float:
    if gate == "CONST0":
        return 0.0
    if gate == "CONST1":
        return 1.0
    if gate == "BUF":
        return p[0]
    if gate == "NOT":
        return 1.0 - p[0]
    if gate == "AND2":
        return p[0] * p[1]
    if gate == "NAND2":
        return 1.0 - p[0] * p[1]
    if gate == "OR2":
        return 1.0 - (1 - p[0]) * (1 - p[1])
    if gate == "NOR2":
        return (1 - p[0]) * (1 - p[1])
    if gate in ("XOR2", "XNOR2"):
        x = p[0] * (1 - p[1]) + (1 - p[0]) * p[1]
        return x if gate == "XOR2" else 1.0 - x
    if gate == "MUX2":
        sel, a, b = p
        return (1 - sel) * a + sel * b
    if gate == "AOI21":
        return (1 - p[0] * p[1]) * (1 - p[2])
    if gate == "OAI21":
        return 1 - (1 - (1 - p[0]) * (1 - p[1])) * p[2]
    if gate == "DFF":
        return p[0]
    raise ValueError(f"unknown gate {gate!r}")


# Boolean-difference sensitivities: probability that a transition on input
# i propagates to the output.
def _sensitivities(gate: str, p: list[float]) -> list[float]:
    if gate in ("CONST0", "CONST1"):
        return []
    if gate in ("BUF", "NOT", "DFF"):
        return [1.0]
    if gate in ("AND2", "NAND2"):
        return [p[1], p[0]]
    if gate in ("OR2", "NOR2"):
        return [1 - p[1], 1 - p[0]]
    if gate in ("XOR2", "XNOR2"):
        return [1.0, 1.0]
    if gate == "MUX2":
        sel, a, b = p
        # sel toggles propagate when a != b; data propagates when selected.
        return [a * (1 - b) + (1 - a) * b, 1 - sel, sel]
    if gate == "AOI21":
        return [p[1] * (1 - p[2]), p[0] * (1 - p[2]), 1 - p[0] * p[1]]
    if gate == "OAI21":
        return [(1 - p[1]) * p[2], (1 - p[0]) * p[2], 1 - (1 - p[0]) * (1 - p[1])]
    raise ValueError(f"unknown gate {gate!r}")


class PowerAnalyzer:
    """Static power analysis over a mapped netlist."""

    def __init__(
        self,
        netlist: Netlist,
        library: TechLibrary,
        wireload: WireLoadModel,
        constraints: Constraints,
        voltage: float = 1.1,
        internal_energy_fj: float = 0.8,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.wireload = wireload
        self.constraints = constraints
        self.voltage = voltage
        self.internal_energy_fj = internal_energy_fj
        self._engine = TimingEngine(netlist, library, wireload, constraints)
        self._use_vector = soa.vector_sta_enabled()

    def analyze(
        self,
        input_probability: float = 0.5,
        input_activity: float = 0.2,
    ) -> PowerReport:
        """Propagate probabilities/activities and integrate power.

        Args:
            input_probability: P(=1) assumed at primary inputs.
            input_activity: transitions per cycle at primary inputs.
        """
        if self._use_vector:
            return self._analyze_vector(input_probability, input_activity)
        prob: dict[str, float] = {}
        act: dict[str, float] = {}
        for name in self.netlist.primary_inputs:
            net = self.netlist.nets[name]
            if net.is_clock:
                prob[name] = 0.5
                act[name] = 2.0  # two edges per cycle
            else:
                prob[name] = input_probability
                act[name] = input_activity
        # Registers first: their outputs are sources for the comb cone.
        # Iterate twice so reg->comb->reg probability reaches fixpoint-ish;
        # when the second register sweep changes nothing, the combinational
        # values are already a pure function of unchanged sources, so the
        # second comb sweep would reproduce every value — skip it.
        for iteration in range(2):
            changed = False
            for cell in self.netlist.cells.values():
                if cell.is_sequential:
                    d = cell.inputs[0]
                    p_new = prob.get(d, input_probability)
                    a_new = min(act.get(d, input_activity), 1.0)
                    q = cell.output
                    if prob.get(q) != p_new or act.get(q) != a_new:
                        changed = True
                        prob[q] = p_new
                        act[q] = a_new
            if iteration and not changed:
                perf.incr("power.fixpoint_early_exit")
                break
            for cell in self.netlist.topological_cells():
                p_in = [prob.get(n, input_probability) for n in cell.inputs]
                a_in = [act.get(n, input_activity) for n in cell.inputs]
                prob[cell.output] = _prob_out(cell.gate, p_in)
                sens = _sensitivities(cell.gate, p_in)
                act[cell.output] = min(
                    sum(s * a for s, a in zip(sens, a_in)), 4.0
                )

        freq_ghz = 1.0 / max(self.constraints.clock_period, 1e-9)
        v2 = self.voltage**2
        dynamic = 0.0
        internal = 0.0
        leakage = 0.0
        clock_tree = 0.0
        for name, net in self.netlist.nets.items():
            cap_ff = self._engine.net_load(name)
            activity = act.get(name, 0.0)
            # 0.5 * C[fF] * V^2 * f[GHz] * D  -> uW
            energy = 0.5 * cap_ff * v2 * freq_ghz * activity
            if net.is_clock:
                clock_tree += energy
            else:
                dynamic += energy
        for cell in self.netlist.cells.values():
            if cell.gate in ("CONST0", "CONST1"):
                continue
            lib = self._engine._bound_cell(cell)
            leakage += lib.leakage / 1000.0  # nW -> uW
            activity = act.get(cell.output, 0.0)
            internal += self.internal_energy_fj * lib.drive * activity * freq_ghz
        return PowerReport(
            dynamic_uw=round(dynamic, 3),
            internal_uw=round(internal, 3),
            leakage_uw=round(leakage, 3),
            clock_tree_uw=round(clock_tree, 3),
            net_activities=act,
        )

    def _analyze_vector(
        self, input_probability: float, input_activity: float
    ) -> PowerReport:
        """SoA fast path: activity propagation and integration on arrays.

        Activities are bit-identical to the scalar sweep (same expressions,
        same register-sweep order); whole-design sums may differ at float
        rounding level under numpy's pairwise summation, which the report's
        3-decimal rounding absorbs.
        """
        kernel = soa.SoAKernel(
            self.netlist, self.library, self.wireload, self.constraints
        )
        dynamic, internal, leakage, clock_tree, activities = soa.vector_power(
            kernel,
            input_probability,
            input_activity,
            self.voltage,
            self.internal_energy_fj,
        )
        return PowerReport(
            dynamic_uw=round(dynamic, 3),
            internal_uw=round(internal, 3),
            leakage_uw=round(leakage, 3),
            clock_tree_uw=round(clock_tree, 3),
            net_activities=activities,
        )
