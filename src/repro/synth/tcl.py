"""Minimal Tcl interpreter for Design-Compiler-style synthesis scripts.

Supports the script constructs our flows emit:

* one command per line (or ``;``-separated), ``#`` comments
* ``set var value`` and ``$var`` / ``${var}`` substitution
* ``[command ...]`` command substitution
* ``"..."`` quoting (with substitution) and ``{...}`` literal grouping
* line continuation with a trailing backslash

Commands dispatch to Python callables registered in a
:class:`TclInterpreter`; unknown commands raise :class:`TclError`, which is
how non-executable (hallucinated) scripts are detected.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["TclError", "TclInterpreter"]


class TclError(ValueError):
    """Raised on syntax errors or unknown commands."""


CommandFunc = Callable[["TclInterpreter", list[str]], str]


class TclInterpreter:
    """Evaluate Tcl-subset scripts against a registry of commands."""

    def __init__(self) -> None:
        self.variables: dict[str, str] = {}
        self.commands: dict[str, CommandFunc] = {}
        self.register("set", _cmd_set)
        self.register("puts", _cmd_puts)
        self.register("expr", _cmd_expr)
        self.output: list[str] = []

    def register(self, name: str, func: CommandFunc) -> None:
        self.commands[name] = func

    # -- script evaluation ------------------------------------------------------

    def eval_script(self, script: str) -> list[tuple[str, str]]:
        """Run ``script``; returns a list of (command line, result) pairs."""
        results = []
        for line in self._logical_lines(script):
            result = self.eval_line(line)
            results.append((line, result))
        return results

    def _logical_lines(self, script: str) -> list[str]:
        merged: list[str] = []
        pending = ""
        for raw in script.splitlines():
            line = raw.rstrip()
            if line.endswith("\\"):
                pending += line[:-1] + " "
                continue
            pending += line
            for part in self._split_semicolons(pending):
                part = part.strip()
                if part and not part.startswith("#"):
                    merged.append(part)
            pending = ""
        if pending.strip() and not pending.strip().startswith("#"):
            merged.append(pending.strip())
        return merged

    @staticmethod
    def _split_semicolons(line: str) -> list[str]:
        parts = []
        depth = 0
        current = ""
        in_quote = False
        for ch in line:
            if ch == '"' and depth == 0:
                in_quote = not in_quote
            elif ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
            if ch == ";" and depth == 0 and not in_quote:
                parts.append(current)
                current = ""
            else:
                current += ch
        parts.append(current)
        return parts

    def eval_line(self, line: str) -> str:
        words = self._parse_words(line)
        if not words:
            return ""
        name, args = words[0], words[1:]
        if name not in self.commands:
            raise TclError(f"invalid command name {name!r}")
        return self.commands[name](self, args)

    # -- word parsing with substitution --------------------------------------------

    def _parse_words(self, line: str) -> list[str]:
        words: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            while i < n and line[i] in " \t":
                i += 1
            if i >= n:
                break
            if line[i] == "{":
                word, i = self._read_braced(line, i)
                words.append(word)  # literal, no substitution
            elif line[i] == '"':
                word, i = self._read_quoted(line, i)
                words.append(self._substitute(word))
            else:
                j = i
                depth = 0
                while j < n and (depth > 0 or line[j] not in " \t"):
                    if line[j] == "[":
                        depth += 1
                    elif line[j] == "]":
                        depth -= 1
                    j += 1
                words.append(self._substitute(line[i:j]))
                i = j
        return words

    @staticmethod
    def _read_braced(line: str, start: int) -> tuple[str, int]:
        depth = 0
        for j in range(start, len(line)):
            if line[j] == "{":
                depth += 1
            elif line[j] == "}":
                depth -= 1
                if depth == 0:
                    return line[start + 1 : j], j + 1
        raise TclError("unmatched brace")

    @staticmethod
    def _read_quoted(line: str, start: int) -> tuple[str, int]:
        for j in range(start + 1, len(line)):
            if line[j] == '"' and line[j - 1] != "\\":
                return line[start + 1 : j], j + 1
        raise TclError("unmatched quote")

    def _substitute(self, text: str) -> str:
        result = ""
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch == "$":
                if i + 1 < n and text[i + 1] == "{":
                    end = text.find("}", i + 2)
                    if end == -1:
                        raise TclError("unmatched ${")
                    name = text[i + 2 : end]
                    result += self._lookup(name)
                    i = end + 1
                else:
                    j = i + 1
                    while j < n and (text[j].isalnum() or text[j] == "_"):
                        j += 1
                    if j == i + 1:
                        result += ch
                        i += 1
                        continue
                    result += self._lookup(text[i + 1 : j])
                    i = j
            elif ch == "[":
                depth = 1
                j = i + 1
                while j < n and depth:
                    if text[j] == "[":
                        depth += 1
                    elif text[j] == "]":
                        depth -= 1
                    j += 1
                if depth:
                    raise TclError("unmatched bracket")
                result += self.eval_line(text[i + 1 : j - 1])
                i = j
            else:
                result += ch
                i += 1
        return result

    def _lookup(self, name: str) -> str:
        if name not in self.variables:
            raise TclError(f"can't read {name!r}: no such variable")
        return self.variables[name]


def _cmd_set(interp: TclInterpreter, args: list[str]) -> str:
    if len(args) == 1:
        return interp._lookup(args[0])
    if len(args) == 2:
        interp.variables[args[0]] = args[1]
        return args[1]
    raise TclError("usage: set var ?value?")


def _cmd_puts(interp: TclInterpreter, args: list[str]) -> str:
    text = args[-1] if args else ""
    interp.output.append(text)
    return ""


def _cmd_expr(interp: TclInterpreter, args: list[str]) -> str:
    expression = " ".join(args)
    allowed = set("0123456789.+-*/() <>=!&|")
    if not set(expression) <= allowed:
        raise TclError(f"expr: unsupported expression {expression!r}")
    try:
        value = eval(expression, {"__builtins__": {}}, {})  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise TclError(f"expr failed: {exc}") from exc
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
