"""Statistical design-space explorer: annealed multi-gate sizing.

The greedy passes in :mod:`repro.synth.optimizer` move one gate at a
time and only ever accept improvements — they stop at the nearest local
optimum.  This module searches the sizing design space statistically,
in the style of perturbation-driven STA exploration: randomized
**multi-gate** move sets (several cells rebound to different drive
strengths per trial, drawn from the per-library neighbor tables of
:func:`repro.synth.passes.sizing_neighbors`), a simulated-annealing
acceptance rule with geometric cooling and restart schedules, and a
parallel multi-start driver that fans independent seeded chains across
:mod:`repro.parallel` and reduces them with an order-independent
best-of.

Scoring rides the batched trial kernels: each proposal batch is one
side-effect-free :meth:`TimingEngine.trial_metrics_batch` sweep — a
grouped 2-D cone-restricted kernel evaluating every move set at once.
``REPRO_EXPLORE=0`` switches to the scalar lane fallback (each move set
committed on the netlist's scratch journal, measured, reverted), which
is bit-exact with the grouped path by the kernel's parity contract: the
same RNG draws meet the same verdicts, so the accepted-move sequence,
the final netlist and the QoR are identical in both modes.

Determinism: every random draw comes from a :func:`repro.rand.rng`
stream keyed by ``(seed, "explore", chain_index)``; chains never touch
shared mutable state (each runs on its own netlist clone); and the
multi-start reduction picks the winner by ``(cost, chain_index)``, so
results are bit-identical for a given seed set regardless of backend
(thread vs process) or completion order.  The returned state is the
best *visited* state under the lexicographic ``(timing violation,
area)`` key — the initial state is in the visited set, so the pass
never worsens QoR.

Environment:

* ``REPRO_EXPLORE`` — grouped-kernel scoring (default on; ``0`` = the
  scalar scratch-journal lane fallback).
* ``REPRO_EXPLORE_CHAINS`` — default multi-start width (default 2).
* ``REPRO_EXPLORE_BUDGET`` — default move-set trials per chain
  (default 240).
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass

from .. import obs, perf
from ..hdl.netlist import Netlist
from ..parallel import (
    effective_backend,
    parallel_map,
    release_shared,
    resolve_shared,
    shared,
)
from ..rand import rng as _stream_rng
from .library import TechLibrary
from .optimizer import PassResult, _context, _timed
from .passes import PassContext, sizing_neighbors
from .sdc import Constraints
from .wireload import WireLoadModel

__all__ = [
    "ExploreConfig",
    "ChainResult",
    "explore_enabled",
    "default_chains",
    "default_budget",
    "anneal_chain",
    "explore_sizing",
]


def explore_enabled() -> bool:
    """Whether grouped-kernel trial scoring is active (``REPRO_EXPLORE``)."""
    return os.environ.get("REPRO_EXPLORE", "1").lower() not in (
        "0", "false", "no", "off",
    )


def default_chains() -> int:
    """Multi-start width when unspecified (``REPRO_EXPLORE_CHAINS``)."""
    return max(1, int(os.environ.get("REPRO_EXPLORE_CHAINS", "2")))


def default_budget() -> int:
    """Move-set trials per chain when unspecified (``REPRO_EXPLORE_BUDGET``)."""
    return max(1, int(os.environ.get("REPRO_EXPLORE_BUDGET", "240")))


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs for one exploration run.

    ``budget`` counts move-set trials per chain; ``max_gates`` bounds the
    gates rebound per move set; ``batch`` is the trial lanes per kernel
    sweep.  ``t0``/``cooling`` drive the geometric annealing schedule and
    ``restarts`` resets the temperature that many extra times across the
    budget (each restart re-seeds the walk from the best state seen).
    ``derate`` adds a pessimism margin (ns): slack below it counts as a
    timing violation while scoring.  ``crit_bias`` is the probability a
    move slot targets the current critical path while timing is
    violated; ``dir_bias`` is the probability the drive choice follows
    the helpful direction (stronger on the critical path, weaker for
    area recovery once timing is met).  ``None`` for ``budget`` /
    ``chains`` / ``grouped`` defers to the environment at
    :meth:`resolved` time.
    """

    budget: int | None = None
    chains: int | None = None
    seed: int = 0
    max_gates: int = 4
    batch: int = 16
    t0: float = 2.0
    cooling: float = 0.92
    restarts: int = 1
    derate: float = 0.0
    timing_weight: float = 1000.0
    crit_bias: float = 0.75
    dir_bias: float = 0.75
    grouped: bool | None = None

    def resolved(self) -> "ExploreConfig":
        """Env defaults latched into concrete values (parent-side)."""
        return dataclasses.replace(
            self,
            budget=self.budget if self.budget is not None else default_budget(),
            chains=self.chains if self.chains is not None else default_chains(),
            grouped=self.grouped if self.grouped is not None else explore_enabled(),
        )


@dataclass(frozen=True)
class ChainResult:
    """Outcome of one annealing chain (deterministic per seed).

    ``cost`` is the lexicographic ``(timing violation, area)`` key of the
    best visited state and ``bindings`` maps only the cells whose library
    binding differs from the chain's start state (empty = no improvement
    found).  Wall-clock never appears here so results compare bit-equal
    across backends.
    """

    chain: int
    cost: tuple[float, float]
    cps: float
    area: float
    bindings: dict[str, str]
    trials: int
    accepted: int
    committed_gates: int
    batch_sizes: tuple[int, ...]
    grouped: bool


def _qor_key(cps: float, area: float, config: ExploreConfig) -> tuple[float, float]:
    """Lexicographic QoR order: close timing (above the derate) first."""
    return (max(0.0, config.derate - cps), area)


def _scalar_cost(cps: float, area: float, config: ExploreConfig) -> float:
    """Scalar annealing energy: weighted violation plus area."""
    return max(0.0, config.derate - cps) * config.timing_weight + area


def _directional(library: TechLibrary) -> dict[str, tuple[tuple, tuple]]:
    """``{lib_cell name -> (weaker names, stronger names)}`` per library."""
    neighbors = sizing_neighbors(library)
    table = {}
    for name, options in neighbors.items():
        drive = library.cell(name).drive
        weaker = tuple(o for o in options if library.cell(o).drive < drive)
        stronger = tuple(o for o in options if library.cell(o).drive > drive)
        table[name] = (weaker, stronger)
    return table


def _critical_pool(engine, sizable_set) -> tuple:
    """Sizable cells on the current critical path, path order."""
    report = engine.analyze(with_paths=True)
    path = report.critical_path
    if path is None:
        return ()
    return tuple(
        point.cell for point in path.points if point.cell in sizable_set
    )


def _propose(rng, cells, sizable, pool, pool_set, neighbors, directional,
             violated, config):
    """One randomized multi-gate move set against the current bindings.

    Slot draws bias toward the critical pool while timing is violated
    (``crit_bias``) and toward the helpful drive direction
    (``dir_bias``): stronger variants for critical cells under
    violation, weaker variants anywhere once timing is met.  Every draw
    comes from the chain's private stream, so the proposal sequence is
    deterministic per seed in both scoring modes.
    """
    width = min(len(sizable), 1 + rng.randrange(max(1, config.max_gates)))
    chosen: dict[str, str] = {}
    attempts = 0
    while len(chosen) < width and attempts < width * 8:
        attempts += 1
        if violated and pool and rng.random() < config.crit_bias:
            name = pool[rng.randrange(len(pool))]
        else:
            name = sizable[rng.randrange(len(sizable))]
        if name in chosen:
            continue
        current = cells[name].lib_cell
        weaker, stronger = directional[current]
        options = neighbors[current]
        if violated:
            if name in pool_set and stronger and rng.random() < config.dir_bias:
                options = stronger
        elif weaker and rng.random() < config.dir_bias:
            options = weaker
        chosen[name] = options[rng.randrange(len(options))]
    return sorted(chosen.items())


def _score_batch(engine, lanes, grouped):
    """``(cps, area)`` per lane — grouped kernel sweep or scalar fallback.

    The fallback commits each move set on the netlist's change journal,
    measures, and reverts (the reverts fold into the next evaluation);
    entry ``i`` is bit-identical to the grouped path by the kernel's
    parity contract.
    """
    if grouped:
        return engine.trial_metrics_batch(lanes)
    cells = engine.netlist.cells
    out = []
    for lane in lanes:
        perf.incr("sta.trial")
        previous = [(cells[name], cells[name].lib_cell) for name, _ in lane]
        for name, lib_name in lane:
            cells[name].lib_cell = lib_name
        out.append((engine.trial_cps(), engine.total_area()))
        for cell, prev in previous:
            cell.lib_cell = prev
    return out


def anneal_chain(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    config: ExploreConfig,
    chain_index: int = 0,
    context: PassContext | None = None,
) -> ChainResult:
    """Run one simulated-annealing chain **in place** on ``netlist``.

    Callers that must preserve the input netlist pass a clone (the
    multi-start driver does).  The walk proposes batches of multi-gate
    move sets, scores each batch in one grouped trial sweep, commits the
    first Metropolis-accepted move set of the batch and discards the
    rest (their verdicts were measured against the pre-commit state).
    Restarts re-seed the walk from the best visited state.  Returns the
    best visited state under ``(violation, area)`` — which includes the
    start state, so a chain never reports a regression.
    """
    config = config.resolved()
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    grouped = bool(config.grouped)
    neighbors = sizing_neighbors(library)
    cells = netlist.cells
    sizable = [
        name
        for name, cell in cells.items()
        if cell.lib_cell is not None and neighbors.get(cell.lib_cell)
    ]
    cur_cps = engine.trial_cps()
    cur_area = engine.total_area()
    start_bindings = {name: cells[name].lib_cell for name in sizable}
    best_key = _qor_key(cur_cps, cur_area, config)
    best_state = (cur_cps, cur_area, {})
    if not sizable:
        return ChainResult(
            chain=chain_index, cost=best_key, cps=cur_cps, area=cur_area,
            bindings={}, trials=0, accepted=0, committed_gates=0,
            batch_sizes=(), grouped=grouped,
        )

    rng = _stream_rng(config.seed, "explore", chain_index)
    directional = _directional(library)
    sizable_set = frozenset(sizable)
    pool = _critical_pool(engine, sizable_set)
    pool_set = frozenset(pool)
    trials = accepted = committed = 0
    batch_sizes: list[int] = []
    temperature = config.t0
    segment = max(1, -(-config.budget // (config.restarts + 1)))  # ceil div
    while trials < config.budget:
        width = min(config.batch, config.budget - trials)
        violated = cur_cps < config.derate
        with perf.timer("explore.propose"):
            moves = [
                _propose(
                    rng, cells, sizable, pool, pool_set, neighbors,
                    directional, violated, config,
                )
                for _ in range(width)
            ]
        batch_sizes.append(width)
        with perf.timer("explore.score"):
            verdicts = _score_batch(engine, moves, grouped)
        previous_trials = trials
        trials += width
        perf.incr("explore.moves", width)
        cur_cost = _scalar_cost(cur_cps, cur_area, config)
        pick = None
        for lane_index, (cps, area) in enumerate(verdicts):
            candidate = _scalar_cost(cps, area, config)
            if candidate <= cur_cost:
                pick = lane_index
                break
            if temperature > 0.0 and rng.random() < math.exp(
                -(candidate - cur_cost) / temperature
            ):
                pick = lane_index
                break
        if pick is not None:
            accepted += 1
            perf.incr("explore.accepted")
            for name, lib_name in moves[pick]:
                cells[name].lib_cell = lib_name
                committed += 1
            # The lane verdict is bit-identical to committing it and
            # re-analyzing, so the committed state needs no re-measure.
            cur_cps, cur_area = verdicts[pick]
            # The critical path may have moved; re-aim the proposal bias.
            pool = _critical_pool(engine, sizable_set)
            pool_set = frozenset(pool)
            key = _qor_key(cur_cps, cur_area, config)
            if key < best_key:
                best_key = key
                best_state = (
                    cur_cps, cur_area,
                    {
                        name: cells[name].lib_cell
                        for name in sizable
                        if cells[name].lib_cell != start_bindings[name]
                    },
                )
        temperature *= config.cooling
        if (
            trials < config.budget
            and trials // segment > previous_trials // segment
        ):
            # Restart: reset the temperature, rewind to the best state.
            temperature = config.t0
            best_cps, best_area, best_bindings = best_state
            for name in sizable:
                want = best_bindings.get(name, start_bindings[name])
                if cells[name].lib_cell != want:
                    cells[name].lib_cell = want
            cur_cps, cur_area = best_cps, best_area
            pool = _critical_pool(engine, sizable_set)
            pool_set = frozenset(pool)
    best_cps, best_area, best_bindings = best_state
    return ChainResult(
        chain=chain_index,
        cost=best_key,
        cps=best_cps,
        area=best_area,
        bindings=dict(best_bindings),
        trials=trials,
        accepted=accepted,
        committed_gates=committed,
        batch_sizes=tuple(batch_sizes),
        grouped=grouped,
    )


def _chain_task(task) -> ChainResult:
    """One multi-start chain (module-level so process workers can run it)."""
    ref, config, chain_index = task
    netlist, library, wireload, constraints = resolve_shared(ref)
    local = netlist.clone()
    with obs.span("explore.chain", chain=chain_index):
        return anneal_chain(
            local, library, wireload, constraints, config, chain_index
        )


def run_chains(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    config: ExploreConfig,
    jobs: int | None = None,
) -> list[ChainResult]:
    """Fan ``config.chains`` independent seeded chains across the pool.

    The design payload rides the ``SharedRef`` transport (one shm
    serialization under the process backend, a no-op under threads);
    each chain clones the netlist so the input is never mutated.
    Results come back in chain order — bit-identical across backends.
    """
    config = config.resolved()
    backend = effective_backend(jobs=jobs, items=config.chains)
    ref = shared((netlist, library, wireload, constraints), backend=backend)
    tasks = [(ref, config, index) for index in range(config.chains)]
    try:
        results = parallel_map(_chain_task, tasks, jobs=jobs, label="explore")
    finally:
        release_shared(ref)
    return [result for result in results if result is not None]


def reduce_chains(results: list[ChainResult]) -> ChainResult | None:
    """Order-independent best-of: min by ``(cost, chain_index)``."""
    best = None
    for result in results:
        if best is None or (result.cost, result.chain) < (best.cost, best.chain):
            best = result
    return best


#: Buckets for the per-chain proposal-batch width histogram.
_EXPLORE_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _record_metrics(results: list[ChainResult]) -> None:
    """Publish run totals on the live metrics endpoint (parent-side)."""
    from ..obs import metrics

    moves = sum(result.trials for result in results)
    accepted = sum(result.accepted for result in results)
    metrics.counter(
        "repro_explore_moves_total",
        "Move-set trials evaluated by the design-space explorer",
    ).inc(moves)
    if moves:
        metrics.gauge(
            "repro_explore_acceptance_ratio",
            "Accepted / proposed move sets in the latest exploration run",
        ).set(accepted / moves)
    hist = metrics.histogram(
        "repro_explore_batch_size",
        "Proposal-batch widths per explorer chain",
        buckets=_EXPLORE_BATCH_BUCKETS,
    )
    for result in results:
        for width in result.batch_sizes:
            hist.observe(float(width), chain=str(result.chain))


@_timed
def explore_sizing(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    budget: int | None = None,
    seed: int = 0,
    chains: int | None = None,
    max_gates: int = 4,
    batch: int = 16,
    t0: float = 2.0,
    cooling: float = 0.92,
    restarts: int = 1,
    derate: float = 0.0,
    context: PassContext | None = None,
    jobs: int | None = None,
    config: ExploreConfig | None = None,
) -> PassResult:
    """Parallel multi-start annealed sizing as an optimization pass.

    Runs ``chains`` independent seeded annealing chains over clones of
    ``netlist`` (thread or process backend per ``REPRO_PARALLEL_BACKEND``),
    reduces them order-independently, and applies the winning bindings
    through the change journal — so a shared :class:`PassContext` engine
    folds the result incrementally like any other pass.  Because every
    chain's best-of includes its start state, the pass never worsens the
    lexicographic ``(timing violation, area)`` QoR of its input; run it
    after the greedy passes to claw back what they left on the table.
    """
    if config is None:
        config = ExploreConfig(
            budget=budget, chains=chains, seed=seed, max_gates=max_gates,
            batch=batch, t0=t0, cooling=cooling, restarts=restarts,
            derate=derate,
        )
    config = config.resolved()
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    report = engine.analyze(with_paths=False)
    wns_before = report.wns
    area_before = engine.total_area()
    with obs.span(
        "explore.run",
        chains=config.chains, budget=config.budget, grouped=config.grouped,
    ):
        results = run_chains(
            netlist, library, wireload, constraints, config, jobs=jobs
        )
        with perf.timer("explore.reduce"):
            best = reduce_chains(results)
        changes = 0
        if best is not None and best.bindings:
            cells = netlist.cells
            for name, lib_name in best.bindings.items():
                if cells[name].lib_cell != lib_name:
                    cells[name].lib_cell = lib_name
                    changes += 1
    _record_metrics(results)
    after = engine.analyze(with_paths=False)
    return PassResult(
        name="explore_sizing",
        changes=changes,
        wns_before=wns_before,
        wns_after=after.wns,
        area_before=area_before,
        area_after=engine.total_area(),
    )
