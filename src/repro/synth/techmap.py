"""Technology mapping and structural cleanup passes.

These passes operate in place on a :class:`~repro.hdl.netlist.Netlist`:

* :func:`map_to_library` — bind every generic gate to a library cell.
* :func:`merge_inverters` — NAND/NOR pattern absorption (AND+NOT -> NAND).
* :func:`remove_buffers` — collapse BUF cells and double inverters.
* :func:`propagate_constants` — fold gates with constant inputs.
* :func:`sweep_dead_cells` — drop logic with no path to any output.

Each returns the number of cells it changed/removed so callers can iterate
to a fixpoint.
"""

from __future__ import annotations

from .. import perf
from ..hdl.netlist import Netlist
from .library import TechLibrary

__all__ = [
    "map_to_library",
    "merge_inverters",
    "remove_buffers",
    "propagate_constants",
    "sweep_dead_cells",
    "share_logic",
    "map_complex_gates",
    "cleanup",
]


def map_to_library(netlist: Netlist, library: TechLibrary) -> int:
    """Bind each generic gate to the weakest drive variant of its function."""
    mapped = 0
    for cell in netlist.cells.values():
        if cell.gate in ("CONST0", "CONST1"):
            cell.lib_cell = None
            continue
        cell.lib_cell = library.weakest(cell.gate).name
        mapped += 1
    return mapped


def _replace_net_everywhere(netlist: Netlist, old: str, new: str) -> None:
    """Redirect all readers of ``old`` (sinks + output port) to ``new``."""
    old_net = netlist.nets[old]
    for sink_name in list(old_net.sinks):
        sink = netlist.cells[sink_name]
        if old in sink.inputs:
            netlist.rewire_input(sink_name, old, new)
        if sink.attrs.get("clock") == old:
            netlist.rewire_clock(sink_name, new)
    if old_net.is_output:
        # Keep the port net: drive it with a buffer from ``new`` instead.
        if old_net.driver is None:
            netlist.add_cell("BUF", [new], old)


def merge_inverters(netlist: Netlist, library: TechLibrary) -> int:
    """Absorb NOT cells into preceding AND2/OR2, forming NAND2/NOR2.

    Applied only when the AND/OR drives nothing but the inverter, so the
    merge is always a strict area/delay win.
    """
    merged = 0
    partner = {"AND2": "NAND2", "OR2": "NOR2", "NAND2": "AND2", "NOR2": "OR2",
               "XOR2": "XNOR2", "XNOR2": "XOR2"}
    for not_name in [n for n, c in netlist.cells.items() if c.gate == "NOT"]:
        not_cell = netlist.cells.get(not_name)
        if not_cell is None or not_cell.gate != "NOT":
            continue
        src_net = not_cell.inputs[0]
        driver = netlist.driver_cell(src_net)
        if driver is None or driver.gate not in partner:
            continue
        if netlist.fanout(src_net) != 1 or netlist.nets[src_net].is_output:
            continue
        new_gate = partner[driver.gate]
        if not library.variants(new_gate):
            continue
        out_net = not_cell.output
        inputs = list(driver.inputs)
        netlist.remove_cell(not_name)
        netlist.remove_cell(driver.name)
        cell = netlist.add_cell(new_gate, inputs, out_net)
        cell.lib_cell = library.weakest(new_gate).name
        merged += 1
    return merged


def remove_buffers(
    netlist: Netlist, keep_port_buffers: bool = True, flatten: bool = False
) -> int:
    """Collapse BUF cells (and INV pairs) by rewiring sinks to the source.

    Buffers driving primary outputs are kept when ``keep_port_buffers`` so
    port nets always have a driver.  Buffers inserted intentionally by
    fanout optimization (attr ``fanout_buffer``) are preserved; buffers
    marking hierarchy boundaries (attr ``hierarchy``) are preserved unless
    ``flatten`` is set — this is what ungroup/set_flatten buy you.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for name in [n for n, c in netlist.cells.items() if c.gate == "BUF"]:
            cell = netlist.cells.get(name)
            if cell is None:
                continue
            if cell.attrs.get("fanout_buffer"):
                continue
            if cell.attrs.get("hierarchy") and not flatten:
                continue
            out_net = netlist.nets[cell.output]
            if out_net.is_output and keep_port_buffers:
                continue
            src = cell.inputs[0]
            out = cell.output
            netlist.remove_cell(name)
            _replace_net_everywhere(netlist, out, src)
            removed += 1
            changed = True
    # NOT(NOT(x)) -> x
    for name in [n for n, c in netlist.cells.items() if c.gate == "NOT"]:
        outer = netlist.cells.get(name)
        if outer is None or outer.gate != "NOT":
            continue
        inner = netlist.driver_cell(outer.inputs[0])
        if inner is None or inner.gate != "NOT":
            continue
        out_net = netlist.nets[outer.output]
        if out_net.is_output:
            continue
        src = inner.inputs[0]
        out = outer.output
        netlist.remove_cell(name)
        _replace_net_everywhere(netlist, out, src)
        removed += 1
    return removed


def propagate_constants(netlist: Netlist) -> int:
    """Fold gates fed by CONST0/CONST1 drivers.  Iterates to fixpoint.

    Visits are worklist-driven: only cells with a constant-driven input or
    tied-together input pins can fold, and a cell only *becomes* foldable
    when a fold rewires one of its inputs — so the pending set is seeded
    from the constant drivers and refilled with the rewired readers of
    each fold.  The per-sweep walk still follows ``netlist.cells``
    insertion order, checking live pending membership, which reproduces
    the fold sequence of the original full rescan exactly (a rescan's
    visit to a non-pending cell was always a no-op): identical folds in
    identical order, hence identical generated net/cell names.  The
    number of cells actually visited lands on the
    ``techmap.const_cells_visited`` perf counter.
    """
    folded = 0
    visits = 0
    const_net = {}
    for cell in netlist.cells.values():
        if cell.gate == "CONST0":
            const_net[0] = cell.output
        elif cell.gate == "CONST1":
            const_net[1] = cell.output

    def value_of(net_name: str) -> int | None:
        driver = netlist.driver_cell(net_name)
        if driver is None:
            return None
        if driver.gate == "CONST0":
            return 0
        if driver.gate == "CONST1":
            return 1
        return None

    def ensure_const(value: int) -> str:
        if value not in const_net:
            net = netlist.add_net()
            netlist.add_cell("CONST1" if value else "CONST0", [], net.name)
            const_net[value] = net.name
        return const_net[value]

    pending: set[str] = set()
    for name, cell in netlist.cells.items():
        if cell.gate in ("CONST0", "CONST1", "DFF"):
            continue
        if len(cell.inputs) == 2 and cell.inputs[0] == cell.inputs[1]:
            pending.add(name)
        elif any(value_of(n) is not None for n in cell.inputs):
            pending.add(name)
    changed = True
    while changed and pending:
        changed = False
        for name in list(netlist.cells):
            if name not in pending:
                continue
            pending.discard(name)
            cell = netlist.cells.get(name)
            if cell is None or cell.gate in ("CONST0", "CONST1", "DFF"):
                continue
            if cell.attrs.get("port_tie"):
                continue  # constant tie driving a port: already final
            visits += 1
            vals = [value_of(n) for n in cell.inputs]
            same = len(cell.inputs) == 2 and cell.inputs[0] == cell.inputs[1]
            result = _fold(cell.gate, vals, same_inputs=same)
            if result is None:
                continue
            kind, payload = result
            out = cell.output
            pass_net = cell.inputs[payload] if kind in ("wire", "not") else None
            if netlist.nets[out].is_output:
                # Port nets must keep a driver; a constant result becomes a
                # BUF tie-off that is never re-folded (else the fold loop
                # would oscillate removing and re-adding it).
                netlist.remove_cell(name)
                if kind == "const":
                    netlist.add_cell(
                        "BUF", [ensure_const(payload)], out, port_tie=True
                    )
                else:
                    netlist.add_cell(
                        "BUF" if kind == "wire" else "NOT", [pass_net], out
                    )
                folded += 1
                changed = True
                continue
            # Readers about to be rewired may become foldable; queue them
            # before the rewire detaches them from this net.
            readers = list(netlist.nets[out].sinks)
            netlist.remove_cell(name)
            if kind == "const":
                source = ensure_const(payload)
            elif kind == "wire":
                source = pass_net
            else:  # "not"
                inv_net = netlist.add_net()
                netlist.add_cell("NOT", [pass_net], inv_net.name)
                source = inv_net.name
            _replace_net_everywhere(netlist, out, source)
            pending.update(readers)
            folded += 1
            changed = True
    perf.incr("techmap.const_cells_visited", visits)
    return folded


def _fold(gate: str, vals: list[int | None], same_inputs: bool = False):
    """Constant-folding rules; returns (kind, payload) or None."""
    if same_inputs:
        # Both pins tied to one net: idempotent/annihilating identities.
        identities = {
            "AND2": ("wire", 0),
            "OR2": ("wire", 0),
            "XOR2": ("const", 0),
            "XNOR2": ("const", 1),
            "NAND2": ("not", 0),
            "NOR2": ("not", 0),
        }
        if gate in identities:
            return identities[gate]
    known = [(i, v) for i, v in enumerate(vals) if v is not None]
    if not known:
        return None
    if all(v is not None for v in vals):
        table = {
            "NOT": lambda v: 1 - v[0],
            "BUF": lambda v: v[0],
            "AND2": lambda v: v[0] & v[1],
            "OR2": lambda v: v[0] | v[1],
            "NAND2": lambda v: 1 - (v[0] & v[1]),
            "NOR2": lambda v: 1 - (v[0] | v[1]),
            "XOR2": lambda v: v[0] ^ v[1],
            "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
            "MUX2": lambda v: v[2] if v[0] else v[1],
        }
        if gate in table:
            return ("const", table[gate](vals))
        return None
    idx, val = known[0]
    other = 1 - idx if gate != "MUX2" else None
    if gate == "AND2":
        return ("const", 0) if val == 0 else ("wire", other)
    if gate == "OR2":
        return ("const", 1) if val == 1 else ("wire", other)
    if gate == "NAND2":
        return ("const", 1) if val == 0 else ("not", other)
    if gate == "NOR2":
        return ("const", 0) if val == 1 else ("not", other)
    if gate == "XOR2":
        return ("wire", other) if val == 0 else ("not", other)
    if gate == "XNOR2":
        return ("not", other) if val == 0 else ("wire", other)
    if gate == "MUX2" and idx == 0:
        # select pin constant: pass through the chosen data pin
        return ("wire", 2 if val == 1 else 1)
    return None


def sweep_dead_cells(netlist: Netlist) -> int:
    """Remove cells whose outputs reach no primary output and no register."""
    # Liveness is the transitive fanin of the primary outputs; registers are
    # traversed like any other cell, so unread registers die too.
    live_nets: set[str] = set(netlist.primary_outputs)
    stack = list(live_nets)
    live_cells: set[str] = set()
    while stack:
        net_name = stack.pop()
        driver = netlist.nets[net_name].driver
        if driver is None or driver in live_cells:
            continue
        live_cells.add(driver)
        cell = netlist.cells[driver]
        for net_in in cell.inputs:
            stack.append(net_in)
        if "clock" in cell.attrs:
            stack.append(cell.attrs["clock"])
    dead = [name for name in netlist.cells if name not in live_cells]
    # Removal order: repeatedly drop cells whose output has no sinks.
    removed = 0
    dead_set = set(dead)
    progress = True
    while dead_set and progress:
        progress = False
        for name in list(dead_set):
            cell = netlist.cells[name]
            out_net = netlist.nets[cell.output]
            if not out_net.sinks and not out_net.is_output:
                netlist.remove_cell(name)
                dead_set.discard(name)
                removed += 1
                progress = True
    return removed


def map_complex_gates(netlist: Netlist, library: TechLibrary) -> int:
    """Merge AND/OR + inverting-gate pairs into AOI21/OAI21 complex cells.

    ``NOR2(AND2(a,b), c) -> AOI21(a,b,c)`` and
    ``NAND2(OR2(a,b), c) -> OAI21(a,b,c)`` whenever the inner gate has a
    single fanout.  One complex cell replaces two simple ones — an area
    and delay win that real libraries exist to provide.
    """
    merged = 0
    patterns = {"NOR2": ("AND2", "AOI21"), "NAND2": ("OR2", "OAI21")}
    for name in list(netlist.cells):
        outer = netlist.cells.get(name)
        if outer is None or outer.gate not in patterns:
            continue
        inner_kind, complex_kind = patterns[outer.gate]
        if not library.variants(complex_kind):
            continue
        for pin in (0, 1):
            inner_net = outer.inputs[pin]
            inner = netlist.driver_cell(inner_net)
            if (
                inner is None
                or inner.gate != inner_kind
                or netlist.fanout(inner.output) != 1
                or netlist.nets[inner.output].is_output
                or outer.inputs.count(inner_net) != 1
            ):
                continue
            other_net = outer.inputs[1 - pin]
            a, b = inner.inputs
            out_net = outer.output
            netlist.remove_cell(outer.name)
            netlist.remove_cell(inner.name)
            cell = netlist.add_cell(complex_kind, [a, b, other_net], out_net)
            cell.lib_cell = library.weakest(complex_kind).name
            merged += 1
            break
    return merged


_COMMUTATIVE = frozenset({"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"})


def share_logic(netlist: Netlist) -> int:
    """Structural hashing: merge gates computing identical functions.

    Two combinational gates with the same type and the same input nets
    (order-insensitive for commutative gates) compute the same value; all
    but one are removed and their readers rewired — the classical
    "strash" / common-subexpression-sharing step.  Iterates to a fixpoint
    so chains of duplicates collapse fully.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        table: dict[tuple, str] = {}
        for name in list(netlist.cells):
            cell = netlist.cells.get(name)
            if cell is None or cell.is_sequential:
                continue
            if cell.gate in ("CONST0", "CONST1"):
                continue
            inputs = (
                tuple(sorted(cell.inputs))
                if cell.gate in _COMMUTATIVE
                else tuple(cell.inputs)
            )
            key = (cell.gate, inputs)
            canonical = table.get(key)
            if canonical is None:
                table[key] = name
                continue
            keeper = netlist.cells[canonical]
            out_net = netlist.nets[cell.output]
            if out_net.is_output:
                # Keep port nets driven; swap roles so the port-driving
                # copy is the canonical one when possible.
                if netlist.nets[keeper.output].is_output:
                    continue  # both drive ports; leave them
                table[key] = name
                cell, keeper = keeper, netlist.cells[name]
            dup_out = cell.output
            netlist.remove_cell(cell.name)
            _replace_net_everywhere(netlist, dup_out, keeper.output)
            merged += 1
            changed = True
    return merged


def cleanup(
    netlist: Netlist,
    library: TechLibrary | None = None,
    flatten: bool = False,
) -> dict[str, int]:
    """Run the structural passes to a fixpoint; returns per-pass counts."""
    totals = {"constants": 0, "buffers": 0, "inverters": 0, "dead": 0, "shared": 0}
    for _ in range(8):
        changed = 0
        changed += (n := propagate_constants(netlist))
        totals["constants"] += n
        changed += (n := remove_buffers(netlist, flatten=flatten))
        totals["buffers"] += n
        changed += (n := share_logic(netlist))
        totals["shared"] += n
        if library is not None:
            changed += (n := merge_inverters(netlist, library))
            totals["inverters"] += n
        changed += (n := sweep_dead_cells(netlist))
        totals["dead"] += n
        if changed == 0:
            break
    return totals
