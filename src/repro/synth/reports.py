"""Report generation: QoR summaries and DC-style text reports.

The :class:`QoRSnapshot` is the structured result the evaluation harness
consumes (Table III/IV columns); the text renderers imitate Design
Compiler's report formats so the LLM pipeline has realistic report text to
read (paper Fig. 2: reports feed back into script customization).
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import TimingEngine, TimingReport

__all__ = ["QoRSnapshot", "render_timing_report", "render_area_report", "render_qor_report"]


@dataclass(frozen=True)
class QoRSnapshot:
    """Quality-of-results summary for one synthesized design."""

    design: str
    wns: float
    cps: float
    tns: float
    area: float
    num_violations: int
    num_cells: int
    num_registers: int
    max_fanout: int
    leakage_nw: float
    dynamic_uw: float

    @property
    def timing_met(self) -> bool:
        return self.num_violations == 0

    def row(self) -> dict:
        """Table III/IV style row."""
        return {
            "design": self.design,
            "WNS": round(self.wns, 2),
            "CPS": round(self.cps, 2),
            "TNS": round(self.tns, 2),
            "Area": round(self.area, 2),
        }


def snapshot(design: str, engine: TimingEngine, report: TimingReport) -> QoRSnapshot:
    """Build a :class:`QoRSnapshot` from an analyzed engine."""
    netlist = engine.netlist
    stats = netlist.stats()
    return QoRSnapshot(
        design=design,
        wns=report.wns,
        cps=report.cps,
        tns=report.tns,
        area=round(engine.total_area(), 2),
        num_violations=report.num_violations,
        num_cells=stats["cells"],
        num_registers=stats["sequential"],
        max_fanout=stats["max_fanout"],
        leakage_nw=round(engine.total_leakage(), 1),
        dynamic_uw=round(engine.dynamic_power(), 1),
    )


def render_timing_report(design: str, report: TimingReport, max_points: int = 20) -> str:
    """DC ``report_timing``-style text for the critical path."""
    lines = [
        "****************************************",
        "Report : timing",
        f"Design : {design}",
        "****************************************",
        "",
    ]
    path = report.critical_path
    if path is None:
        lines.append("No constrained paths.")
        return "\n".join(lines)
    lines.append(f"  Startpoint: {path.startpoint}")
    lines.append(f"  Endpoint:   {path.endpoint}")
    lines.append("")
    lines.append(f"  {'Point':<40}{'Incr':>8}{'Path':>8}")
    lines.append("  " + "-" * 56)
    points = path.points
    if len(points) > max_points:
        head = points[: max_points // 2]
        tail = points[-(max_points // 2):]
        shown = list(head) + [None] + list(tail)
    else:
        shown = list(points)
    for point in shown:
        if point is None:
            lines.append("  ...")
            continue
        label = f"{point.cell} ({point.net})"
        lines.append(f"  {label:<40}{point.incr:>8.3f}{point.arrival:>8.3f}")
    lines.append("  " + "-" * 56)
    lines.append(f"  data arrival time  {path.arrival:>10.3f}")
    lines.append(f"  data required time {path.required:>10.3f}")
    verdict = "MET" if path.slack >= 0 else "VIOLATED"
    lines.append(f"  slack ({verdict}) {path.slack:>10.3f}")
    return "\n".join(lines)


def render_area_report(design: str, engine: TimingEngine) -> str:
    """DC ``report_area``-style text."""
    netlist = engine.netlist
    stats = netlist.stats()
    comb_area = 0.0
    seq_area = 0.0
    buf_area = 0.0
    for cell in netlist.cells.values():
        if cell.gate in ("CONST0", "CONST1"):
            continue
        area = engine._bound_cell(cell).area
        if cell.is_sequential:
            seq_area += area
        else:
            comb_area += area
            if cell.gate == "BUF":
                buf_area += area
    lines = [
        "****************************************",
        "Report : area",
        f"Design : {design}",
        "****************************************",
        "",
        f"Number of cells:          {stats['cells']:>12}",
        f"Number of sequential:     {stats['sequential']:>12}",
        f"Number of nets:           {stats['nets']:>12}",
        f"Combinational area:       {comb_area:>12.2f}",
        f"Buf/Inv area:             {buf_area:>12.2f}",
        f"Noncombinational area:    {seq_area:>12.2f}",
        f"Total cell area:          {comb_area + seq_area:>12.2f}",
    ]
    return "\n".join(lines)


def render_qor_report(snap: QoRSnapshot) -> str:
    """DC ``report_qor``-style text."""
    lines = [
        "****************************************",
        "Report : qor",
        f"Design : {snap.design}",
        "****************************************",
        "",
        "  Timing Path Group 'clk'",
        "  -----------------------------------",
        f"  Critical Path Slack:     {snap.cps:>10.2f}",
        f"  Worst Negative Slack:    {snap.wns:>10.2f}",
        f"  Total Negative Slack:    {snap.tns:>10.2f}",
        f"  No. of Violating Paths:  {snap.num_violations:>10}",
        "",
        "  Area",
        "  -----------------------------------",
        f"  Design Area:             {snap.area:>10.2f}",
        f"  Leaf Cell Count:         {snap.num_cells:>10}",
        f"  Register Count:          {snap.num_registers:>10}",
        f"  Max Fanout:              {snap.max_fanout:>10}",
        "",
        "  Power",
        "  -----------------------------------",
        f"  Leakage Power (nW):      {snap.leakage_nw:>10.1f}",
        f"  Dynamic Power (uW):      {snap.dynamic_uw:>10.1f}",
    ]
    return "\n".join(lines)
