"""Timing-driven optimization passes.

These are the QoR levers that synthesis-script commands pull (paper §I):

* :func:`size_gates` — upsize cells on critical paths (slack-driven).
* :func:`recover_area` — downsize cells with generous slack.
* :func:`buffer_high_fanout` — buffer trees for high-fanout nets
  ("buffer balancing" in the paper's retiming-vs-buffering discussion).
* :func:`retime` — greedy min-period register retiming [25].
* :func:`balance_chains` — rebuild linear AND/OR/XOR chains as balanced
  trees (part of ``compile_ultra``'s restructuring).

All passes mutate the netlist in place and report what they changed.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from .. import perf
from ..hdl.netlist import Netlist
from .library import TechLibrary
from .sdc import Constraints
from .timing import TimingEngine
from .wireload import WireLoadModel

__all__ = [
    "PassResult",
    "size_gates",
    "recover_area",
    "buffer_high_fanout",
    "retime",
    "balance_chains",
    "resynthesize_adders",
]


@dataclass
class PassResult:
    """Outcome of one optimization pass."""

    name: str
    changes: int
    wns_before: float
    wns_after: float
    area_before: float
    area_after: float


def _engine(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
) -> TimingEngine:
    return TimingEngine(netlist, library, wireload, constraints)


def _timed(fn):
    """Accumulate per-pass wall clock in the perf registry."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with perf.timer(f"pass.{fn.__name__}"):
            return fn(*args, **kwargs)

    return wrapper


# -- gate sizing --------------------------------------------------------------


@_timed
def size_gates(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_rounds: int = 30,
    scan: int = 12,
) -> PassResult:
    """Greedy critical-path upsizing.

    Each round walks the current critical path and upsizes the cell with
    the largest delay contribution that still has a stronger variant,
    trying up to ``scan`` candidates per round.  Stops when timing is met,
    no upgrades remain, or a round fails to improve the worst slack.
    """
    engine = _engine(netlist, library, wireload, constraints)
    report = engine.analyze()
    wns_before, area_before = report.cps, engine.total_area()
    changes = 0
    for _ in range(max_rounds):
        if report.critical_path is None or report.cps >= 0:
            break
        points = sorted(
            report.critical_path.points, key=lambda p: p.incr, reverse=True
        )
        # Try candidates in decreasing delay contribution; keep the first
        # upsize that actually improves the worst slack (upsizing raises
        # input capacitance, so not every candidate is a win).
        improved_report = None
        for point in points[:scan]:
            cell = netlist.cells.get(point.cell)
            if cell is None or cell.lib_cell is None:
                continue
            current = library.cell(cell.lib_cell)
            bigger = library.next_size_up(current)
            if bigger is None:
                continue
            cell.lib_cell = bigger.name
            # Trials only need the slack verdict; trace the critical path
            # (needed to pick next round's candidates) only on acceptance,
            # where the second analyze() is served from the cached state.
            trial = engine.analyze(with_paths=False)
            if trial.cps > report.cps + 1e-12:
                improved_report = engine.analyze()
                changes += 1
                break
            cell.lib_cell = current.name
        if improved_report is None:
            break
        report = improved_report
    final = engine.analyze()
    return PassResult(
        name="size_gates",
        changes=changes,
        wns_before=wns_before,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


@_timed
def recover_area(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    slack_margin: float = 0.05,
) -> PassResult:
    """Downsize cells whose endpoints keep >= ``slack_margin`` slack.

    Processes cells one at a time and reverts any downsize that creates a
    violation, so the pass is timing-safe.
    """
    engine = _engine(netlist, library, wireload, constraints)
    before = engine.analyze(with_paths=False)
    area_before = engine.total_area()
    changes = 0
    if before.cps < slack_margin:
        return PassResult("recover_area", 0, before.cps, before.cps, area_before, area_before)
    candidates = []
    for cell in netlist.cells.values():
        if cell.lib_cell is None:
            continue
        current = library.cell(cell.lib_cell)
        weaker = [v for v in library.variants(current.function) if v.drive < current.drive]
        if weaker:
            candidates.append((cell, current, weaker[-1]))
    # Batched downsizing keeps this O(n) timing runs instead of O(n^2):
    # apply a chunk, verify, and roll the chunk back if slack dips.
    chunk = max(1, len(candidates) // 20)
    for start in range(0, len(candidates), chunk):
        batch = candidates[start : start + chunk]
        for cell, _, weaker_cell in batch:
            cell.lib_cell = weaker_cell.name
        report = engine.analyze(with_paths=False)
        if report.cps < slack_margin:
            for cell, current, _ in batch:
                cell.lib_cell = current.name
        else:
            changes += len(batch)
    final = engine.analyze(with_paths=False)
    return PassResult(
        name="recover_area",
        changes=changes,
        wns_before=before.cps,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- fanout buffering -------------------------------------------------------------


@_timed
def buffer_high_fanout(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_fanout: int | None = None,
) -> PassResult:
    """Split nets whose fanout exceeds ``max_fanout`` with buffer trees.

    Sinks are grouped under new BUF cells (strongest drive variant),
    recursively, so no net drives more than ``max_fanout`` pins.
    """
    limit = max_fanout or constraints.max_fanout or 16
    engine = _engine(netlist, library, wireload, constraints)
    before = engine.analyze(with_paths=False)
    area_before = engine.total_area()
    buf_cell = library.variants("BUF")[-1]
    changes = 0
    worklist = list(netlist.nets)
    while worklist:
        net_name = worklist.pop()
        net = netlist.nets.get(net_name)
        if net is None or not net.sinks:
            continue
        driver = netlist.driver_cell(net_name)
        if driver is not None and driver.gate in ("CONST0", "CONST1"):
            continue
        sinks = sorted(net.sinks)
        # Never buffer the clock pin path.  Grouping is pin-weighted: a
        # sink reading the net on several pins moves as one unit.
        weighted = [
            (s, netlist.cells[s].inputs.count(net_name))
            for s in sinks
            if net_name in netlist.cells[s].inputs
        ]
        total_pins = sum(w for _, w in weighted)
        if total_pins <= limit:
            continue
        groups: list[list[str]] = []
        current: list[str] = []
        current_pins = 0
        for sink_name, pins in weighted:
            if current and current_pins + pins > limit:
                groups.append(current)
                current, current_pins = [], 0
            current.append(sink_name)
            current_pins += pins
        if current:
            groups.append(current)
        # Every group goes behind a buffer, so the original driver only
        # drives the buffers; re-queue the net in case #groups > limit.
        for group in groups:
            branch = netlist.add_net()
            cell = netlist.add_cell(
                "BUF", [net_name], branch.name, fanout_buffer=True
            )
            cell.lib_cell = buf_cell.name
            for sink_name in group:
                # rewire_input replaces every pin reading the net at once.
                netlist.rewire_input(sink_name, net_name, branch.name)
            changes += 1
        worklist.append(net_name)
    final = engine.analyze(with_paths=False)
    return PassResult(
        name="buffer_high_fanout",
        changes=changes,
        wns_before=before.cps,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- retiming ------------------------------------------------------------------------


def _retime_backward(netlist: Netlist, dff_name: str) -> bool:
    """Move one register backward across its driving gate.

    Legal when the gate's output feeds only this register; every gate
    input gets its own register, preserving path latencies (Leiserson &
    Saxe backward move).
    """
    dff = netlist.cells.get(dff_name)
    if dff is None or not dff.is_sequential:
        return False
    d_net = dff.inputs[0]
    gate = netlist.driver_cell(d_net)
    if gate is None or gate.is_sequential or gate.gate in ("CONST0", "CONST1"):
        return False
    if netlist.fanout(d_net) != 1 or netlist.nets[d_net].is_output:
        return False
    clock = dff.attrs.get("clock")
    q_net = dff.output
    gate_kind, gate_inputs, gate_lib = gate.gate, list(gate.inputs), gate.lib_cell
    netlist.remove_cell(dff_name)
    netlist.remove_cell(gate.name)
    registered: dict[str, str] = {}
    for net_in in gate_inputs:
        if net_in not in registered:
            reg_net = netlist.add_net()
            reg = netlist.add_cell("DFF", [net_in], reg_net.name, clock=clock)
            reg.lib_cell = dff.lib_cell
            registered[net_in] = reg_net.name
    new_gate = netlist.add_cell(
        gate_kind, [registered[n] for n in gate_inputs], q_net
    )
    new_gate.lib_cell = gate_lib
    return True


def _retime_forward(netlist: Netlist, gate_name: str) -> bool:
    """Move registers forward across ``gate_name``.

    Legal when every gate input is the output of a register that feeds
    only this gate; the input registers merge into one output register.
    """
    gate = netlist.cells.get(gate_name)
    if gate is None or gate.is_sequential or gate.gate in ("CONST0", "CONST1"):
        return False
    sources: list[tuple[str, str]] = []  # (dff name, its D net)
    clock = None
    for net_in in set(gate.inputs):
        dff = netlist.driver_cell(net_in)
        if dff is None or not dff.is_sequential:
            return False
        if netlist.fanout(net_in) != gate.inputs.count(net_in):
            return False
        if netlist.nets[net_in].is_output:
            return False
        if clock is None:
            clock = dff.attrs.get("clock")
        elif dff.attrs.get("clock") != clock:
            return False
        sources.append((dff.name, dff.inputs[0]))
    out_net = gate.output
    gate_kind, gate_inputs, gate_lib = gate.gate, list(gate.inputs), gate.lib_cell
    dff_lib = netlist.cells[sources[0][0]].lib_cell
    replacement = {
        netlist.cells[dff_name].output: d_net for dff_name, d_net in sources
    }
    netlist.remove_cell(gate_name)
    for dff_name, _ in sources:
        netlist.remove_cell(dff_name)
    mid = netlist.add_net()
    new_gate = netlist.add_cell(
        gate_kind, [replacement[n] for n in gate_inputs], mid.name
    )
    new_gate.lib_cell = gate_lib
    new_dff = netlist.add_cell("DFF", [mid.name], out_net, clock=clock)
    new_dff.lib_cell = dff_lib
    return True


@_timed
def retime(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_moves: int = 200,
) -> PassResult:
    """Greedy min-period retiming: move registers off the critical path.

    Repeatedly analyzes timing; if the critical endpoint is a register,
    tries a backward move there; if the critical path launches from a
    register, tries a forward move through the first gate.  A move is kept
    only when the worst slack does not degrade.
    """
    engine = _engine(netlist, library, wireload, constraints)
    report = engine.analyze()
    wns_before, area_before = report.cps, engine.total_area()
    moves = 0
    stuck_endpoints: set[str] = set()
    for _ in range(max_moves):
        report = engine.analyze()
        if report.cps >= 0 or report.critical_path is None:
            break
        endpoint = report.critical_path.endpoint
        if endpoint in stuck_endpoints:
            break
        snapshot = netlist.clone()
        moved = False
        if endpoint.startswith("reg:"):
            moved = _retime_backward(netlist, endpoint[4:])
        if not moved:
            # Try a forward move through the first combinational gate on
            # the path (its inputs may all be registered).
            for point in report.critical_path.points:
                if point.cell in netlist.cells and not netlist.cells[point.cell].is_sequential:
                    moved = _retime_forward(netlist, point.cell)
                    if moved:
                        break
        if not moved:
            stuck_endpoints.add(endpoint)
            continue
        new_report = engine.analyze(with_paths=False)
        if new_report.cps < report.cps - 1e-9:
            netlist.replace_with(snapshot)  # degraded: roll back
            stuck_endpoints.add(endpoint)
            continue
        if new_report.cps - report.cps < 1e-9:
            stuck_endpoints.add(endpoint)
        moves += 1
    final = engine.analyze(with_paths=False)
    return PassResult(
        name="retime",
        changes=moves,
        wns_before=wns_before,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- arithmetic resynthesis ----------------------------------------------------------


def _adder_tag_valid(netlist: Netlist, meta: dict) -> bool:
    """An adder tag is honoured only if its structure is still intact.

    Earlier passes (constant folding, sweeping) may have rewritten parts
    of a tagged ripple adder; in that case internal nets leak outside the
    member set and the rebuild would be unsound.
    """
    members = set(meta["members"])
    interface = set(meta["outs"]) | {meta["cout"]}
    for name in members:
        cell = netlist.cells.get(name)
        if cell is None:
            return False
        out_net = netlist.nets[cell.output]
        if out_net.name in interface:
            continue
        if out_net.is_output:
            return False
        if any(sink not in members for sink in out_net.sinks):
            return False
    for net in meta["a"] + meta["b"] + [meta["cin"]]:
        if net not in netlist.nets:
            return False
    return True


@_timed
def resynthesize_adders(
    netlist: Netlist,
    library: TechLibrary,
    block: int = 4,
) -> PassResult:
    """Rebuild tagged ripple-carry adders as carry-select adders.

    This is the DesignWare "implementation selection" analogue: the
    elaborator tags every wide ``+``/``-`` it lowers; this pass replaces
    the linear carry chain (depth ~2N) with carry-select blocks (depth
    ~2*block + N/block muxes), trading area for delay — exactly the trade
    ``compile_ultra`` makes on arithmetic-dominated designs.
    """
    rebuilt = 0
    tagged = [
        (name, dict(cell.attrs["adder"]))
        for name, cell in netlist.cells.items()
        if "adder" in cell.attrs
    ]
    weakest = {
        kind: library.weakest(kind).name
        for kind in ("XOR2", "AND2", "OR2", "MUX2", "BUF")
    }

    def gate(kind: str, inputs: list[str], output: str | None = None) -> str:
        out = output or netlist.add_net().name
        cell = netlist.add_cell(kind, inputs, out)
        cell.lib_cell = weakest[kind]
        return out

    def const_net(value: int) -> str:
        target = "CONST1" if value else "CONST0"
        for cell in netlist.cells.values():
            if cell.gate == target:
                return cell.output
        out = netlist.add_net().name
        netlist.add_cell(target, [], out)
        return out

    def ripple(a, b, cin, outs=None):
        """Plain ripple block; drives ``outs`` if given, else fresh nets."""
        sums = []
        carry = cin
        for i in range(len(a)):
            axb = gate("XOR2", [a[i], b[i]])
            sums.append(gate("XOR2", [axb, carry], outs[i] if outs else None))
            gen = gate("AND2", [a[i], b[i]])
            prop = gate("AND2", [axb, carry])
            carry = gate("OR2", [gen, prop])
        return sums, carry

    for anchor, meta in tagged:
        if anchor not in netlist.cells:
            continue
        if not _adder_tag_valid(netlist, meta):
            netlist.cells[anchor].attrs.pop("adder", None)
            continue
        a, b, cin = meta["a"], meta["b"], meta["cin"]
        outs, cout = meta["outs"], meta["cout"]
        cout_used = bool(netlist.nets[cout].sinks) or netlist.nets[cout].is_output
        for member in meta["members"]:
            netlist.remove_cell(member)
        width = len(outs)
        zero, one = const_net(0), const_net(1)
        carry = cin
        for start in range(0, width, block):
            end = min(start + block, width)
            a_blk, b_blk = a[start:end], b[start:end]
            out_blk = outs[start:end]
            if start == 0:
                _, carry = ripple(a_blk, b_blk, carry, outs=out_blk)
                continue
            sums0, c0 = ripple(a_blk, b_blk, zero)
            sums1, c1 = ripple(a_blk, b_blk, one)
            for i in range(len(out_blk)):
                gate("MUX2", [carry, sums0[i], sums1[i]], out_blk[i])
            carry = gate("MUX2", [carry, c0, c1])
        if cout_used:
            gate("BUF", [carry], cout)
        rebuilt += 1
    return PassResult(
        name="resynthesize_adders",
        changes=rebuilt,
        wns_before=0.0,
        wns_after=0.0,
        area_before=0.0,
        area_after=0.0,
    )


# -- chain balancing --------------------------------------------------------------------


@_timed
def balance_chains(
    netlist: Netlist,
    library: TechLibrary,
    min_chain: int = 3,
) -> PassResult:
    """Rebuild linear associative-gate chains as balanced trees.

    Finds maximal chains of identical AND2/OR2/XOR2 gates where each link
    is single-fanout, gathers the leaf operands and re-synthesizes a
    balanced tree, cutting logic depth from N-1 to ceil(log2 N).
    """
    changes = 0
    for kind in ("AND2", "OR2", "XOR2"):
        for name in list(netlist.cells):
            root = netlist.cells.get(name)
            if root is None or root.gate != kind:
                continue
            # Only rebuild from the top of a chain.
            out_net = netlist.nets[root.output]
            parent = None
            if len(out_net.sinks) == 1 and not out_net.is_output:
                parent = netlist.cells[next(iter(out_net.sinks))]
            if parent is not None and parent.gate == kind:
                continue
            leaves: list[str] = []
            chain: list[str] = []
            visited: set[str] = set()

            def collect(cell) -> None:
                visited.add(cell.name)
                chain.append(cell.name)
                for net_in in cell.inputs:
                    child = netlist.driver_cell(net_in)
                    if (
                        child is not None
                        and child.gate == kind
                        and child.name not in visited
                        and netlist.fanout(child.output) == 1
                        and cell.inputs.count(net_in) == 1
                        and not netlist.nets[child.output].is_output
                    ):
                        collect(child)
                    else:
                        leaves.append(net_in)

            collect(root)
            if len(chain) < min_chain:
                continue
            depth_before = len(chain)
            out = root.output
            lib_name = root.lib_cell
            for cell_name in chain:
                netlist.remove_cell(cell_name)
            layer = list(leaves)
            while len(layer) > 2:
                nxt = []
                for i in range(0, len(layer) - 1, 2):
                    mid = netlist.add_net()
                    cell = netlist.add_cell(kind, [layer[i], layer[i + 1]], mid.name)
                    cell.lib_cell = lib_name
                    nxt.append(mid.name)
                if len(layer) % 2:
                    nxt.append(layer[-1])
                layer = nxt
            top = netlist.add_cell(kind, layer, out)
            top.lib_cell = lib_name
            changes += 1
    return PassResult(
        name="balance_chains",
        changes=changes,
        wns_before=0.0,
        wns_after=0.0,
        area_before=0.0,
        area_after=0.0,
    )
