"""Timing-driven optimization passes.

These are the QoR levers that synthesis-script commands pull (paper §I):

* :func:`size_gates` — upsize cells on critical paths (slack-driven).
* :func:`recover_area` — downsize cells with generous slack.
* :func:`buffer_high_fanout` — buffer trees for high-fanout nets
  ("buffer balancing" in the paper's retiming-vs-buffering discussion).
* :func:`retime` — greedy min-period register retiming [25].
* :func:`balance_chains` — rebuild linear AND/OR/XOR chains as balanced
  trees (part of ``compile_ultra``'s restructuring).

All passes mutate the netlist in place and report what they changed.

The timing-driven passes accept an optional :class:`~repro.synth.passes.
PassContext` so a compile flow shares one incremental
:class:`~repro.synth.timing.TimingEngine` across every pass (``DCShell``
always provides one; direct callers get a fresh private context).  With
``REPRO_FAST_OPT`` on (the default) the candidate loops run vectorized —
batched side-effect-free trial evaluation over the SoA arrays — with a
bit-exact contract against the retained scalar loops: identical accepted
changes, identical final netlist, identical QoR.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from .. import perf
from ..hdl.netlist import Netlist
from . import soa
from .library import TechLibrary
from .passes import PassContext
from .sdc import Constraints
from .wireload import WireLoadModel

__all__ = [
    "PassResult",
    "size_gates",
    "recover_area",
    "buffer_high_fanout",
    "retime",
    "balance_chains",
    "resynthesize_adders",
]

# Trial lanes per batched kernel sweep in the fast sizing loop: large
# enough to amortize the per-level numpy overhead over many candidates on
# reject-heavy rounds, small enough that an early acceptance wastes little.
_TRIAL_BATCH = 16
_PROBE_DEPTH = 2


@dataclass
class PassResult:
    """Outcome of one optimization pass."""

    name: str
    changes: int
    wns_before: float
    wns_after: float
    area_before: float
    area_after: float


def _context(
    context: PassContext | None,
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
) -> PassContext:
    if context is not None:
        return context
    return PassContext(netlist, library, wireload, constraints)


def _timed(fn):
    """Accumulate per-pass wall clock in the perf registry."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with perf.timer(f"pass.{fn.__name__}"):
            return fn(*args, **kwargs)

    return wrapper


# -- gate sizing --------------------------------------------------------------


def _upsize_candidates(netlist, upgrade, points):
    """``(cell, stronger variant name)`` per viable point, in point order."""
    candidates = []
    for point in points:
        cell = netlist.cells.get(point.cell)
        if cell is None or cell.lib_cell is None:
            continue
        bigger = upgrade[cell.lib_cell]
        if bigger is None:
            continue
        candidates.append((cell, bigger.name))
    return candidates


@_timed
def size_gates(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_rounds: int = 30,
    scan: int = 12,
    context: PassContext | None = None,
) -> PassResult:
    """Greedy critical-path upsizing.

    Each round walks the current critical path and upsizes the cell with
    the largest delay contribution that still has a stronger variant,
    trying up to ``scan`` candidates per round.  Stops when timing is met,
    no upgrades remain, or a round fails to improve the worst slack.

    Fast mode scores the round's candidates through
    :meth:`TimingEngine.trial_cps_batch` — chunks of hypothetical rebinds
    evaluated in one kernel sweep, no netlist mutation for rejects — and
    accepts the first improving candidate, exactly like the scalar loop.
    """
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    report = engine.analyze()
    wns_before, area_before = report.cps, engine.total_area()
    upgrade = ctx.upgrade_table()
    changes = 0
    for _ in range(max_rounds):
        if report.critical_path is None or report.cps >= 0:
            break
        points = sorted(
            report.critical_path.points, key=lambda p: p.incr, reverse=True
        )
        # Try candidates in decreasing delay contribution; keep the first
        # upsize that actually improves the worst slack (upsizing raises
        # input capacitance, so not every candidate is a win).
        improved_report = None
        if ctx.fast:
            candidates = _upsize_candidates(netlist, upgrade, points[:scan])
            start = 0
            # Probe the strongest candidates with committed trials first:
            # accept-heavy rounds (the common case while slack is still
            # improving) take one for an incremental fold apiece instead
            # of a batch sweep.  The verdict is the same bit-exact cps the
            # batch would return.  The first round skips the probes — on
            # reject-heavy scans (timing already plateaued) they are pure
            # overhead, while every later round follows an accept.
            probe = _PROBE_DEPTH if changes else 0
            for cell, lib_name in candidates[:probe]:
                previous = cell.lib_cell
                cell.lib_cell = lib_name
                perf.incr("opt.trials")
                if engine.trial_cps() > report.cps + 1e-12:
                    improved_report = engine.analyze()
                    changes += 1
                    break
                cell.lib_cell = previous
                start += 1
            # Batch sizes ramp 4 -> 8 -> 16: rounds that accept near the
            # front (common while slack is still improving) pay a small
            # sweep, while reject-heavy scans amortize into full batches.
            width = 4
            while improved_report is None and start < len(candidates):
                batch = candidates[start : start + width]
                verdicts = engine.trial_cps_batch(
                    [(cell.name, lib_name) for cell, lib_name in batch]
                )
                perf.incr("opt.trials", len(batch))
                accepted = None
                for (cell, lib_name), cps in zip(batch, verdicts):
                    if cps > report.cps + 1e-12:
                        accepted = (cell, lib_name)
                        break
                if accepted is not None:
                    cell, lib_name = accepted
                    cell.lib_cell = lib_name
                    improved_report = engine.analyze()
                    changes += 1
                    break
                start += width
                width = min(width * 2, _TRIAL_BATCH)
        else:
            for point in points[:scan]:
                cell = netlist.cells.get(point.cell)
                if cell is None or cell.lib_cell is None:
                    continue
                bigger = upgrade[cell.lib_cell]
                if bigger is None:
                    continue
                previous = cell.lib_cell
                cell.lib_cell = bigger.name
                # Trials only need the slack verdict; trace the critical
                # path (needed to pick next round's candidates) only on
                # acceptance, where the second analyze() is served from
                # the cached state.
                perf.incr("opt.trials")
                trial = engine.analyze(with_paths=False)
                if trial.cps > report.cps + 1e-12:
                    improved_report = engine.analyze()
                    changes += 1
                    break
                cell.lib_cell = previous
        if improved_report is None:
            break
        report = improved_report
    # trial_cps is bit-identical to analyze().cps and skips the report
    # build + path trace the result would immediately discard.
    final_cps = engine.trial_cps()
    return PassResult(
        name="size_gates",
        changes=changes,
        wns_before=wns_before,
        wns_after=final_cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


@_timed
def recover_area(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    slack_margin: float = 0.05,
    context: PassContext | None = None,
) -> PassResult:
    """Downsize cells whose endpoints keep >= ``slack_margin`` slack.

    Processes cells one at a time and reverts any downsize that creates a
    violation, so the pass is timing-safe.  Candidates come from the
    per-library downgrade table (one sweep over the cells); fast mode
    replaces the per-chunk report build with the ``trial_cps`` array
    reduction — the accept/revert decisions are bit-identical.
    """
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    before_cps = engine.trial_cps()
    area_before = engine.total_area()
    changes = 0
    if before_cps < slack_margin:
        return PassResult(
            "recover_area", 0, before_cps, before_cps, area_before, area_before
        )
    downgrade = ctx.downgrade_table()
    candidates = []
    for cell in netlist.cells.values():
        if cell.lib_cell is None:
            continue
        weaker_cell = downgrade[cell.lib_cell]
        if weaker_cell is not None:
            candidates.append((cell, cell.lib_cell, weaker_cell))
    # Batched downsizing keeps this O(n) timing runs instead of O(n^2):
    # apply a chunk, verify, and roll the chunk back if slack dips.
    fast = ctx.fast
    chunk = max(1, len(candidates) // 20)
    for start in range(0, len(candidates), chunk):
        batch = candidates[start : start + chunk]
        for cell, _, weaker_cell in batch:
            cell.lib_cell = weaker_cell.name
        perf.incr("opt.trials")
        cps = engine.trial_cps() if fast else engine.analyze(with_paths=False).cps
        if cps < slack_margin:
            for cell, current_name, _ in batch:
                cell.lib_cell = current_name
        else:
            changes += len(batch)
    final_cps = engine.trial_cps()
    return PassResult(
        name="recover_area",
        changes=changes,
        wns_before=before_cps,
        wns_after=final_cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- fanout buffering -------------------------------------------------------------


def _overloaded_nets(netlist, limit: int) -> list[str]:
    """Nets with more than ``limit`` data pins, in definition order.

    One vectorized scan over the cached SoA pair arrays when the lowering
    is journal-valid (pair pins minus sequential clock pins), else one
    Python sweep over the cells.  Seeding the buffer worklist with only
    these nets is exact: the full worklist's visits to in-limit nets are
    no-ops, and buffering one net never adds data pins to another
    pre-existing net, so the mutation sequence (and with it every
    generated net/cell uid) is unchanged.
    """
    structure = soa.peek_structure(netlist)
    if structure is not None:
        pins = np.bincount(
            structure.pair_net,
            weights=structure.pair_pins,
            minlength=structure.num_nets,
        )
        for ci in structure.seq_cells.tolist():
            clock = netlist.cells[structure.cell_names[ci]].attrs.get("clock")
            if clock is not None:
                pins[structure.net_index[clock]] -= 1.0
        over = pins > limit
        return [
            name for ni, name in enumerate(structure.net_names) if over[ni]
        ]
    counts: dict[str, int] = {}
    for cell in netlist.cells.values():
        for net_in in cell.inputs:
            counts[net_in] = counts.get(net_in, 0) + 1
    return [name for name in netlist.nets if counts.get(name, 0) > limit]


@_timed
def buffer_high_fanout(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_fanout: int | None = None,
    context: PassContext | None = None,
) -> PassResult:
    """Split nets whose fanout exceeds ``max_fanout`` with buffer trees.

    Sinks are grouped under new BUF cells (strongest drive variant),
    recursively, so no net drives more than ``max_fanout`` pins.  Fast
    mode seeds the worklist from one fanout scan instead of visiting
    every net; see :func:`_overloaded_nets` for the parity argument.
    """
    limit = max_fanout or constraints.max_fanout or 16
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    before = engine.analyze(with_paths=False)
    area_before = engine.total_area()
    buf_cell = library.variants("BUF")[-1]
    changes = 0
    if ctx.fast:
        worklist = _overloaded_nets(netlist, limit)
    else:
        worklist = list(netlist.nets)
    while worklist:
        net_name = worklist.pop()
        net = netlist.nets.get(net_name)
        if net is None or not net.sinks:
            continue
        driver = netlist.driver_cell(net_name)
        if driver is not None and driver.gate in ("CONST0", "CONST1"):
            continue
        sinks = sorted(net.sinks)
        # Never buffer the clock pin path.  Grouping is pin-weighted: a
        # sink reading the net on several pins moves as one unit.
        weighted = [
            (s, netlist.cells[s].inputs.count(net_name))
            for s in sinks
            if net_name in netlist.cells[s].inputs
        ]
        total_pins = sum(w for _, w in weighted)
        if total_pins <= limit:
            continue
        groups: list[list[str]] = []
        current: list[str] = []
        current_pins = 0
        for sink_name, pins in weighted:
            if current and current_pins + pins > limit:
                groups.append(current)
                current, current_pins = [], 0
            current.append(sink_name)
            current_pins += pins
        if current:
            groups.append(current)
        # Every group goes behind a buffer, so the original driver only
        # drives the buffers; re-queue the net in case #groups > limit.
        for group in groups:
            branch = netlist.add_net()
            cell = netlist.add_cell(
                "BUF", [net_name], branch.name, fanout_buffer=True
            )
            cell.lib_cell = buf_cell.name
            for sink_name in group:
                # rewire_input replaces every pin reading the net at once.
                netlist.rewire_input(sink_name, net_name, branch.name)
            changes += 1
        worklist.append(net_name)
    final = engine.analyze(with_paths=False)
    return PassResult(
        name="buffer_high_fanout",
        changes=changes,
        wns_before=before.cps,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- retiming ------------------------------------------------------------------------


def _retime_backward(netlist: Netlist, dff_name: str) -> bool:
    """Move one register backward across its driving gate.

    Legal when the gate's output feeds only this register; every gate
    input gets its own register, preserving path latencies (Leiserson &
    Saxe backward move).
    """
    dff = netlist.cells.get(dff_name)
    if dff is None or not dff.is_sequential:
        return False
    d_net = dff.inputs[0]
    gate = netlist.driver_cell(d_net)
    if gate is None or gate.is_sequential or gate.gate in ("CONST0", "CONST1"):
        return False
    if netlist.fanout(d_net) != 1 or netlist.nets[d_net].is_output:
        return False
    clock = dff.attrs.get("clock")
    q_net = dff.output
    gate_kind, gate_inputs, gate_lib = gate.gate, list(gate.inputs), gate.lib_cell
    netlist.remove_cell(dff_name)
    netlist.remove_cell(gate.name)
    registered: dict[str, str] = {}
    for net_in in gate_inputs:
        if net_in not in registered:
            reg_net = netlist.add_net()
            reg = netlist.add_cell("DFF", [net_in], reg_net.name, clock=clock)
            reg.lib_cell = dff.lib_cell
            registered[net_in] = reg_net.name
    new_gate = netlist.add_cell(
        gate_kind, [registered[n] for n in gate_inputs], q_net
    )
    new_gate.lib_cell = gate_lib
    return True


def _retime_forward(netlist: Netlist, gate_name: str) -> bool:
    """Move registers forward across ``gate_name``.

    Legal when every gate input is the output of a register that feeds
    only this gate; the input registers merge into one output register.
    """
    gate = netlist.cells.get(gate_name)
    if gate is None or gate.is_sequential or gate.gate in ("CONST0", "CONST1"):
        return False
    sources: list[tuple[str, str]] = []  # (dff name, its D net)
    clock = None
    for net_in in set(gate.inputs):
        dff = netlist.driver_cell(net_in)
        if dff is None or not dff.is_sequential:
            return False
        if netlist.fanout(net_in) != gate.inputs.count(net_in):
            return False
        if netlist.nets[net_in].is_output:
            return False
        if clock is None:
            clock = dff.attrs.get("clock")
        elif dff.attrs.get("clock") != clock:
            return False
        sources.append((dff.name, dff.inputs[0]))
    out_net = gate.output
    gate_kind, gate_inputs, gate_lib = gate.gate, list(gate.inputs), gate.lib_cell
    dff_lib = netlist.cells[sources[0][0]].lib_cell
    replacement = {
        netlist.cells[dff_name].output: d_net for dff_name, d_net in sources
    }
    netlist.remove_cell(gate_name)
    for dff_name, _ in sources:
        netlist.remove_cell(dff_name)
    mid = netlist.add_net()
    new_gate = netlist.add_cell(
        gate_kind, [replacement[n] for n in gate_inputs], mid.name
    )
    new_gate.lib_cell = gate_lib
    new_dff = netlist.add_cell("DFF", [mid.name], out_net, clock=clock)
    new_dff.lib_cell = dff_lib
    return True


@_timed
def retime(
    netlist: Netlist,
    library: TechLibrary,
    wireload: WireLoadModel,
    constraints: Constraints,
    max_moves: int = 200,
    context: PassContext | None = None,
) -> PassResult:
    """Greedy min-period retiming: move registers off the critical path.

    Repeatedly analyzes timing; if the critical endpoint is a register,
    tries a backward move there; if the critical path launches from a
    register, tries a forward move through the first gate.  A move is kept
    only when the worst slack does not degrade.  Retiming edits are
    structural, so the shared context engine rebuilds per kept move; the
    win from the context is pass-to-pass engine reuse, not a fast loop.
    """
    ctx = _context(context, netlist, library, wireload, constraints)
    engine = ctx.engine
    report = engine.analyze()
    wns_before, area_before = report.cps, engine.total_area()
    moves = 0
    stuck_endpoints: set[str] = set()
    for _ in range(max_moves):
        report = engine.analyze()
        if report.cps >= 0 or report.critical_path is None:
            break
        endpoint = report.critical_path.endpoint
        if endpoint in stuck_endpoints:
            break
        snapshot = netlist.clone()
        moved = False
        if endpoint.startswith("reg:"):
            moved = _retime_backward(netlist, endpoint[4:])
        if not moved:
            # Try a forward move through the first combinational gate on
            # the path (its inputs may all be registered).
            for point in report.critical_path.points:
                if point.cell in netlist.cells and not netlist.cells[point.cell].is_sequential:
                    moved = _retime_forward(netlist, point.cell)
                    if moved:
                        break
        if not moved:
            stuck_endpoints.add(endpoint)
            continue
        new_report = engine.analyze(with_paths=False)
        if new_report.cps < report.cps - 1e-9:
            netlist.replace_with(snapshot)  # degraded: roll back
            stuck_endpoints.add(endpoint)
            continue
        if new_report.cps - report.cps < 1e-9:
            stuck_endpoints.add(endpoint)
        moves += 1
    final = engine.analyze(with_paths=False)
    return PassResult(
        name="retime",
        changes=moves,
        wns_before=wns_before,
        wns_after=final.cps,
        area_before=area_before,
        area_after=engine.total_area(),
    )


# -- arithmetic resynthesis ----------------------------------------------------------


def _adder_tag_valid(netlist: Netlist, meta: dict) -> bool:
    """An adder tag is honoured only if its structure is still intact.

    Earlier passes (constant folding, sweeping) may have rewritten parts
    of a tagged ripple adder; in that case internal nets leak outside the
    member set and the rebuild would be unsound.
    """
    members = set(meta["members"])
    interface = set(meta["outs"]) | {meta["cout"]}
    for name in members:
        cell = netlist.cells.get(name)
        if cell is None:
            return False
        out_net = netlist.nets[cell.output]
        if out_net.name in interface:
            continue
        if out_net.is_output:
            return False
        if any(sink not in members for sink in out_net.sinks):
            return False
    for net in meta["a"] + meta["b"] + [meta["cin"]]:
        if net not in netlist.nets:
            return False
    return True


@_timed
def resynthesize_adders(
    netlist: Netlist,
    library: TechLibrary,
    block: int = 4,
) -> PassResult:
    """Rebuild tagged ripple-carry adders as carry-select adders.

    This is the DesignWare "implementation selection" analogue: the
    elaborator tags every wide ``+``/``-`` it lowers; this pass replaces
    the linear carry chain (depth ~2N) with carry-select blocks (depth
    ~2*block + N/block muxes), trading area for delay — exactly the trade
    ``compile_ultra`` makes on arithmetic-dominated designs.
    """
    rebuilt = 0
    tagged = [
        (name, dict(cell.attrs["adder"]))
        for name, cell in netlist.cells.items()
        if "adder" in cell.attrs
    ]
    weakest = {
        kind: library.weakest(kind).name
        for kind in ("XOR2", "AND2", "OR2", "MUX2", "BUF")
    }

    def gate(kind: str, inputs: list[str], output: str | None = None) -> str:
        out = output or netlist.add_net().name
        cell = netlist.add_cell(kind, inputs, out)
        cell.lib_cell = weakest[kind]
        return out

    def const_net(value: int) -> str:
        target = "CONST1" if value else "CONST0"
        for cell in netlist.cells.values():
            if cell.gate == target:
                return cell.output
        out = netlist.add_net().name
        netlist.add_cell(target, [], out)
        return out

    def ripple(a, b, cin, outs=None):
        """Plain ripple block; drives ``outs`` if given, else fresh nets."""
        sums = []
        carry = cin
        for i in range(len(a)):
            axb = gate("XOR2", [a[i], b[i]])
            sums.append(gate("XOR2", [axb, carry], outs[i] if outs else None))
            gen = gate("AND2", [a[i], b[i]])
            prop = gate("AND2", [axb, carry])
            carry = gate("OR2", [gen, prop])
        return sums, carry

    for anchor, meta in tagged:
        if anchor not in netlist.cells:
            continue
        if not _adder_tag_valid(netlist, meta):
            netlist.cells[anchor].attrs.pop("adder", None)
            continue
        a, b, cin = meta["a"], meta["b"], meta["cin"]
        outs, cout = meta["outs"], meta["cout"]
        cout_used = bool(netlist.nets[cout].sinks) or netlist.nets[cout].is_output
        for member in meta["members"]:
            netlist.remove_cell(member)
        width = len(outs)
        zero, one = const_net(0), const_net(1)
        carry = cin
        for start in range(0, width, block):
            end = min(start + block, width)
            a_blk, b_blk = a[start:end], b[start:end]
            out_blk = outs[start:end]
            if start == 0:
                _, carry = ripple(a_blk, b_blk, carry, outs=out_blk)
                continue
            sums0, c0 = ripple(a_blk, b_blk, zero)
            sums1, c1 = ripple(a_blk, b_blk, one)
            for i in range(len(out_blk)):
                gate("MUX2", [carry, sums0[i], sums1[i]], out_blk[i])
            carry = gate("MUX2", [carry, c0, c1])
        if cout_used:
            gate("BUF", [carry], cout)
        rebuilt += 1
    return PassResult(
        name="resynthesize_adders",
        changes=rebuilt,
        wns_before=0.0,
        wns_after=0.0,
        area_before=0.0,
        area_after=0.0,
    )


# -- chain balancing --------------------------------------------------------------------


@_timed
def balance_chains(
    netlist: Netlist,
    library: TechLibrary,
    min_chain: int = 3,
) -> PassResult:
    """Rebuild linear associative-gate chains as balanced trees.

    Finds maximal chains of identical AND2/OR2/XOR2 gates where each link
    is single-fanout, gathers the leaf operands and re-synthesizes a
    balanced tree, cutting logic depth from N-1 to ceil(log2 N).
    """
    changes = 0
    for kind in ("AND2", "OR2", "XOR2"):
        for name in list(netlist.cells):
            root = netlist.cells.get(name)
            if root is None or root.gate != kind:
                continue
            # Only rebuild from the top of a chain.
            out_net = netlist.nets[root.output]
            parent = None
            if len(out_net.sinks) == 1 and not out_net.is_output:
                parent = netlist.cells[next(iter(out_net.sinks))]
            if parent is not None and parent.gate == kind:
                continue
            leaves: list[str] = []
            chain: list[str] = []
            visited: set[str] = set()

            def collect(cell) -> None:
                visited.add(cell.name)
                chain.append(cell.name)
                for net_in in cell.inputs:
                    child = netlist.driver_cell(net_in)
                    if (
                        child is not None
                        and child.gate == kind
                        and child.name not in visited
                        and netlist.fanout(child.output) == 1
                        and cell.inputs.count(net_in) == 1
                        and not netlist.nets[child.output].is_output
                    ):
                        collect(child)
                    else:
                        leaves.append(net_in)

            collect(root)
            if len(chain) < min_chain:
                continue
            depth_before = len(chain)
            out = root.output
            lib_name = root.lib_cell
            for cell_name in chain:
                netlist.remove_cell(cell_name)
            layer = list(leaves)
            while len(layer) > 2:
                nxt = []
                for i in range(0, len(layer) - 1, 2):
                    mid = netlist.add_net()
                    cell = netlist.add_cell(kind, [layer[i], layer[i + 1]], mid.name)
                    cell.lib_cell = lib_name
                    nxt.append(mid.name)
                if len(layer) % 2:
                    nxt.append(layer[-1])
                layer = nxt
            top = netlist.add_cell(kind, layer, out)
            top.lib_cell = lib_name
            changes += 1
    return PassResult(
        name="balance_chains",
        changes=changes,
        wns_before=0.0,
        wns_after=0.0,
        area_before=0.0,
        area_after=0.0,
    )
