"""Pass-engine layer: one shared timing context for the whole compile flow.

Before this layer, every optimization pass built its own
:class:`~repro.synth.timing.TimingEngine` — a cold STA (full arrival
propagation, and in vector mode a fresh kernel binding) per pass, even
though the netlist journal already lets one engine follow the flow's
mutations incrementally.  :class:`PassContext` owns that single engine:
``DCShell`` hands the same context to every pass it runs, passes journal
their edits through the netlist change journal as before, and the shell's
report commands reuse the same warm engine.

The context also latches the ``REPRO_FAST_OPT`` gate (default on) that
selects the vectorized candidate loops in :mod:`repro.synth.optimizer` —
batched trial evaluation over the SoA arrays instead of one scalar
``analyze()`` per trial.  The fast loops are bit-exact: same candidate
order, same acceptance tests on bit-identical slack verdicts, hence the
same accepted-change sequence, the same final netlist and the same QoR
report as the scalar fallback.  ``REPRO_FAST_OPT=0`` restores the scalar
loops (the engine-sharing above is unconditional — it is exact in both
modes by the engine's own parity contract).

Per-library candidate tables (:func:`upgrade_table` /
:func:`downgrade_table`) hoist ``library.next_size_up`` / ``variants``
lookups out of the round loops; both engine modes share them.
"""

from __future__ import annotations

import os
import threading
import weakref

from ..hdl.netlist import Netlist
from .library import LibCell, TechLibrary
from .sdc import Constraints
from .timing import TimingEngine
from .wireload import WireLoadModel

__all__ = [
    "PassContext",
    "fast_opt_enabled",
    "upgrade_table",
    "downgrade_table",
    "sizing_neighbors",
]


def fast_opt_enabled() -> bool:
    """Whether the vectorized pass loops are active (``REPRO_FAST_OPT``)."""
    return os.environ.get("REPRO_FAST_OPT", "1").lower() not in (
        "0", "false", "no", "off",
    )


_TABLE_LOCK = threading.Lock()
_UPGRADES: "weakref.WeakKeyDictionary[TechLibrary, dict]" = (
    weakref.WeakKeyDictionary()
)
_DOWNGRADES: "weakref.WeakKeyDictionary[TechLibrary, dict]" = (
    weakref.WeakKeyDictionary()
)
_NEIGHBORS: "weakref.WeakKeyDictionary[TechLibrary, dict]" = (
    weakref.WeakKeyDictionary()
)


def upgrade_table(library: TechLibrary) -> dict[str, LibCell | None]:
    """``{lib_cell name -> next stronger variant (or None)}`` for ``library``.

    Exactly ``library.next_size_up(library.cell(name))`` per entry, built
    once per library object.  Lookups of names the library does not know
    raise ``KeyError`` — the same contract as ``library.cell``.
    """
    with _TABLE_LOCK:
        table = _UPGRADES.get(library)
        if table is None:
            table = {
                cell.name: library.next_size_up(cell) for cell in library.cells()
            }
            _UPGRADES[library] = table
    return table


def downgrade_table(library: TechLibrary) -> dict[str, LibCell | None]:
    """``{lib_cell name -> strongest weaker variant (or None)}``.

    Matches ``recover_area``'s scalar candidate scan: the last entry of
    ``[v for v in variants(function) if v.drive < current.drive]``.
    """
    with _TABLE_LOCK:
        table = _DOWNGRADES.get(library)
        if table is None:
            table = {}
            for cell in library.cells():
                weaker = [
                    v for v in library.variants(cell.function)
                    if v.drive < cell.drive
                ]
                table[cell.name] = weaker[-1] if weaker else None
            _DOWNGRADES[library] = table
    return table


def sizing_neighbors(library: TechLibrary) -> dict[str, tuple[str, ...]]:
    """``{lib_cell name -> every other drive variant of its function}``.

    The move vocabulary of the design-space explorer
    (:mod:`repro.synth.explore`): for each library cell, the names of
    the same-function variants it could be rebound to, in the library's
    weakest-first ``variants`` order.  Cells with a single drive
    strength map to an empty tuple.  Built once per library object
    (same memo discipline as :func:`upgrade_table`).
    """
    with _TABLE_LOCK:
        table = _NEIGHBORS.get(library)
        if table is None:
            table = {
                cell.name: tuple(
                    v.name
                    for v in library.variants(cell.function)
                    if v.name != cell.name
                )
                for cell in library.cells()
            }
            _NEIGHBORS[library] = table
    return table


class PassContext:
    """Shared state for one compile flow over one netlist.

    Owns the single :class:`TimingEngine` (and with it the SoA lowering +
    kernel) that every timing-driven pass uses; the engine follows the
    netlist's change journal, so pass-to-pass handoff is incremental
    instead of a rebuild.  ``fast`` selects the vectorized candidate
    loops; it reads ``REPRO_FAST_OPT`` per access unless overridden, so a
    context built before an environment flip still honors it.
    """

    __slots__ = (
        "netlist", "library", "wireload", "constraints", "engine", "_fast",
    )

    def __init__(
        self,
        netlist: Netlist,
        library: TechLibrary,
        wireload: WireLoadModel,
        constraints: Constraints,
        engine: TimingEngine | None = None,
        fast: bool | None = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.wireload = wireload
        self.constraints = constraints
        self.engine = engine if engine is not None else TimingEngine(
            netlist, library, wireload, constraints
        )
        self._fast = fast

    @property
    def fast(self) -> bool:
        """Whether passes should take their vectorized candidate loops."""
        if self._fast is not None:
            return self._fast
        return fast_opt_enabled()

    def upgrade_table(self) -> dict[str, LibCell | None]:
        return upgrade_table(self.library)

    def downgrade_table(self) -> dict[str, LibCell | None]:
        return downgrade_table(self.library)
