"""Design constraints (SDC-style) consumed by the timing engine."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Constraints"]


@dataclass
class Constraints:
    """Timing and design-rule constraints for one synthesis run.

    Attributes:
        clock_period: ns; paths are timed against this (required time).
        clock_name: the clock's logical name.
        clock_port: the primary-input net the clock arrives on.
        input_delay: external arrival time added to primary inputs, ns.
        output_delay: external required-time margin at primary outputs, ns.
        max_area: area target in um^2 (0 = unconstrained, DC convention).
        max_fanout: design-rule fanout limit (None = unconstrained).
        clock_uncertainty: ns subtracted from the required time.
        input_drive_res: drive resistance assumed for external drivers of
            primary inputs (kOhm); makes input-net load cost real delay.
        per_input_delay / per_output_delay: port-specific overrides.
    """

    clock_period: float = 1.0
    clock_name: str = "clk"
    clock_port: str | None = None
    input_delay: float = 0.0
    output_delay: float = 0.0
    max_area: float | None = None
    max_fanout: int | None = None
    clock_uncertainty: float = 0.0
    input_drive_res: float = 4.0
    per_input_delay: dict[str, float] = field(default_factory=dict)
    per_output_delay: dict[str, float] = field(default_factory=dict)

    def arrival_offset(self, input_net: str) -> float:
        return self.per_input_delay.get(input_net, self.input_delay)

    def required_margin(self, output_net: str) -> float:
        return self.per_output_delay.get(output_net, self.output_delay)

    @property
    def effective_period(self) -> float:
        return self.clock_period - self.clock_uncertainty

    def copy(self) -> "Constraints":
        return Constraints(
            clock_period=self.clock_period,
            clock_name=self.clock_name,
            clock_port=self.clock_port,
            input_delay=self.input_delay,
            output_delay=self.output_delay,
            max_area=self.max_area,
            max_fanout=self.max_fanout,
            clock_uncertainty=self.clock_uncertainty,
            input_drive_res=self.input_drive_res,
            per_input_delay=dict(self.per_input_delay),
            per_output_delay=dict(self.per_output_delay),
        )
