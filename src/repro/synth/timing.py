"""Static timing analysis over mapped (or generic) netlists.

Single-corner setup analysis with ideal clocks:

* launch points: primary inputs (arrival = input delay) and DFF outputs
  (arrival = clk-to-q);
* propagation: ``arrival(out) = max(arrival(in)) + delay(cell, load)`` in
  topological order, with net loads from sink pin capacitance plus the
  wireload model;
* endpoints: DFF data pins (required = period - setup) and primary outputs
  (required = period - output delay).

Metrics follow the paper's Table III/IV columns: **CPS** is the slack of
the most critical path (may be positive), **WNS** is the worst *negative*
slack (0.0 when timing is met), **TNS** sums negative endpoint slacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.netlist import Cell, Netlist
from .library import LibCell, TechLibrary
from .sdc import Constraints
from .wireload import WireLoadModel

__all__ = ["PathPoint", "TimingPath", "TimingReport", "TimingEngine"]


@dataclass(frozen=True)
class PathPoint:
    """One hop on a timing path."""

    cell: str  # cell name, or "<port>" for launch/capture ports
    net: str
    incr: float
    arrival: float


@dataclass
class TimingPath:
    """A startpoint->endpoint data path with its timing verdict."""

    startpoint: str
    endpoint: str
    points: list[PathPoint] = field(default_factory=list)
    arrival: float = 0.0
    required: float = 0.0

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def depth(self) -> int:
        return len(self.points)


@dataclass
class TimingReport:
    """Design-level timing summary."""

    wns: float
    cps: float
    tns: float
    num_endpoints: int
    num_violations: int
    critical_path: TimingPath | None
    endpoint_slacks: dict[str, float] = field(default_factory=dict)

    @property
    def met(self) -> bool:
        return self.num_violations == 0


class TimingEngine:
    """Setup-time STA for one netlist under one set of constraints."""

    def __init__(
        self,
        netlist: Netlist,
        library: TechLibrary,
        wireload: WireLoadModel,
        constraints: Constraints,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.wireload = wireload
        self.constraints = constraints

    # -- electrical model ---------------------------------------------------------

    def _bound_cell(self, cell: Cell) -> LibCell:
        if cell.lib_cell is not None and cell.lib_cell in self.library:
            return self.library.cell(cell.lib_cell)
        return self.library.weakest(cell.gate)

    def net_load(self, net_name: str) -> float:
        """Total load in fF: sink pin caps + wireload estimate."""
        net = self.netlist.nets[net_name]
        pin_cap = 0.0
        fanout = 0
        for sink_name in net.sinks:
            sink = self.netlist.cells[sink_name]
            lib = self._bound_cell(sink)
            pins = sink.inputs.count(net_name)
            if sink.attrs.get("clock") == net_name:
                pins += 1
            pin_cap += pins * lib.input_cap
            fanout += pins
        if net.is_output:
            fanout += 1
            pin_cap += 2.0  # assumed external pin load
        return pin_cap + self.wireload.capacitance(fanout)

    def cell_delay(self, cell: Cell) -> float:
        """Delay of ``cell`` driving its output net."""
        if cell.gate in ("CONST0", "CONST1"):
            return 0.0
        lib = self._bound_cell(cell)
        if cell.is_sequential:
            return lib.clk_to_q + lib.drive_res * self.net_load(cell.output) / 1000.0
        return lib.delay(self.net_load(cell.output))

    # -- analysis --------------------------------------------------------------------

    def _is_clock_net(self, net_name: str) -> bool:
        net = self.netlist.nets[net_name]
        if self.constraints.clock_port is not None:
            return net_name == self.constraints.clock_port
        return net.is_clock

    def analyze(self, with_paths: bool = True) -> TimingReport:
        """Run STA; returns the design-level :class:`TimingReport`."""
        arrivals: dict[str, float] = {}
        predecessor: dict[str, tuple[str, str] | None] = {}

        for name in self.netlist.primary_inputs:
            if self._is_clock_net(name):
                continue
            # The external driver is not free: charge its drive resistance
            # against the input net's load so port fanout costs delay.
            drive = self.constraints.input_drive_res * self.net_load(name) / 1000.0
            arrivals[name] = self.constraints.arrival_offset(name) + drive
            predecessor[name] = None
        for cell in self.netlist.cells.values():
            if cell.is_sequential:
                arrivals[cell.output] = self.cell_delay(cell)
                predecessor[cell.output] = None
            elif cell.gate in ("CONST0", "CONST1"):
                arrivals[cell.output] = 0.0
                predecessor[cell.output] = None

        for cell in self.netlist.topological_cells():
            if cell.gate in ("CONST0", "CONST1"):
                continue
            worst_in = None
            worst_arrival = 0.0
            for net_in in cell.inputs:
                arr = arrivals.get(net_in, 0.0)
                if worst_in is None or arr > worst_arrival:
                    worst_in, worst_arrival = net_in, arr
            delay = self.cell_delay(cell)
            arrivals[cell.output] = worst_arrival + delay
            predecessor[cell.output] = (cell.name, worst_in) if worst_in else None

        period = self.constraints.effective_period
        endpoint_slacks: dict[str, float] = {}
        endpoint_required: dict[str, float] = {}
        endpoint_net: dict[str, str] = {}
        for name in self.netlist.primary_outputs:
            required = period - self.constraints.required_margin(name)
            arrival = arrivals.get(name, 0.0)
            endpoint_slacks[f"out:{name}"] = required - arrival
            endpoint_required[f"out:{name}"] = required
            endpoint_net[f"out:{name}"] = name
        for cell in self.netlist.cells.values():
            if not cell.is_sequential:
                continue
            lib = self._bound_cell(cell)
            data_net = cell.inputs[0]
            required = period - lib.setup
            arrival = arrivals.get(data_net, 0.0)
            key = f"reg:{cell.name}"
            endpoint_slacks[key] = required - arrival
            endpoint_required[key] = required
            endpoint_net[key] = data_net

        if not endpoint_slacks:
            return TimingReport(
                wns=0.0, cps=0.0, tns=0.0, num_endpoints=0,
                num_violations=0, critical_path=None,
            )

        worst_key = min(endpoint_slacks, key=endpoint_slacks.get)
        cps = endpoint_slacks[worst_key]
        wns = min(cps, 0.0)
        tns = sum(min(s, 0.0) for s in endpoint_slacks.values())
        violations = sum(1 for s in endpoint_slacks.values() if s < 0)

        critical = None
        if with_paths:
            critical = self._trace_path(
                endpoint_net[worst_key],
                worst_key,
                arrivals,
                predecessor,
                endpoint_required[worst_key],
            )
        return TimingReport(
            wns=round(wns, 4),
            cps=round(cps, 4),
            tns=round(tns, 4),
            num_endpoints=len(endpoint_slacks),
            num_violations=violations,
            critical_path=critical,
            endpoint_slacks=endpoint_slacks,
        )

    def _trace_path(
        self,
        end_net: str,
        endpoint: str,
        arrivals: dict[str, float],
        predecessor: dict[str, tuple[str, str] | None],
        required: float,
    ) -> TimingPath:
        points: list[PathPoint] = []
        net = end_net
        while True:
            pred = predecessor.get(net)
            arrival = arrivals.get(net, 0.0)
            if pred is None:
                points.append(PathPoint(cell="<launch>", net=net, incr=arrival, arrival=arrival))
                break
            cell_name, prev_net = pred
            incr = arrival - arrivals.get(prev_net, 0.0)
            points.append(PathPoint(cell=cell_name, net=net, incr=incr, arrival=arrival))
            net = prev_net
        points.reverse()
        return TimingPath(
            startpoint=points[0].net,
            endpoint=endpoint,
            points=points,
            arrival=arrivals.get(end_net, 0.0),
            required=required,
        )

    # -- aggregate metrics used by reports/power -----------------------------------------

    def total_area(self) -> float:
        return sum(
            self._bound_cell(c).area
            for c in self.netlist.cells.values()
            if c.gate not in ("CONST0", "CONST1")
        )

    def total_leakage(self) -> float:
        """Leakage power in nW."""
        return sum(
            self._bound_cell(c).leakage
            for c in self.netlist.cells.values()
            if c.gate not in ("CONST0", "CONST1")
        )

    def dynamic_power(self, activity: float = 0.1, voltage: float = 1.1) -> float:
        """Switching power estimate in uW: alpha * C * V^2 * f."""
        total_cap_ff = sum(self.net_load(n) for n in self.netlist.nets)
        freq_ghz = 1.0 / max(self.constraints.clock_period, 1e-9)
        # fF * V^2 * GHz = uW
        return activity * total_cap_ff * voltage**2 * freq_ghz
