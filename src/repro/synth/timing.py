"""Static timing analysis over mapped (or generic) netlists.

Single-corner setup analysis with ideal clocks:

* launch points: primary inputs (arrival = input delay) and DFF outputs
  (arrival = clk-to-q);
* propagation: ``arrival(out) = max(arrival(in)) + delay(cell, load)`` in
  topological order, with net loads from sink pin capacitance plus the
  wireload model;
* endpoints: DFF data pins (required = period - setup) and primary outputs
  (required = period - output delay).

Metrics follow the paper's Table III/IV columns: **CPS** is the slack of
the most critical path (may be positive), **WNS** is the worst *negative*
slack (0.0 when timing is met), **TNS** sums negative endpoint slacks.

Incremental analysis
--------------------

The engine memoizes per-net loads, per-cell bound library cells and the
full arrival/endpoint state, and subscribes to the netlist's change
journal (:mod:`repro.hdl.netlist`).  When the only changes since the last
``analyze()`` are cell *resizes* (``lib_cell`` rebinds — the gate-sizing
hot loop), arrivals are re-propagated only through the downstream cone of
the dirtied nets; structural edits, constraint changes or a trimmed
journal fall back to a full rebuild.  The contract is exact parity:
``analyze()`` returns bit-for-bit the same WNS/CPS/TNS/endpoint slacks as
:meth:`TimingEngine.full_analyze`, because untouched values are reused
verbatim and touched values are recomputed with the same expressions in
the same order.

Vectorized mode
---------------

With ``REPRO_VECTOR_STA`` unset or ``1`` (the default) the engine runs
arrival propagation and slack reduction through the structure-of-arrays
kernels in :mod:`repro.synth.soa` — the same contract, array-speed.  Full
rebuilds lower the netlist once (cached per netlist across engines) and
propagate level-by-level; journal resizes rebind one library row and
re-run only the dirtied levels.  ``REPRO_VECTOR_STA=0`` restores the
scalar engine below.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .. import obs, perf
from ..hdl.netlist import Cell, Netlist
from . import soa
from .library import LibCell, TechLibrary
from .sdc import Constraints
from .wireload import WireLoadModel

__all__ = ["PathPoint", "TimingPath", "TimingReport", "TimingEngine"]

_CONSTS = ("CONST0", "CONST1")

#: Buckets for the trial-batch width histogram (lanes per kernel sweep).
_TRIAL_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _observe_trial_batch(lanes: int) -> None:
    """Record one trial-batch width on the live metrics endpoint."""
    from ..obs import metrics

    metrics.histogram(
        "repro_trial_batch_size",
        "Lanes per TimingEngine trial batch (hypothetical rebinds per sweep)",
        buckets=_TRIAL_BATCH_BUCKETS,
    ).observe(float(lanes))


@dataclass(frozen=True, slots=True)
class PathPoint:
    """One hop on a timing path."""

    cell: str  # cell name, or "<port>" for launch/capture ports
    net: str
    incr: float
    arrival: float


@dataclass
class TimingPath:
    """A startpoint->endpoint data path with its timing verdict."""

    startpoint: str
    endpoint: str
    points: list[PathPoint] = field(default_factory=list)
    arrival: float = 0.0
    required: float = 0.0

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def depth(self) -> int:
        return len(self.points)


@dataclass
class TimingReport:
    """Design-level timing summary."""

    wns: float
    cps: float
    tns: float
    num_endpoints: int
    num_violations: int
    critical_path: TimingPath | None
    endpoint_slacks: dict[str, float] = field(default_factory=dict)

    @property
    def met(self) -> bool:
        return self.num_violations == 0


class TimingEngine:
    """Setup-time STA for one netlist under one set of constraints.

    The engine may be kept alive across netlist mutations: ``analyze()``
    consults the netlist journal and updates incrementally when it can.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: TechLibrary,
        wireload: WireLoadModel,
        constraints: Constraints,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.wireload = wireload
        self.constraints = constraints
        # memoized electrical state (journal-invalidated)
        self._loads: dict[str, float] = {}
        self._bound: dict[str, LibCell] = {}
        # memoized analysis state; _arrivals is None until the first full pass
        self._arrivals: dict[str, float] | None = None
        self._pred: dict[str, tuple[str, str] | None] = {}
        self._ep_slack: dict[str, float] = {}
        self._ep_required: dict[str, float] = {}
        self._ep_net: dict[str, str] = {}
        self._topo_index: dict[str, int] = {}
        self._cursor: int | None = None
        self._pending_resizes: set[str] = set()
        self._env_sig: tuple | None = None
        # trial evaluations fold resizes into the vector kernel without
        # materializing the endpoint dicts; analyze() refreshes them lazily
        self._endpoints_stale = False
        # vectorized (structure-of-arrays) analysis state; the mode is
        # latched at construction so one engine never mixes kernels
        self._use_vector = soa.vector_sta_enabled()
        self._kernel: soa.SoAKernel | None = None

    # -- electrical model ---------------------------------------------------------

    def _bound_of(self, cell: Cell) -> LibCell:
        cached = self._bound.get(cell.name)
        if cached is not None:
            return cached
        if cell.lib_cell is not None and cell.lib_cell in self.library:
            lib = self.library.cell(cell.lib_cell)
        else:
            lib = self.library.weakest(cell.gate)
        self._bound[cell.name] = lib
        return lib

    def _bound_cell(self, cell: Cell) -> LibCell:
        self._sync()
        return self._bound_of(cell)

    def _compute_net_load(self, net_name: str) -> float:
        net = self.netlist.nets[net_name]
        pin_cap = 0.0
        fanout = 0
        for sink_name in net.sinks:
            sink = self.netlist.cells[sink_name]
            lib = self._bound_of(sink)
            pins = sink.inputs.count(net_name)
            if sink.attrs.get("clock") == net_name:
                pins += 1
            pin_cap += pins * lib.input_cap
            fanout += pins
        if net.is_output:
            fanout += 1
            pin_cap += 2.0  # assumed external pin load
        return pin_cap + self.wireload.capacitance(fanout)

    def _load_of(self, net_name: str) -> float:
        load = self._loads.get(net_name)
        if load is None:
            load = self._compute_net_load(net_name)
            self._loads[net_name] = load
        return load

    def net_load(self, net_name: str) -> float:
        """Total load in fF: sink pin caps + wireload estimate."""
        self._sync()
        return self._load_of(net_name)

    def _delay_of(self, cell: Cell) -> float:
        if cell.gate in _CONSTS:
            return 0.0
        lib = self._bound_of(cell)
        if cell.is_sequential:
            return lib.clk_to_q + lib.drive_res * self._load_of(cell.output) / 1000.0
        return lib.delay(self._load_of(cell.output))

    def cell_delay(self, cell: Cell) -> float:
        """Delay of ``cell`` driving its output net."""
        self._sync()
        return self._delay_of(cell)

    # -- journal synchronisation -----------------------------------------------------

    def _env_signature(self) -> tuple:
        c = self.constraints
        return (
            id(self.netlist),
            id(self.library),
            id(self.wireload),
            c.clock_period,
            c.clock_name,
            c.clock_port,
            c.input_delay,
            c.output_delay,
            c.clock_uncertainty,
            c.input_drive_res,
            tuple(sorted(c.per_input_delay.items())),
            tuple(sorted(c.per_output_delay.items())),
        )

    def _invalidate(self) -> None:
        self._loads.clear()
        self._bound.clear()
        self._arrivals = None
        self._pred = {}
        self._ep_slack = {}
        self._ep_required = {}
        self._ep_net = {}
        self._topo_index = {}
        self._pending_resizes.clear()
        self._kernel = None
        self._endpoints_stale = False

    def _sync(self) -> None:
        """Fold journal events (and environment changes) into the caches."""
        sig = self._env_signature()
        if sig != self._env_sig:
            self._env_sig = sig
            self._invalidate()
            self._cursor = self.netlist.version
            return
        if self._cursor is None:
            self._invalidate()
            self._cursor = self.netlist.version
            return
        if self._cursor == self.netlist.version:
            return
        events = self.netlist.journal_since(self._cursor)
        self._cursor = self.netlist.version
        if events is None:
            self._invalidate()
            return
        resized: list[str] = []
        for kind, name in events:
            if kind == "structure":
                self._invalidate()
                return
            resized.append(name)
        for name in resized:
            cell = self.netlist.cells.get(name)
            if cell is None:  # resize of a since-removed cell implies structure
                self._invalidate()
                return
            self._bound.pop(name, None)
            # the cell's pin caps changed: loads of the nets it reads are stale
            for net_in in cell.inputs:
                self._loads.pop(net_in, None)
            clock = cell.attrs.get("clock")
            if clock is not None:
                self._loads.pop(clock, None)
            self._pending_resizes.add(name)

    # -- analysis --------------------------------------------------------------------

    def _is_clock_net(self, net_name: str) -> bool:
        net = self.netlist.nets[net_name]
        if self.constraints.clock_port is not None:
            return net_name == self.constraints.clock_port
        return net.is_clock

    def analyze(self, with_paths: bool = True) -> TimingReport:
        """Run STA; returns the design-level :class:`TimingReport`.

        Uses the incremental path when only resize events occurred since
        the previous call; otherwise rebuilds from scratch.
        """
        self._sync()
        if self._use_vector:
            if self._kernel is None:
                perf.incr("sta.full")
                with obs.span(
                    "synth.sta",
                    mode="full",
                    engine="vector",
                    cells=len(self.netlist.cells),
                ):
                    self._vector_rebuild()
            elif self._pending_resizes:
                resized = self._pending_resizes
                self._pending_resizes = set()
                perf.incr("sta.incremental")
                with obs.span(
                    "synth.sta",
                    mode="incremental",
                    engine="vector",
                    resized=len(resized),
                ):
                    self._kernel.update_resizes(resized)
                    self._materialize_endpoints()
            else:
                perf.incr("sta.cached")
                if self._endpoints_stale:
                    # a trial_cps() folded resizes into the kernel arrays;
                    # only the report dicts need refreshing
                    self._materialize_endpoints()
            return self._build_report(with_paths)
        if self._arrivals is None:
            perf.incr("sta.full")
            with obs.span("synth.sta", mode="full", cells=len(self.netlist.cells)):
                self._full_rebuild()
        elif self._pending_resizes:
            perf.incr("sta.incremental")
            with obs.span(
                "synth.sta", mode="incremental", resized=len(self._pending_resizes)
            ):
                self._incremental_update(self._pending_resizes)
            self._pending_resizes = set()
        else:
            perf.incr("sta.cached")
        return self._build_report(with_paths)

    def full_analyze(self, with_paths: bool = True) -> TimingReport:
        """Run STA from scratch, ignoring all memoized analysis state.

        The exact-parity reference for :meth:`analyze`; also the explicit
        fallback when callers mutate state behind the journal's back.
        """
        self._sync()
        self._invalidate()
        perf.incr("sta.full")
        if self._use_vector:
            self._vector_rebuild()
        else:
            self._full_rebuild()
        return self._build_report(with_paths)

    # -- full propagation --------------------------------------------------------

    def _full_rebuild(self) -> None:
        arrivals: dict[str, float] = {}
        predecessor: dict[str, tuple[str, str] | None] = {}

        for name in self.netlist.primary_inputs:
            if self._is_clock_net(name):
                continue
            # The external driver is not free: charge its drive resistance
            # against the input net's load so port fanout costs delay.
            drive = self.constraints.input_drive_res * self._load_of(name) / 1000.0
            arrivals[name] = self.constraints.arrival_offset(name) + drive
            predecessor[name] = None
        for cell in self.netlist.cells.values():
            if cell.is_sequential:
                arrivals[cell.output] = self._delay_of(cell)
                predecessor[cell.output] = None
            elif cell.gate in _CONSTS:
                arrivals[cell.output] = 0.0
                predecessor[cell.output] = None

        topo = self.netlist.topological_cells()
        self._topo_index = {cell.name: i for i, cell in enumerate(topo)}
        for cell in topo:
            if cell.gate in _CONSTS:
                continue
            worst_in = None
            worst_arrival = 0.0
            for net_in in cell.inputs:
                arr = arrivals.get(net_in, 0.0)
                if worst_in is None or arr > worst_arrival:
                    worst_in, worst_arrival = net_in, arr
            delay = self._delay_of(cell)
            arrivals[cell.output] = worst_arrival + delay
            predecessor[cell.output] = (cell.name, worst_in) if worst_in else None

        period = self.constraints.effective_period
        endpoint_slacks: dict[str, float] = {}
        endpoint_required: dict[str, float] = {}
        endpoint_net: dict[str, str] = {}
        for name in self.netlist.primary_outputs:
            required = period - self.constraints.required_margin(name)
            arrival = arrivals.get(name, 0.0)
            endpoint_slacks[f"out:{name}"] = required - arrival
            endpoint_required[f"out:{name}"] = required
            endpoint_net[f"out:{name}"] = name
        for cell in self.netlist.cells.values():
            if not cell.is_sequential:
                continue
            lib = self._bound_of(cell)
            data_net = cell.inputs[0]
            required = period - lib.setup
            arrival = arrivals.get(data_net, 0.0)
            key = f"reg:{cell.name}"
            endpoint_slacks[key] = required - arrival
            endpoint_required[key] = required
            endpoint_net[key] = data_net

        self._arrivals = arrivals
        self._pred = predecessor
        self._ep_slack = endpoint_slacks
        self._ep_required = endpoint_required
        self._ep_net = endpoint_net
        self._pending_resizes = set()

    # -- vectorized propagation ----------------------------------------------------

    def _vector_rebuild(self) -> None:
        """Lower to SoA arrays (cached per netlist) and run the full kernel."""
        kernel = soa.SoAKernel(
            self.netlist, self.library, self.wireload, self.constraints
        )
        kernel.run_full()
        self._kernel = kernel
        self._materialize_endpoints()
        self._pending_resizes = set()

    def _materialize_endpoints(self) -> None:
        """Convert kernel endpoint arrays into the scalar report dicts.

        Keys are inserted in exactly the scalar rebuild's order (primary
        outputs, then sequential cells in definition order) so the shared
        report reductions — ``min`` tie-breaks, the sequential ``tns``
        sum — are bit-identical across modes.
        """
        kernel = self._kernel
        s = kernel.s
        (po_names, po_req, po_slack,
         reg_names, reg_req, reg_slack) = kernel.endpoint_arrays()
        ep_slack: dict[str, float] = {}
        ep_required: dict[str, float] = {}
        ep_net: dict[str, str] = {}
        for name, req, slack in zip(po_names, po_req.tolist(), po_slack.tolist()):
            key = f"out:{name}"
            ep_slack[key] = slack
            ep_required[key] = req
            ep_net[key] = name
        reg_d = [s.net_names[ni] for ni in s.seq_d.tolist()]
        for name, req, slack, data_net in zip(
            reg_names, reg_req.tolist(), reg_slack.tolist(), reg_d
        ):
            key = f"reg:{name}"
            ep_slack[key] = slack
            ep_required[key] = req
            ep_net[key] = data_net
        self._ep_slack = ep_slack
        self._ep_required = ep_required
        self._ep_net = ep_net
        self._endpoints_stale = False

    def _vector_pred(self, net_name: str) -> tuple[str, str] | None:
        """Lazy predecessor lookup over kernel arrivals for path tracing.

        Replicates the scalar propagation's first-strictly-greater
        worst-input choice, so traced paths match the scalar engine's.
        """
        net = self.netlist.nets.get(net_name)
        if net is None or net.driver is None:
            return None
        cell = self.netlist.cells[net.driver]
        if cell.is_sequential or cell.gate in _CONSTS:
            return None
        kernel = self._kernel
        worst_in = None
        worst_arrival = 0.0
        for net_in in cell.inputs:
            arr = kernel.arrival_of(net_in)
            if worst_in is None or arr > worst_arrival:
                worst_in, worst_arrival = net_in, arr
        return (cell.name, worst_in) if worst_in else None

    def _vector_trace_path(
        self, end_net: str, endpoint: str, required: float
    ) -> TimingPath:
        kernel = self._kernel
        points: list[PathPoint] = []
        net = end_net
        while True:
            pred = self._vector_pred(net)
            arrival = kernel.arrival_of(net)
            if pred is None:
                points.append(
                    PathPoint(cell="<launch>", net=net, incr=arrival, arrival=arrival)
                )
                break
            cell_name, prev_net = pred
            incr = arrival - kernel.arrival_of(prev_net)
            points.append(PathPoint(cell=cell_name, net=net, incr=incr, arrival=arrival))
            net = prev_net
        points.reverse()
        return TimingPath(
            startpoint=points[0].net,
            endpoint=endpoint,
            points=points,
            arrival=kernel.arrival_of(end_net),
            required=required,
        )

    # -- trial evaluation ----------------------------------------------------------

    def trial_cps(self) -> float:
        """Worst endpoint slack after folding pending resizes — no report.

        Bit-identical to ``analyze(with_paths=False).cps``, but skips
        endpoint-dict materialization, report assembly and path tracing:
        the per-trial hot path of the optimization passes.  In vector mode
        the verdict is a single array reduction; the next ``analyze()``
        refreshes the endpoint dicts from the (already current) kernel.
        """
        self._sync()
        if self._use_vector:
            if self._kernel is None:
                perf.incr("sta.full")
                self._vector_rebuild()
            elif self._pending_resizes:
                resized = self._pending_resizes
                self._pending_resizes = set()
                perf.incr("sta.incremental")
                self._kernel.update_resizes(resized)
                self._endpoints_stale = True
            else:
                perf.incr("sta.cached")
            return self._kernel.committed_cps()
        if self._arrivals is None:
            perf.incr("sta.full")
            self._full_rebuild()
        elif self._pending_resizes:
            perf.incr("sta.incremental")
            self._incremental_update(self._pending_resizes)
            self._pending_resizes = set()
        else:
            perf.incr("sta.cached")
        if not self._ep_slack:
            return 0.0
        return round(min(self._ep_slack.values()), 4)

    def trial_cps_batch(self, trials) -> list[float]:
        """CPS verdicts for hypothetical cell rebinds.

        ``trials`` is a sequence of lanes, each one
        ``(cell_name, lib_cell_name)`` pair or a list of such pairs (a
        grouped rebind evaluated as if committed together), evaluated
        independently against the current committed state.  In vector
        mode the whole batch runs as one 2-D kernel sweep with no side
        effects on the netlist or the committed arrays; the scalar engine
        falls back to journal-driven apply/evaluate/revert.  Either way
        entry ``i`` is bit-identical to rebinding ``trials[i]`` alone and
        reading ``analyze(with_paths=False).cps``.
        """
        if not trials:
            return []
        _observe_trial_batch(len(trials))
        self._sync()
        if self._use_vector:
            if self._kernel is None:
                perf.incr("sta.full")
                self._vector_rebuild()
            elif self._pending_resizes:
                resized = self._pending_resizes
                self._pending_resizes = set()
                perf.incr("sta.incremental")
                self._kernel.update_resizes(resized)
                self._endpoints_stale = True
            return self._kernel.trial_cps_batch(trials)
        cells = self.netlist.cells
        results: list[float] = []
        for lane in trials:
            perf.incr("sta.trial")
            rebinds = [lane] if isinstance(lane[0], str) else list(lane)
            previous = [(cells[name], cells[name].lib_cell) for name, _ in rebinds]
            for name, lib_name in rebinds:
                cells[name].lib_cell = lib_name
            results.append(self.trial_cps())
            # the reverts are journaled and folded into the next evaluation
            for cell, prev in previous:
                cell.lib_cell = prev
        return results

    def trial_metrics_batch(self, trials) -> list[tuple[float, float]]:
        """``(CPS, total area)`` verdicts for hypothetical cell rebinds.

        Same lane format as :meth:`trial_cps_batch` — each lane one
        ``(cell_name, lib_cell_name)`` pair or a list of such pairs
        evaluated as if committed together.  Entry ``i`` is bit-identical
        to rebinding ``trials[i]`` alone and reading
        ``(analyze(with_paths=False).cps, total_area())``.  In vector
        mode the whole batch is one side-effect-free kernel sweep (CPS)
        plus a patched-row area fold; the scalar engine falls back to
        journal-driven apply/evaluate/revert.  This is the scoring path
        of the design-space explorer (:mod:`repro.synth.explore`).
        """
        if not trials:
            return []
        _observe_trial_batch(len(trials))
        self._sync()
        if self._use_vector:
            if self._kernel is None:
                perf.incr("sta.full")
                self._vector_rebuild()
            elif self._pending_resizes:
                resized = self._pending_resizes
                self._pending_resizes = set()
                perf.incr("sta.incremental")
                self._kernel.update_resizes(resized)
                self._endpoints_stale = True
            return self._kernel.trial_metrics_batch(trials)
        cells = self.netlist.cells
        results: list[tuple[float, float]] = []
        for lane in trials:
            perf.incr("sta.trial")
            rebinds = [lane] if isinstance(lane[0], str) else list(lane)
            previous = [(cells[name], cells[name].lib_cell) for name, _ in rebinds]
            for name, lib_name in rebinds:
                cells[name].lib_cell = lib_name
            results.append((self.trial_cps(), self.total_area()))
            # the reverts are journaled and folded into the next evaluation
            for cell, prev in previous:
                cell.lib_cell = prev
        return results

    # -- incremental propagation ---------------------------------------------------

    def _incremental_update(self, resized: set[str]) -> None:
        """Re-propagate arrivals through the downstream cone of resizes.

        Only valid when the netlist structure (and thus the cached
        topological order) is unchanged since the last rebuild.
        """
        arrivals = self._arrivals
        assert arrivals is not None
        cells = self.netlist.cells
        nets = self.netlist.nets
        topo_index = self._topo_index
        period = self.constraints.effective_period

        heap: list[tuple[int, str]] = []
        queued: set[str] = set()

        def queue_cell(name: str) -> None:
            if name not in queued:
                queued.add(name)
                heapq.heappush(heap, (topo_index[name], name))

        def refresh_endpoint(key: str) -> None:
            self._ep_slack[key] = self._ep_required[key] - arrivals.get(
                self._ep_net[key], 0.0
            )

        def on_net_changed(net_name: str) -> None:
            net = nets[net_name]
            for sink_name in net.sinks:
                sink = cells[sink_name]
                if sink.is_sequential:
                    if sink.inputs and sink.inputs[0] == net_name:
                        refresh_endpoint(f"reg:{sink_name}")
                    continue  # clock pins do not propagate data arrivals
                if sink.gate in _CONSTS:
                    continue
                queue_cell(sink_name)
            if net.is_output:
                refresh_endpoint(f"out:{net_name}")

        def refresh_source(net_name: str) -> None:
            """Recompute the arrival at a net produced by a non-combinational
            source (port / register / constant) after its load changed."""
            driver = nets[net_name].driver
            if driver is None:
                if net_name in arrivals and not self._is_clock_net(net_name):
                    drive = (
                        self.constraints.input_drive_res
                        * self._load_of(net_name)
                        / 1000.0
                    )
                    new = self.constraints.arrival_offset(net_name) + drive
                    if new != arrivals[net_name]:
                        arrivals[net_name] = new
                        on_net_changed(net_name)
                return
            cell = cells[driver]
            if cell.gate in _CONSTS:
                return  # constants launch at 0.0 regardless of load
            if cell.is_sequential:
                new = self._delay_of(cell)
                if new != arrivals[net_name]:
                    arrivals[net_name] = new
                    on_net_changed(net_name)
                return
            queue_cell(driver)

        # Seed: nets whose load changed (the resized cells' input pins) need
        # their sources re-timed; the resized cells themselves need their own
        # delay re-applied; resized registers also shift their setup check.
        affected_nets: set[str] = set()
        for name in resized:
            cell = cells[name]
            affected_nets.update(cell.inputs)
            clock = cell.attrs.get("clock")
            if clock is not None:
                affected_nets.add(clock)
        for net_name in affected_nets:
            refresh_source(net_name)
        for name in resized:
            cell = cells[name]
            if cell.gate in _CONSTS:
                continue
            if cell.is_sequential:
                key = f"reg:{name}"
                self._ep_required[key] = period - self._bound_of(cell).setup
                refresh_endpoint(key)
                new = self._delay_of(cell)
                if new != arrivals[cell.output]:
                    arrivals[cell.output] = new
                    on_net_changed(cell.output)
            else:
                queue_cell(name)

        recomputed = 0
        while heap:
            _, name = heapq.heappop(heap)
            cell = cells[name]
            worst_in = None
            worst_arrival = 0.0
            for net_in in cell.inputs:
                arr = arrivals.get(net_in, 0.0)
                if worst_in is None or arr > worst_arrival:
                    worst_in, worst_arrival = net_in, arr
            new_arrival = worst_arrival + self._delay_of(cell)
            new_pred = (name, worst_in) if worst_in else None
            out = cell.output
            recomputed += 1
            if new_arrival != arrivals.get(out) or new_pred != self._pred.get(out):
                arrivals[out] = new_arrival
                self._pred[out] = new_pred
                on_net_changed(out)
        perf.incr("sta.cells_recomputed", recomputed)

    # -- report assembly -----------------------------------------------------------

    def _build_report(self, with_paths: bool) -> TimingReport:
        perf.incr("sta.report")
        endpoint_slacks = self._ep_slack
        if not endpoint_slacks:
            return TimingReport(
                wns=0.0, cps=0.0, tns=0.0, num_endpoints=0,
                num_violations=0, critical_path=None,
            )
        worst_key = min(endpoint_slacks, key=endpoint_slacks.get)
        cps = endpoint_slacks[worst_key]
        wns = min(cps, 0.0)
        tns = sum(min(s, 0.0) for s in endpoint_slacks.values())
        violations = sum(1 for s in endpoint_slacks.values() if s < 0)

        critical = None
        if with_paths:
            if self._use_vector and self._kernel is not None:
                critical = self._vector_trace_path(
                    self._ep_net[worst_key],
                    worst_key,
                    self._ep_required[worst_key],
                )
            else:
                critical = self._trace_path(
                    self._ep_net[worst_key],
                    worst_key,
                    self._arrivals,
                    self._pred,
                    self._ep_required[worst_key],
                )
        return TimingReport(
            wns=round(wns, 4),
            cps=round(cps, 4),
            tns=round(tns, 4),
            num_endpoints=len(endpoint_slacks),
            num_violations=violations,
            critical_path=critical,
            endpoint_slacks=dict(endpoint_slacks),
        )

    def _trace_path(
        self,
        end_net: str,
        endpoint: str,
        arrivals: dict[str, float],
        predecessor: dict[str, tuple[str, str] | None],
        required: float,
    ) -> TimingPath:
        points: list[PathPoint] = []
        net = end_net
        while True:
            pred = predecessor.get(net)
            arrival = arrivals.get(net, 0.0)
            if pred is None:
                points.append(PathPoint(cell="<launch>", net=net, incr=arrival, arrival=arrival))
                break
            cell_name, prev_net = pred
            incr = arrival - arrivals.get(prev_net, 0.0)
            points.append(PathPoint(cell=cell_name, net=net, incr=incr, arrival=arrival))
            net = prev_net
        points.reverse()
        return TimingPath(
            startpoint=points[0].net,
            endpoint=endpoint,
            points=points,
            arrival=arrivals.get(end_net, 0.0),
            required=required,
        )

    # -- aggregate metrics used by reports/power -----------------------------------------

    def total_area(self) -> float:
        self._sync()
        # Serve from the kernel's binding rows when they are current: one
        # array gather instead of a Python fold over every cell.  The
        # kernel fold is bit-identical to the scalar sum below.
        if (
            self._use_vector
            and self._kernel is not None
            and not self._pending_resizes
        ):
            return self._kernel.committed_area()
        return sum(
            self._bound_of(c).area
            for c in self.netlist.cells.values()
            if c.gate not in _CONSTS
        )

    def total_leakage(self) -> float:
        """Leakage power in nW."""
        self._sync()
        return sum(
            self._bound_of(c).leakage
            for c in self.netlist.cells.values()
            if c.gate not in _CONSTS
        )

    def dynamic_power(self, activity: float = 0.1, voltage: float = 1.1) -> float:
        """Switching power estimate in uW: alpha * C * V^2 * f."""
        self._sync()
        total_cap_ff = sum(self._load_of(n) for n in self.netlist.nets)
        freq_ghz = 1.0 / max(self.constraints.clock_period, 1e-9)
        # fF * V^2 * GHz = uW
        return activity * total_cap_ff * voltage**2 * freq_ghz
