"""In-memory property graph database with a Cypher-subset query engine.

This is the repository's Neo4j substitute (paper [28], [29]): CircuitMentor
stores the circuit hierarchy here and SynthRAG's graph-structure retrieval
runs LLM-generated Cypher queries against it.
"""

from .cypher_exec import CypherExecutionError, execute
from .cypher_parser import CypherError, Query, parse_cypher
from .store import GraphStore, GraphStoreError, NodeRecord, RelRecord

__all__ = [
    "CypherExecutionError",
    "execute",
    "CypherError",
    "Query",
    "parse_cypher",
    "GraphStore",
    "GraphStoreError",
    "NodeRecord",
    "RelRecord",
]
