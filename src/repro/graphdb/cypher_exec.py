"""Executor for the Cypher subset over a :class:`~repro.graphdb.store.GraphStore`.

Pattern matching is a straightforward backtracking search over candidate
node bindings, with breadth-bounded expansion for variable-length
relationships.  Result rows are dictionaries keyed by the RETURN item
names; node/relationship values are returned as their record objects.
"""

from __future__ import annotations

from typing import Any, Iterator

from .cypher_parser import (
    BoolExpr,
    Comparison,
    CypherError,
    FuncCall,
    Literal,
    NodePattern,
    PathPattern,
    PropertyRef,
    Query,
    RelPattern,
    ReturnItem,
    VariableRef,
    parse_cypher,
)
from .store import GraphStore, NodeRecord, RelRecord

__all__ = ["execute", "CypherExecutionError"]


class CypherExecutionError(ValueError):
    """Raised on semantically invalid queries (unknown variables etc.)."""


def execute(store: GraphStore, query: str | Query) -> list[dict[str, Any]]:
    """Run a Cypher query against ``store`` and return result rows.

    MATCH queries return one dict per match; CREATE queries mutate the
    store and return a single row mapping created variables to records.
    """
    if isinstance(query, str):
        query = parse_cypher(query)
    if query.kind == "create":
        return [_execute_create(store, query)]
    return _execute_match(store, query)


# -- CREATE ---------------------------------------------------------------------


def _execute_create(store: GraphStore, query: Query) -> dict[str, Any]:
    bindings: dict[str, Any] = {}
    for path in query.patterns:
        previous: NodeRecord | None = None
        for i, node_pat in enumerate(path.nodes):
            if node_pat.variable and node_pat.variable in bindings:
                node = bindings[node_pat.variable]
            else:
                node = store.create_node(node_pat.labels, **node_pat.properties)
                if node_pat.variable:
                    bindings[node_pat.variable] = node
            if i > 0:
                rel_pat = path.rels[i - 1]
                rel_type = rel_pat.rel_type or "RELATED"
                if rel_pat.direction == "in":
                    rel = store.create_rel(
                        node.node_id, rel_type, previous.node_id, **rel_pat.properties
                    )
                else:
                    rel = store.create_rel(
                        previous.node_id, rel_type, node.node_id, **rel_pat.properties
                    )
                if rel_pat.variable:
                    bindings[rel_pat.variable] = rel
            previous = node
    return bindings


# -- MATCH ----------------------------------------------------------------------


def _node_matches(node: NodeRecord, pattern: NodePattern) -> bool:
    if any(label not in node.labels for label in pattern.labels):
        return False
    return all(node.properties.get(k) == v for k, v in pattern.properties.items())


def _candidate_nodes(store: GraphStore, pattern: NodePattern) -> Iterator[NodeRecord]:
    label = pattern.labels[0] if pattern.labels else None
    for node in store.nodes(label):
        if _node_matches(node, pattern):
            yield node


def _expand(
    store: GraphStore,
    start: NodeRecord,
    rel_pat: RelPattern,
) -> Iterator[tuple[list[RelRecord], NodeRecord]]:
    """Yield (rel chain, end node) pairs reachable through ``rel_pat``."""

    def single_hops(node_id: int) -> list[tuple[RelRecord, int]]:
        hops: list[tuple[RelRecord, int]] = []
        if rel_pat.direction in ("out", "both"):
            hops.extend(
                (rel, rel.end) for rel in store.out_rels(node_id, rel_pat.rel_type)
            )
        if rel_pat.direction in ("in", "both"):
            hops.extend(
                (rel, rel.start) for rel in store.in_rels(node_id, rel_pat.rel_type)
            )
        return [
            (rel, other)
            for rel, other in hops
            if all(rel.properties.get(k) == v for k, v in rel_pat.properties.items())
        ]

    frontier: list[tuple[list[RelRecord], int]] = [([], start.node_id)]
    for depth in range(1, rel_pat.max_hops + 1):
        next_frontier: list[tuple[list[RelRecord], int]] = []
        for chain, node_id in frontier:
            for rel, other in single_hops(node_id):
                if rel in chain:
                    continue  # no relationship reuse within one path
                new_chain = chain + [rel]
                if depth >= rel_pat.min_hops:
                    yield new_chain, store.node(other)
                next_frontier.append((new_chain, other))
        frontier = next_frontier
        if not frontier:
            return


def _match_path(
    store: GraphStore,
    path: PathPattern,
    bindings: dict[str, Any],
) -> Iterator[dict[str, Any]]:
    def bind_node(pattern: NodePattern, node: NodeRecord, env: dict) -> dict | None:
        if pattern.variable:
            bound = env.get(pattern.variable)
            if bound is not None:
                return env if bound.node_id == node.node_id else None
            env = dict(env)
            env[pattern.variable] = node
            return env
        return env

    def recurse(index: int, current: NodeRecord, env: dict) -> Iterator[dict]:
        if index == len(path.rels):
            yield env
            return
        rel_pat = path.rels[index]
        next_pat = path.nodes[index + 1]
        for chain, end_node in _expand(store, current, rel_pat):
            if not _node_matches(end_node, next_pat):
                continue
            env2 = bind_node(next_pat, end_node, env)
            if env2 is None:
                continue
            if rel_pat.variable:
                env2 = dict(env2)
                env2[rel_pat.variable] = chain if rel_pat.max_hops > 1 else chain[0]
            yield from recurse(index + 1, end_node, env2)

    first_pat = path.nodes[0]
    if first_pat.variable and first_pat.variable in bindings:
        start_nodes = [bindings[first_pat.variable]]
        if not _node_matches(start_nodes[0], first_pat):
            return
    else:
        start_nodes = list(_candidate_nodes(store, first_pat))
    for start in start_nodes:
        env = bind_node(first_pat, start, bindings)
        if env is None:
            continue
        yield from recurse(0, start, env)


def _match_all_patterns(
    store: GraphStore, patterns: list[PathPattern]
) -> Iterator[dict[str, Any]]:
    def recurse(index: int, env: dict) -> Iterator[dict]:
        if index == len(patterns):
            yield env
            return
        for env2 in _match_path(store, patterns[index], env):
            yield from recurse(index + 1, env2)

    yield from recurse(0, {})


def _eval_operand(operand: Any, env: dict[str, Any]) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, VariableRef):
        if operand.name not in env:
            raise CypherExecutionError(f"unbound variable {operand.name!r}")
        return env[operand.name]
    if isinstance(operand, PropertyRef):
        if operand.variable not in env:
            raise CypherExecutionError(f"unbound variable {operand.variable!r}")
        record = env[operand.variable]
        return record.properties.get(operand.key)
    raise CypherExecutionError(f"cannot evaluate {operand!r}")


def _eval_where(expr: Any, env: dict[str, Any]) -> bool:
    if isinstance(expr, BoolExpr):
        if expr.op == "AND":
            return all(_eval_where(e, env) for e in expr.operands)
        if expr.op == "OR":
            return any(_eval_where(e, env) for e in expr.operands)
        return not _eval_where(expr.operands[0], env)
    if isinstance(expr, Comparison):
        left = _eval_operand(expr.left, env)
        right = _eval_operand(expr.right, env)
        try:
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if left is None or right is None:
                return False
            if expr.op == "<":
                return left < right
            if expr.op == ">":
                return left > right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">=":
                return left >= right
            if expr.op == "CONTAINS":
                return str(right) in str(left)
            if expr.op == "STARTS_WITH":
                return str(left).startswith(str(right))
            if expr.op == "IN":
                return left in right
        except TypeError:
            return False
    raise CypherExecutionError(f"cannot evaluate predicate {expr!r}")


def _execute_match(store: GraphStore, query: Query) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    envs = [
        env
        for env in _match_all_patterns(store, query.patterns)
        if query.where is None or _eval_where(query.where, env)
    ]
    # Aggregation: any count() in RETURN collapses to a single row.
    has_count = any(
        isinstance(item.expr, FuncCall) and item.expr.name == "count"
        for item in query.returns
    )
    if has_count:
        row: dict[str, Any] = {}
        for item in query.returns:
            if isinstance(item.expr, FuncCall):
                row[item.name] = len(envs)
            else:
                row[item.name] = _eval_operand(item.expr, envs[0]) if envs else None
        return [row]
    for env in envs:
        row = {item.name: _eval_operand(item.expr, env) for item in query.returns}
        rows.append(row)
    if query.distinct:
        seen = set()
        unique = []
        for row in rows:
            key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    for expr, desc in reversed(query.order_by):
        rows.sort(key=lambda r, e=expr: _order_key(e, r), reverse=desc)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _order_key(expr: Any, row: dict[str, Any]) -> Any:
    if isinstance(expr, VariableRef) and expr.name in row:
        return row[expr.name]
    if isinstance(expr, PropertyRef):
        key = f"{expr.variable}.{expr.key}"
        if key in row:
            return row[key]
        if expr.variable in row and hasattr(row[expr.variable], "properties"):
            return row[expr.variable].properties.get(expr.key)
    raise CypherExecutionError(f"ORDER BY expression not in RETURN: {expr!r}")
