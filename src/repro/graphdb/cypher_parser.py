"""Lexer + parser for the Cypher subset used by SynthRAG.

Supported statements::

    MATCH (a:Label {key: val})-[r:TYPE*1..3]->(b) WHERE a.x > 3
    RETURN a, b.name AS name, count(*) ORDER BY name DESC LIMIT 5

    CREATE (n:Label {key: val})-[:TYPE]->(m:Other)

The grammar covers what the simulated LLM emits for graph-structure
retrieval (paper Table I): node/relationship patterns with labels, types,
property maps, directions, variable-length hops, boolean WHERE clauses with
comparisons / CONTAINS / STARTS WITH / IN, RETURN projections with aliases
and ``count(*)``, ORDER BY and LIMIT.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CypherError",
    "NodePattern",
    "RelPattern",
    "PathPattern",
    "Comparison",
    "BoolExpr",
    "PropertyRef",
    "Literal",
    "VariableRef",
    "FuncCall",
    "ReturnItem",
    "Query",
    "parse_cypher",
]


class CypherError(ValueError):
    """Raised on malformed Cypher text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>-?\d+(\.\d+)?)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|<>|\.\.|->|<-|[-()\[\]{}:,.*=<>])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "MATCH",
    "WHERE",
    "RETURN",
    "CREATE",
    "ORDER",
    "BY",
    "LIMIT",
    "AND",
    "OR",
    "NOT",
    "AS",
    "ASC",
    "DESC",
    "CONTAINS",
    "STARTS",
    "WITH",
    "IN",
    "TRUE",
    "FALSE",
    "NULL",
    "DISTINCT",
}


def _lex(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise CypherError(f"cannot tokenize at {text[pos:pos+12]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "WS":
            continue
        value = m.group()
        if kind == "NAME" and value.upper() in _KEYWORDS:
            tokens.append(("KW", value.upper()))
        else:
            tokens.append((kind, value))
    tokens.append(("EOF", ""))
    return tokens


# -- AST ---------------------------------------------------------------------


@dataclass
class Literal:
    value: Any


@dataclass
class VariableRef:
    name: str


@dataclass
class PropertyRef:
    variable: str
    key: str


@dataclass
class FuncCall:
    name: str
    arg: str  # "*" or a variable name


@dataclass
class Comparison:
    op: str  # = <> < > <= >= CONTAINS STARTS_WITH IN
    left: Any
    right: Any


@dataclass
class BoolExpr:
    op: str  # AND OR NOT
    operands: list[Any]


@dataclass
class NodePattern:
    variable: str | None = None
    labels: list[str] = field(default_factory=list)
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class RelPattern:
    variable: str | None = None
    rel_type: str | None = None
    direction: str = "out"  # out | in | both
    min_hops: int = 1
    max_hops: int = 1
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class PathPattern:
    nodes: list[NodePattern] = field(default_factory=list)
    rels: list[RelPattern] = field(default_factory=list)


@dataclass
class ReturnItem:
    expr: Any
    alias: str | None = None

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        expr = self.expr
        if isinstance(expr, VariableRef):
            return expr.name
        if isinstance(expr, PropertyRef):
            return f"{expr.variable}.{expr.key}"
        if isinstance(expr, FuncCall):
            return f"{expr.name}({expr.arg})"
        return "expr"


@dataclass
class Query:
    kind: str  # "match" | "create"
    patterns: list[PathPattern] = field(default_factory=list)
    where: Any = None
    returns: list[ReturnItem] = field(default_factory=list)
    order_by: list[tuple[Any, bool]] = field(default_factory=list)  # (expr, desc)
    limit: int | None = None
    distinct: bool = False


class _CypherParser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def accept(self, kind: str, value: str | None = None) -> str | None:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return v
        return None

    def expect(self, kind: str, value: str | None = None) -> str:
        result = self.accept(kind, value)
        if result is None:
            k, v = self.peek()
            raise CypherError(f"expected {value or kind}, got {v!r}")
        return result

    def expect_name(self) -> str:
        """A name position also admits keywords (labels like CONTAINS)."""
        kind, value = self.peek()
        if kind in ("NAME", "KW"):
            self.pos += 1
            return value
        raise CypherError(f"expected name, got {value!r}")

    # -- entry -----------------------------------------------------------------

    def parse(self) -> Query:
        if self.accept("KW", "MATCH"):
            query = Query(kind="match")
            query.patterns.append(self.parse_path())
            while self.accept("OP", ","):
                query.patterns.append(self.parse_path())
            if self.accept("KW", "WHERE"):
                query.where = self.parse_bool_expr()
            self.expect("KW", "RETURN")
            if self.accept("KW", "DISTINCT"):
                query.distinct = True
            query.returns.append(self.parse_return_item())
            while self.accept("OP", ","):
                query.returns.append(self.parse_return_item())
            if self.accept("KW", "ORDER"):
                self.expect("KW", "BY")
                while True:
                    expr = self.parse_operand()
                    desc = bool(self.accept("KW", "DESC"))
                    if not desc:
                        self.accept("KW", "ASC")
                    query.order_by.append((expr, desc))
                    if not self.accept("OP", ","):
                        break
            if self.accept("KW", "LIMIT"):
                query.limit = int(self.expect("NUMBER"))
            self.expect("EOF")
            return query
        if self.accept("KW", "CREATE"):
            query = Query(kind="create")
            query.patterns.append(self.parse_path())
            while self.accept("OP", ","):
                query.patterns.append(self.parse_path())
            self.expect("EOF")
            return query
        raise CypherError("query must start with MATCH or CREATE")

    # -- patterns -----------------------------------------------------------------

    def parse_path(self) -> PathPattern:
        path = PathPattern()
        path.nodes.append(self.parse_node_pattern())
        while self.peek()[1] in ("-", "<-"):
            path.rels.append(self.parse_rel_pattern())
            path.nodes.append(self.parse_node_pattern())
        return path

    def parse_node_pattern(self) -> NodePattern:
        self.expect("OP", "(")
        node = NodePattern()
        if self.peek()[0] == "NAME":
            node.variable = self.expect("NAME")
        while self.accept("OP", ":"):
            node.labels.append(self.expect_name())
        if self.peek()[1] == "{":
            node.properties = self.parse_property_map()
        self.expect("OP", ")")
        return node

    def parse_rel_pattern(self) -> RelPattern:
        rel = RelPattern()
        if self.accept("OP", "<-"):
            rel.direction = "in"
        else:
            self.expect("OP", "-")
        if self.accept("OP", "["):
            if self.peek()[0] == "NAME":
                rel.variable = self.expect("NAME")
            if self.accept("OP", ":"):
                rel.rel_type = self.expect_name()
            if self.accept("OP", "*"):
                if self.peek()[0] == "NUMBER":
                    rel.min_hops = int(self.expect("NUMBER"))
                    if self.accept("OP", ".."):
                        rel.max_hops = int(self.expect("NUMBER"))
                    else:
                        rel.max_hops = rel.min_hops
                else:
                    rel.min_hops, rel.max_hops = 1, 8
            if self.peek()[1] == "{":
                rel.properties = self.parse_property_map()
            self.expect("OP", "]")
        if self.accept("OP", "->"):
            if rel.direction == "in":
                raise CypherError("relationship cannot point both ways")
            rel.direction = "out"
        else:
            self.expect("OP", "-")
            if rel.direction != "in":
                rel.direction = "both"
        return rel

    def parse_property_map(self) -> dict[str, Any]:
        self.expect("OP", "{")
        props: dict[str, Any] = {}
        while not self.accept("OP", "}"):
            key = self.expect_name()
            self.expect("OP", ":")
            props[key] = self.parse_literal().value
            self.accept("OP", ",")
        return props

    # -- expressions -------------------------------------------------------------

    def parse_bool_expr(self) -> Any:
        left = self.parse_bool_term()
        while self.accept("KW", "OR"):
            right = self.parse_bool_term()
            left = BoolExpr(op="OR", operands=[left, right])
        return left

    def parse_bool_term(self) -> Any:
        left = self.parse_bool_factor()
        while self.accept("KW", "AND"):
            right = self.parse_bool_factor()
            left = BoolExpr(op="AND", operands=[left, right])
        return left

    def parse_bool_factor(self) -> Any:
        if self.accept("KW", "NOT"):
            return BoolExpr(op="NOT", operands=[self.parse_bool_factor()])
        if self.peek()[1] == "(" and self._looks_like_grouped_bool():
            self.expect("OP", "(")
            inner = self.parse_bool_expr()
            self.expect("OP", ")")
            return inner
        return self.parse_comparison()

    def _looks_like_grouped_bool(self) -> bool:
        # Distinguish "(a.x = 1 AND ...)" from a node pattern "(a:L)".
        depth = 0
        for kind, value in self.tokens[self.pos :]:
            if value == "(":
                depth += 1
            elif value == ")":
                depth -= 1
                if depth == 0:
                    return True
            elif depth == 1 and kind == "KW" and value in ("AND", "OR", "NOT"):
                return True
            elif depth == 1 and value == ":":
                return False
        return False

    def parse_comparison(self) -> Comparison:
        left = self.parse_operand()
        kind, value = self.peek()
        if kind == "OP" and value in ("=", "<>", "<", ">", "<=", ">="):
            self.pos += 1
            return Comparison(op=value, left=left, right=self.parse_operand())
        if self.accept("KW", "CONTAINS"):
            return Comparison(op="CONTAINS", left=left, right=self.parse_operand())
        if self.accept("KW", "STARTS"):
            self.expect("KW", "WITH")
            return Comparison(op="STARTS_WITH", left=left, right=self.parse_operand())
        if self.accept("KW", "IN"):
            return Comparison(op="IN", left=left, right=self.parse_list())
        raise CypherError(f"expected comparison operator, got {value!r}")

    def parse_list(self) -> Literal:
        self.expect("OP", "[")
        items = []
        while not self.accept("OP", "]"):
            items.append(self.parse_literal().value)
            self.accept("OP", ",")
        return Literal(value=items)

    def parse_operand(self) -> Any:
        kind, value = self.peek()
        if kind == "NAME":
            name = self.expect("NAME")
            if self.accept("OP", "."):
                key = self.expect("NAME")
                return PropertyRef(variable=name, key=key)
            if self.peek()[1] == "(":
                self.expect("OP", "(")
                arg = "*" if self.accept("OP", "*") else self.expect("NAME")
                self.expect("OP", ")")
                return FuncCall(name=name.lower(), arg=arg)
            return VariableRef(name=name)
        return self.parse_literal()

    def parse_literal(self) -> Literal:
        kind, value = self.peek()
        if kind == "NUMBER":
            self.pos += 1
            return Literal(value=float(value) if "." in value else int(value))
        if kind == "STRING":
            self.pos += 1
            return Literal(value=value[1:-1])
        if self.accept("KW", "TRUE"):
            return Literal(value=True)
        if self.accept("KW", "FALSE"):
            return Literal(value=False)
        if self.accept("KW", "NULL"):
            return Literal(value=None)
        raise CypherError(f"expected literal, got {value!r}")

    def parse_return_item(self) -> ReturnItem:
        expr = self.parse_operand()
        alias = None
        if self.accept("KW", "AS"):
            alias = self.expect("NAME")
        return ReturnItem(expr=expr, alias=alias)


def parse_cypher(text: str) -> Query:
    """Parse a Cypher-subset query string into a :class:`Query`."""
    return _CypherParser(_lex(text)).parse()
