"""In-memory property-graph store (the Neo4j substitute).

The store follows the labelled-property-graph model: nodes carry a set of
labels and a property map; directed relationships carry a type and a
property map.  :mod:`repro.graphdb.cypher_exec` evaluates Cypher-subset
queries against this store; CircuitMentor and SynthRAG use it to hold the
circuit hierarchy and the target library (paper §IV-A/§IV-B, Table I).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["NodeRecord", "RelRecord", "GraphStore", "GraphStoreError"]


class GraphStoreError(KeyError):
    """Raised on access to missing nodes/relationships."""


@dataclass
class NodeRecord:
    """A graph node: integer id, label set, property map."""

    node_id: int
    labels: frozenset[str]
    properties: dict[str, Any] = field(default_factory=dict)

    def has_label(self, label: str) -> bool:
        return label in self.labels


@dataclass
class RelRecord:
    """A directed relationship between two node ids."""

    rel_id: int
    rel_type: str
    start: int
    end: int
    properties: dict[str, Any] = field(default_factory=dict)


class GraphStore:
    """A mutable labelled-property graph with index-backed lookups."""

    def __init__(self) -> None:
        self._nodes: dict[int, NodeRecord] = {}
        self._rels: dict[int, RelRecord] = {}
        self._by_label: dict[str, set[int]] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._node_ids = itertools.count()
        self._rel_ids = itertools.count()

    # -- nodes --------------------------------------------------------------

    def create_node(self, labels: Iterable[str] = (), **properties: Any) -> NodeRecord:
        node = NodeRecord(
            node_id=next(self._node_ids),
            labels=frozenset(labels),
            properties=dict(properties),
        )
        self._nodes[node.node_id] = node
        for label in node.labels:
            self._by_label.setdefault(label, set()).add(node.node_id)
        self._out[node.node_id] = []
        self._in[node.node_id] = []
        return node

    def node(self, node_id: int) -> NodeRecord:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphStoreError(f"no node {node_id}") from None

    def delete_node(self, node_id: int) -> None:
        """Delete a node and every relationship attached to it."""
        node = self.node(node_id)
        for rel_id in list(self._out[node_id]) + list(self._in[node_id]):
            if rel_id in self._rels:
                self.delete_rel(rel_id)
        for label in node.labels:
            self._by_label[label].discard(node_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    def nodes(self, label: str | None = None, **props: Any) -> Iterator[NodeRecord]:
        """Iterate nodes, optionally filtered by label and property equality."""
        if label is not None:
            candidates = (self._nodes[i] for i in self._by_label.get(label, ()))
        else:
            candidates = iter(self._nodes.values())
        for node in candidates:
            if all(node.properties.get(k) == v for k, v in props.items()):
                yield node

    def find_one(self, label: str | None = None, **props: Any) -> NodeRecord | None:
        return next(self.nodes(label, **props), None)

    # -- relationships --------------------------------------------------------

    def create_rel(
        self, start: int, rel_type: str, end: int, **properties: Any
    ) -> RelRecord:
        self.node(start)
        self.node(end)
        rel = RelRecord(
            rel_id=next(self._rel_ids),
            rel_type=rel_type,
            start=start,
            end=end,
            properties=dict(properties),
        )
        self._rels[rel.rel_id] = rel
        self._out[start].append(rel.rel_id)
        self._in[end].append(rel.rel_id)
        return rel

    def rel(self, rel_id: int) -> RelRecord:
        try:
            return self._rels[rel_id]
        except KeyError:
            raise GraphStoreError(f"no relationship {rel_id}") from None

    def delete_rel(self, rel_id: int) -> None:
        rel = self.rel(rel_id)
        self._out[rel.start].remove(rel_id)
        self._in[rel.end].remove(rel_id)
        del self._rels[rel_id]

    def rels(self, rel_type: str | None = None) -> Iterator[RelRecord]:
        for rel in self._rels.values():
            if rel_type is None or rel.rel_type == rel_type:
                yield rel

    def out_rels(self, node_id: int, rel_type: str | None = None) -> list[RelRecord]:
        return [
            self._rels[r]
            for r in self._out.get(node_id, ())
            if rel_type is None or self._rels[r].rel_type == rel_type
        ]

    def in_rels(self, node_id: int, rel_type: str | None = None) -> list[RelRecord]:
        return [
            self._rels[r]
            for r in self._in.get(node_id, ())
            if rel_type is None or self._rels[r].rel_type == rel_type
        ]

    def neighbors(
        self, node_id: int, rel_type: str | None = None, direction: str = "out"
    ) -> list[NodeRecord]:
        """Adjacent nodes along ``direction`` ('out', 'in' or 'both')."""
        result = []
        if direction in ("out", "both"):
            result.extend(self._nodes[r.end] for r in self.out_rels(node_id, rel_type))
        if direction in ("in", "both"):
            result.extend(self._nodes[r.start] for r in self.in_rels(node_id, rel_type))
        return result

    # -- stats ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_rels(self) -> int:
        return len(self._rels)

    def labels(self) -> set[str]:
        return {label for label, ids in self._by_label.items() if ids}

    def clear(self) -> None:
        self.__init__()
