"""Design analysis: global and local characteristics for script customization.

This is the analysis half of CircuitMentor (paper §IV-A): it elaborates
the design, runs STA at the target period, and distils the *pathologies*
that determine which synthesis commands are appropriate — high-fanout
nets (buffer balancing), register imbalance (retiming), long unbalanced
gate chains (restructuring), hierarchy boundaries (ungroup/flatten),
standalone wide adders (arithmetic resynthesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hdl.netlist import Netlist
from ..synth.library import TechLibrary, nangate45
from ..synth.sdc import Constraints
from ..synth.timing import TimingEngine, TimingReport
from ..synth.wireload import WireLoadModel, get_wireload
from .circuit_graph import CircuitGraph, build_circuit_graph

__all__ = ["DesignAnalysis", "analyze_design"]


@dataclass
class DesignAnalysis:
    """Everything the Generator/SynthExpert need to know about a design."""

    design_name: str
    circuit: CircuitGraph
    netlist: Netlist
    timing: TimingReport
    area: float
    num_cells: int
    num_registers: int
    max_fanout: int
    high_fanout_nets: list[tuple[str, int]] = field(default_factory=list)
    critical_modules: list[str] = field(default_factory=list)
    pathologies: list[str] = field(default_factory=list)
    category_mix: dict[str, int] = field(default_factory=dict)
    register_stage_imbalance: float = 0.0
    longest_chain: int = 0
    hierarchy_buffers: int = 0
    tagged_adders: int = 0

    @property
    def dominant_category(self) -> str:
        if not self.category_mix:
            return "mixed"
        return max(self.category_mix, key=self.category_mix.get)

    def summary(self) -> str:
        """Human/LLM-readable analysis report."""
        lines = [
            f"Design analysis for {self.design_name}:",
            f"  cells={self.num_cells} registers={self.num_registers} area={self.area:.1f}",
            f"  WNS={self.timing.wns:.3f} CPS={self.timing.cps:.3f} TNS={self.timing.tns:.3f}",
            f"  dominant category: {self.dominant_category} (mix: {self.category_mix})",
            f"  max fanout: {self.max_fanout}",
            f"  register stage imbalance: {self.register_stage_imbalance:.2f}",
            f"  longest same-gate chain: {self.longest_chain}",
            f"  hierarchy boundary buffers: {self.hierarchy_buffers}",
            f"  standalone wide adders: {self.tagged_adders}",
            f"  detected pathologies: {', '.join(self.pathologies) or 'none'}",
            f"  critical modules: {', '.join(self.critical_modules) or 'top'}",
        ]
        return "\n".join(lines)


def _modules_on_path(report: TimingReport) -> list[str]:
    """Instance paths traversed by the critical path (from net prefixes)."""
    if report.critical_path is None:
        return []
    seen: list[str] = []
    for point in report.critical_path.points:
        if "/" in point.net:
            prefix = point.net.rsplit("/", 1)[0]
            if prefix not in seen:
                seen.append(prefix)
    return seen


def _longest_chain(netlist: Netlist) -> int:
    """Length of the longest single-fanout chain of identical gates."""
    best = 0
    memo: dict[str, int] = {}

    def chain_len(cell_name: str) -> int:
        if cell_name in memo:
            return memo[cell_name]
        cell = netlist.cells[cell_name]
        memo[cell_name] = 1  # break accidental cycles defensively
        length = 1
        for net_in in cell.inputs:
            child = netlist.driver_cell(net_in)
            if (
                child is not None
                and child.gate == cell.gate
                and netlist.fanout(child.output) == 1
            ):
                length = max(length, 1 + chain_len(child.name))
        memo[cell_name] = length
        return length

    for name, cell in netlist.cells.items():
        if cell.gate in ("AND2", "OR2", "XOR2"):
            best = max(best, chain_len(name))
    return best


def _register_imbalance(
    netlist: Netlist, engine: TimingEngine, report: TimingReport
) -> float:
    """Std/mean of register-endpoint arrivals: >0.6 suggests retiming."""
    arrivals = []
    period = engine.constraints.effective_period
    for key, slack in report.endpoint_slacks.items():
        if key.startswith("reg:"):
            arrivals.append(period - slack)
    if len(arrivals) < 2:
        return 0.0
    arrivals = np.asarray(arrivals)
    mean = arrivals.mean()
    return float(arrivals.std() / mean) if mean > 0 else 0.0


def analyze_design(
    verilog: str,
    design_name: str,
    top: str | None = None,
    clock_period: float = 1.0,
    library: TechLibrary | None = None,
    wireload: WireLoadModel | None = None,
) -> DesignAnalysis:
    """Full CircuitMentor analysis of a design at a target clock period."""
    library = library or nangate45()
    wireload = wireload or get_wireload("5K_heavy_1k")
    circuit = build_circuit_graph(verilog, design_name, top=top)
    top_name = top or design_name
    from ..synth.cache import elaborate_cached
    from ..synth.techmap import map_to_library

    netlist = elaborate_cached(verilog, top_name)

    map_to_library(netlist, library)
    constraints = Constraints(clock_period=clock_period)
    engine = TimingEngine(netlist, library, wireload, constraints)
    report = engine.analyze()

    stats = netlist.stats()
    high_fanout = sorted(
        ((name, netlist.fanout(name)) for name in netlist.nets),
        key=lambda kv: kv[1],
        reverse=True,
    )[:5]
    category_mix: dict[str, int] = {}
    for profile in circuit.profiles.values():
        category_mix[profile.category] = category_mix.get(profile.category, 0) + 1
    imbalance = _register_imbalance(netlist, engine, report)
    chain = _longest_chain(netlist)
    hier_bufs = sum(
        1 for c in netlist.cells.values() if c.attrs.get("hierarchy")
    )
    adders = sum(1 for c in netlist.cells.values() if "adder" in c.attrs)

    pathologies = []
    if stats["max_fanout"] >= 24:
        pathologies.append("high_fanout")
    if imbalance >= 0.5 and stats["sequential"] > 0:
        pathologies.append("register_imbalance")
    if chain >= 6:
        pathologies.append("unbalanced_chains")
    if hier_bufs >= 16:
        pathologies.append("hierarchy_boundaries")
    if adders >= 2:
        pathologies.append("wide_arithmetic")
    if report.critical_path is not None and report.critical_path.depth >= 40:
        pathologies.append("long_combinational")
    if report.wns < 0:
        pathologies.append("timing_violated")

    return DesignAnalysis(
        design_name=design_name,
        circuit=circuit,
        netlist=netlist,
        timing=report,
        area=engine.total_area(),
        num_cells=stats["cells"],
        num_registers=stats["sequential"],
        max_fanout=stats["max_fanout"],
        high_fanout_nets=high_fanout,
        critical_modules=_modules_on_path(report),
        pathologies=pathologies,
        category_mix=category_mix,
        register_stage_imbalance=imbalance,
        longest_chain=chain,
        hierarchy_buffers=hier_bufs,
        tagged_adders=adders,
    )
