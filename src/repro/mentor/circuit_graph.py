"""CircuitMentor's graph construction (paper §IV-A, Fig. 3).

Transforms parsed Verilog into two coupled representations:

1. A **property graph** in :class:`~repro.graphdb.GraphStore` — the Neo4j
   analogue.  Hierarchy: ``(:Design)-[:CONTAINS]->(:Module)`` with each
   module node storing its Verilog source (so SynthRAG's graph-structure
   retrieval can hand path/module code to the LLM), plus
   ``(:Module)-[:INSTANTIATES]->(:Module)`` edges and per-module
   ``(:Module)-[:HAS]->(:Component)`` nodes for assigns/always/instances.

2. Per-module **dataflow graphs** (:class:`~repro.gnn.GraphData`) whose
   nodes are AST components with feature vectors and whose edges follow
   signal def-use chains — the input to the hierarchical GNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gnn import GraphData
from ..graphdb import GraphStore
from ..hdl.ast_nodes import Module, SourceFile
from ..hdl.parser import parse_source
from .features import (
    FEATURE_DIM,
    component_features,
    count_ops,
    expr_signals,
    module_profile,
)

__all__ = ["CircuitGraph", "build_circuit_graph"]


@dataclass
class CircuitGraph:
    """The dual graph representation of one design."""

    design_name: str
    store: GraphStore
    module_graphs: dict[str, GraphData] = field(default_factory=dict)
    profiles: dict[str, object] = field(default_factory=dict)
    top: str | None = None

    def design_graph(self) -> GraphData:
        """A design-level graph: one node per module, edges = instantiation.

        Node features are the mean of the module's component features —
        used when embedding the whole design hierarchically.
        """
        names = list(self.module_graphs)
        feats = []
        for name in names:
            graph = self.module_graphs[name]
            feats.append(graph.features.mean(axis=0))
        edges = []
        index = {name: i for i, name in enumerate(names)}
        for rel in self.store.rels("INSTANTIATES"):
            src = self.store.node(rel.start).properties.get("name")
            dst = self.store.node(rel.end).properties.get("name")
            if src in index and dst in index:
                edges.append((index[src], index[dst]))
        features = np.vstack(feats) if feats else np.zeros((1, FEATURE_DIM))
        return GraphData(features=features, edges=edges, meta={"design": self.design_name})


def _module_dataflow_graph(module: Module) -> GraphData:
    """Build the component-level dataflow graph for one module."""
    nodes: list[np.ndarray] = []
    defines: list[set[str]] = []
    uses: list[set[str]] = []
    kinds: list[str] = []

    def add_node(kind: str, width: int, ops, defs: set[str], reads: set[str], mem_bits: int = 0) -> None:
        nodes.append(component_features(kind, width, ops, mem_bits))
        defines.append(defs)
        uses.append(reads)
        kinds.append(kind)

    from .features import OpCounts

    widths = {}
    for port in module.ports:
        widths[port.name] = 8 if port.range is not None else 1
    for port in module.ports:
        kind = "port_in" if port.direction == "input" else "port_out"
        if port.direction == "input":
            add_node(kind, widths.get(port.name, 1), OpCounts(), {port.name}, set())
        else:
            add_node(kind, widths.get(port.name, 1), OpCounts(), set(), {port.name})
    mem_bits_total = sum(
        64 for net in module.nets if net.array_range is not None
    )
    for assign in module.assigns:
        ops = count_ops(assign.value)
        add_node(
            "assign",
            8,
            ops,
            expr_signals(assign.target),
            expr_signals(assign.value),
        )
    for block in module.always_blocks:
        ops = count_ops(block.body)
        defs: set[str] = set()
        reads: set[str] = set()
        for stmt in block.body:
            _collect_defs_uses(stmt, defs, reads)
        kind = "always_seq" if block.event.is_sequential else "always_comb"
        add_node(kind, 8, ops, defs, reads, mem_bits=mem_bits_total)
    for inst in module.instances:
        defs = set()
        reads = set()
        for conn in inst.connections:
            if conn.expr is not None:
                reads |= expr_signals(conn.expr)
        add_node("instance", 8, OpCounts(), defs, reads)
    if not nodes:
        return GraphData(
            features=np.zeros((1, FEATURE_DIM)), edges=[], meta={"module": module.name}
        )
    edges = []
    for i in range(len(nodes)):
        for j in range(len(nodes)):
            if i != j and defines[i] & uses[j]:
                edges.append((i, j))
    return GraphData(
        features=np.vstack(nodes), edges=edges, meta={"module": module.name}
    )


def _collect_defs_uses(stmt, defs: set[str], reads: set[str]) -> None:
    from ..hdl.ast_nodes import (
        BlockingAssign,
        CaseStatement,
        IfStatement,
        NonBlockingAssign,
        SeqBlock,
    )

    if isinstance(stmt, (BlockingAssign, NonBlockingAssign)):
        defs |= expr_signals(stmt.target)
        reads |= expr_signals(stmt.value)
        return
    if isinstance(stmt, IfStatement):
        reads |= expr_signals(stmt.cond)
        for sub in stmt.then_body + stmt.else_body:
            _collect_defs_uses(sub, defs, reads)
        return
    if isinstance(stmt, CaseStatement):
        reads |= expr_signals(stmt.subject)
        for item in stmt.items:
            for sub in item.body:
                _collect_defs_uses(sub, defs, reads)
        return
    if isinstance(stmt, SeqBlock):
        for sub in stmt.body:
            _collect_defs_uses(sub, defs, reads)


def build_circuit_graph(
    source: SourceFile | str,
    design_name: str,
    top: str | None = None,
    store: GraphStore | None = None,
) -> CircuitGraph:
    """Parse (if needed) and lift a design into its :class:`CircuitGraph`."""
    if isinstance(source, str):
        source = parse_source(source)
    store = store or GraphStore()
    graph = CircuitGraph(design_name=design_name, store=store, top=top)

    instantiated = {
        inst.module_name for mod in source.modules for inst in mod.instances
    }
    design_node = store.create_node(["Design"], name=design_name, top=top or "")

    module_nodes = {}
    for module in source.modules:
        profile = module_profile(module)
        graph.profiles[module.name] = profile
        node = store.create_node(
            ["Module"],
            name=module.name,
            design=design_name,
            code=module.source_text,
            category=profile.category,
            ports=profile.num_ports,
            instances=profile.num_instances,
            mem_bits=profile.mem_bits,
            is_top=module.name == top or module.name not in instantiated,
        )
        module_nodes[module.name] = node
        store.create_rel(design_node.node_id, "CONTAINS", node.node_id)
        graph.module_graphs[module.name] = _module_dataflow_graph(module)
        for assign in module.assigns:
            comp = store.create_node(["Component"], kind="assign", module=module.name)
            store.create_rel(node.node_id, "HAS", comp.node_id)
        for block in module.always_blocks:
            kind = "always_seq" if block.event.is_sequential else "always_comb"
            comp = store.create_node(["Component"], kind=kind, module=module.name)
            store.create_rel(node.node_id, "HAS", comp.node_id)

    for module in source.modules:
        for inst in module.instances:
            child = module_nodes.get(inst.module_name)
            if child is not None:
                store.create_rel(
                    module_nodes[module.name].node_id,
                    "INSTANTIATES",
                    child.node_id,
                    instance=inst.instance_name,
                )
    return graph
