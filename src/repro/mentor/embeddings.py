"""Hierarchical GNN embedding pipeline (paper §IV-A, Eq. 3).

Modules are embedded individually by GraphSAGE over their dataflow
graphs; the design embedding is the mean over module embeddings
(z_global = 1/N sum h_i), which degenerates gracefully to the single
module's embedding for flattened designs — exactly the paper's fallback.

``embed_modules``/``embed_design`` route every module graph through
``GraphSAGE.embed_graphs`` — one batched forward over the whole design
(plus the version-keyed embedding cache) instead of a per-module Python
loop.  Results are bit-exact with the per-graph path.
"""

from __future__ import annotations

import numpy as np

from ..gnn import GraphSAGE
from .circuit_graph import CircuitGraph
from .features import FEATURE_DIM

__all__ = ["CircuitEncoder"]


class CircuitEncoder:
    """Wraps a GraphSAGE model with circuit-level conveniences."""

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_dim: int = 48,
        seed: int = 0,
    ) -> None:
        self.model = GraphSAGE(
            in_dim=FEATURE_DIM,
            hidden_dims=(hidden_dim, embedding_dim),
            seed=seed,
        )

    @property
    def embedding_dim(self) -> int:
        return self.model.embedding_dim

    def embed_module(self, circuit: CircuitGraph, module_name: str) -> np.ndarray:
        """L2-normalized embedding of one module's dataflow graph."""
        graph = circuit.module_graphs[module_name]
        return _normalize(self.model.embed_graphs([graph])[0])

    def embed_modules(self, circuit: CircuitGraph) -> dict[str, np.ndarray]:
        """All module embeddings in one batched forward pass."""
        names = list(circuit.module_graphs)
        raw = self.model.embed_graphs([circuit.module_graphs[n] for n in names])
        return {name: _normalize(raw[row]) for row, name in enumerate(names)}

    def embed_design(self, circuit: CircuitGraph) -> np.ndarray:
        """Global design embedding: mean of module embeddings (paper Eq.).

        A design with a single (or flattened) module simply returns that
        module's embedding.
        """
        names = list(circuit.module_graphs)
        raw = self.model.embed_graphs([circuit.module_graphs[n] for n in names])
        return self._pool_design(raw)

    def embed_designs(self, circuits: list[CircuitGraph]) -> list[np.ndarray]:
        """Design embeddings for many circuits in one batched GNN forward.

        All circuits' module graphs are concatenated into a single
        :func:`~repro.gnn.batch.embed_graph_groups` call — the coalesced
        path the serving engine uses when several sessions' analyze steps
        are pending at once.  Each returned embedding is bit-exact with a
        standalone :meth:`embed_design` call for that circuit.
        """
        from ..gnn.batch import embed_graph_groups

        groups = [
            [circuit.module_graphs[name] for name in list(circuit.module_graphs)]
            for circuit in circuits
        ]
        return [
            self._pool_design(raw)
            for raw in embed_graph_groups(self.model, groups)
        ]

    def _pool_design(self, raw: np.ndarray) -> np.ndarray:
        """Mean-pool raw module rows into one normalized design embedding."""
        embeddings = [_normalize(raw[row]) for row in range(raw.shape[0])]
        if not embeddings:
            return np.zeros(self.embedding_dim)
        return _normalize(np.mean(embeddings, axis=0))


def _normalize(vec: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec
