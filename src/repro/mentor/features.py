"""Feature extraction from Verilog AST constructs.

CircuitMentor represents each module as a small dataflow graph whose nodes
are AST-level components (ports, continuous assignments, always blocks,
child instances).  This module computes per-component feature vectors and
per-module summaries, including the functional classification (arithmetic /
memory / control / crypto) that drives compile-strategy selection
(paper §IV-A "Global Circuit Feature Extraction").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    BinaryOp,
    CaseStatement,
    Concat,
    Expr,
    FunctionCall,
    Identifier,
    IfStatement,
    IndexSelect,
    Module,
    Number,
    RangeSelect,
    Repeat,
    Statement,
    TernaryOp,
    UnaryOp,
)

__all__ = ["OpCounts", "count_ops", "expr_signals", "module_profile", "FEATURE_DIM", "classify_module"]


@dataclass
class OpCounts:
    """Operator census of an expression tree / statement list."""

    add: int = 0
    mul: int = 0
    logic: int = 0  # and/or/not bitwise
    xor: int = 0
    compare: int = 0
    shift: int = 0
    mux: int = 0  # ternaries + if/case branches
    select: int = 0

    def merge(self, other: "OpCounts") -> "OpCounts":
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @property
    def total(self) -> int:
        return sum(vars(self).values())


_BIN_CLASS = {
    "+": "add",
    "-": "add",
    "*": "mul",
    "/": "mul",
    "%": "mul",
    "**": "mul",
    "&": "logic",
    "|": "logic",
    "&&": "logic",
    "||": "logic",
    "^": "xor",
    "~^": "xor",
    "^~": "xor",
    "==": "compare",
    "!=": "compare",
    "===": "compare",
    "!==": "compare",
    "<": "compare",
    ">": "compare",
    "<=": "compare",
    ">=": "compare",
    "<<": "shift",
    ">>": "shift",
    "<<<": "shift",
    ">>>": "shift",
}


def count_ops(node, counts: OpCounts | None = None) -> OpCounts:
    """Recursively count operators in an expression or statement tree."""
    counts = counts or OpCounts()
    if node is None:
        return counts
    if isinstance(node, list):
        for item in node:
            count_ops(item, counts)
        return counts
    if isinstance(node, BinaryOp):
        kind = _BIN_CLASS.get(node.op)
        if kind:
            setattr(counts, kind, getattr(counts, kind) + 1)
        count_ops(node.left, counts)
        count_ops(node.right, counts)
        return counts
    if isinstance(node, UnaryOp):
        if node.op in ("~", "!", "&", "|", "~&", "~|"):
            counts.logic += 1
        elif node.op in ("^", "~^"):
            counts.xor += 1
        count_ops(node.operand, counts)
        return counts
    if isinstance(node, TernaryOp):
        counts.mux += 1
        count_ops(node.cond, counts)
        count_ops(node.if_true, counts)
        count_ops(node.if_false, counts)
        return counts
    if isinstance(node, (IndexSelect, RangeSelect)):
        counts.select += 1
        count_ops(getattr(node, "base", None), counts)
        count_ops(getattr(node, "index", None), counts)
        count_ops(getattr(node, "msb", None), counts)
        count_ops(getattr(node, "lsb", None), counts)
        return counts
    if isinstance(node, Concat):
        count_ops(node.parts, counts)
        return counts
    if isinstance(node, Repeat):
        count_ops(node.value, counts)
        return counts
    if isinstance(node, FunctionCall):
        count_ops(node.args, counts)
        return counts
    if isinstance(node, IfStatement):
        counts.mux += 1
        count_ops(node.cond, counts)
        count_ops(node.then_body, counts)
        count_ops(node.else_body, counts)
        return counts
    if isinstance(node, CaseStatement):
        counts.mux += max(len(node.items) - 1, 1)
        count_ops(node.subject, counts)
        for item in node.items:
            count_ops(item.labels, counts)
            count_ops(item.body, counts)
        return counts
    for attr in ("target", "value", "body"):
        if hasattr(node, attr):
            count_ops(getattr(node, attr), counts)
    return counts


def expr_signals(node, out: set[str] | None = None) -> set[str]:
    """All identifier names referenced in an expression/statement tree."""
    out = out if out is not None else set()
    if node is None:
        return out
    if isinstance(node, list):
        for item in node:
            expr_signals(item, out)
        return out
    if isinstance(node, Identifier):
        out.add(node.name)
        return out
    if isinstance(node, Number):
        return out
    for attr in (
        "left", "right", "operand", "cond", "if_true", "if_false",
        "parts", "count", "value", "base", "index", "msb", "lsb",
        "args", "target", "then_body", "else_body", "subject",
        "items", "labels", "body",
    ):
        if hasattr(node, attr):
            expr_signals(getattr(node, attr), out)
    return out


#: Length of per-component feature vectors (see :func:`component_features`).
FEATURE_DIM = 16


def component_features(kind: str, width: int, counts: OpCounts, mem_bits: int = 0) -> np.ndarray:
    """Feature vector for one AST component node.

    Layout: 6 one-hot kind dims, normalized width, 8 op-census dims,
    normalized memory bits.
    """
    kinds = ("port_in", "port_out", "assign", "always_comb", "always_seq", "instance")
    vec = np.zeros(FEATURE_DIM)
    if kind in kinds:
        vec[kinds.index(kind)] = 1.0
    vec[6] = min(width, 128) / 128.0
    census = (
        counts.add, counts.mul, counts.logic, counts.xor,
        counts.compare, counts.shift, counts.mux, counts.select,
    )
    for i, value in enumerate(census):
        vec[7 + i] = np.log1p(value)
    vec[15] = np.log1p(mem_bits) / 12.0
    return vec


@dataclass
class ModuleProfile:
    """Summary statistics for one module (used for classification)."""

    name: str
    ops: OpCounts = field(default_factory=OpCounts)
    num_ports: int = 0
    num_instances: int = 0
    num_always_seq: int = 0
    num_always_comb: int = 0
    num_assigns: int = 0
    max_width: int = 1
    mem_bits: int = 0

    @property
    def category(self) -> str:
        return classify_module(self)


def module_profile(module: Module, param_env: dict[str, int] | None = None) -> ModuleProfile:
    """Compute the :class:`ModuleProfile` for a parsed module."""
    from ..hdl.elaborator import ElaborationError, eval_const_expr

    profile = ModuleProfile(name=module.name)
    env = dict(param_env or {})
    for decl in module.params:
        try:
            env.setdefault(decl.name, eval_const_expr(decl.value, env))
        except ElaborationError:
            env.setdefault(decl.name, 1)
    profile.num_ports = len(module.ports)

    def range_width(rng) -> int:
        if rng is None:
            return 1
        try:
            return abs(eval_const_expr(rng.msb, env) - eval_const_expr(rng.lsb, env)) + 1
        except ElaborationError:
            return 8

    for port in module.ports:
        profile.max_width = max(profile.max_width, range_width(port.range))
    for net in module.nets:
        width = range_width(net.range)
        profile.max_width = max(profile.max_width, width)
        if net.array_range is not None:
            profile.mem_bits += width * range_width(net.array_range)
    for assign in module.assigns:
        profile.num_assigns += 1
        profile.ops.merge(count_ops(assign.value))
    for block in module.always_blocks:
        if block.event.is_sequential:
            profile.num_always_seq += 1
        else:
            profile.num_always_comb += 1
        profile.ops.merge(count_ops(block.body))
    profile.num_instances = len(module.instances)
    return profile


def classify_module(profile: ModuleProfile) -> str:
    """Functional category: arithmetic / memory / crypto / control / mixed.

    Categories drive compile-strategy selection: arithmetic modules want
    speed/area trade-offs (DesignWare-style resynthesis, sizing), memory
    modules want access-time-friendly mapping, crypto (XOR-dominated)
    wants chain balancing, control wants mux/area cleanup (paper §IV-A).
    """
    ops = profile.ops
    if profile.mem_bits >= 64:
        return "memory"
    # Bit/part selects are wiring, not computation; exclude them from the
    # ratio base so they don't dilute the functional signal.
    total = max(ops.total - ops.select, 1)
    if (ops.mul + ops.add) / total > 0.35 and (ops.mul + ops.add) >= 2:
        return "arithmetic"
    if ops.xor / total > 0.4 and ops.xor >= 4:
        return "crypto"
    if (ops.mux + ops.compare + ops.logic) / total > 0.55:
        return "control"
    return "mixed"
