"""CircuitMentor: graph-based circuit analysis for LLM script customization.

Implements paper §IV-A: AST -> hierarchical property graph (+ per-module
dataflow graphs), hierarchical GraphSAGE embeddings with global mean
pooling, metric learning for design-similarity retrieval, and the
pathology analyzer that grounds the script-customization decisions.
"""

from .analyzer import DesignAnalysis, analyze_design
from .circuit_graph import CircuitGraph, build_circuit_graph
from .embeddings import CircuitEncoder
from .features import classify_module, count_ops, module_profile
from .metric_learning import (
    MetricTrainer,
    clustering_quality,
    contrastive_loss,
    multi_similarity_loss,
    n_pair_loss,
)

__all__ = [
    "DesignAnalysis",
    "analyze_design",
    "CircuitGraph",
    "build_circuit_graph",
    "CircuitEncoder",
    "classify_module",
    "count_ops",
    "module_profile",
    "MetricTrainer",
    "clustering_quality",
    "contrastive_loss",
    "multi_similarity_loss",
    "n_pair_loss",
]
