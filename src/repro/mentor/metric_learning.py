"""Metric learning for circuit embeddings (paper §IV-A, Fig. 4).

Trains the GNN so same-family designs cluster and different families
separate, using the losses the paper cites: contrastive loss [31] and
multi-similarity loss with general pair weighting [32], plus N-pair.
All losses return ``(value, gradient w.r.t. each embedding)`` so the
numpy GNN can backprop without autograd.

The batch losses and :func:`clustering_quality` are full-matrix numpy —
one pairwise-similarity matmul plus masked reductions, no inner Python
loops.  :class:`MetricTrainer` epochs run through the batched GNN engine
(one disjoint-union forward/backward per step instead of per-graph
re-forwards) when ``REPRO_BATCH_GNN`` is on; the scalar per-graph path is
retained and produces bit-identical training trajectories (see
``tests/mentor/test_metric_learning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn import (
    Adam,
    GraphData,
    accumulation_order,
    batch_gnn_enabled,
    pack_graphs,
    release_state,
)
from .embeddings import CircuitEncoder

__all__ = [
    "contrastive_loss",
    "multi_similarity_loss",
    "n_pair_loss",
    "MetricTrainer",
    "clustering_quality",
]


def contrastive_loss(
    emb_a: np.ndarray, emb_b: np.ndarray, same: bool, margin: float = 0.5
) -> tuple[float, np.ndarray, np.ndarray]:
    """Pairwise contrastive loss on a single pair.

    Same-class pairs are pulled together (loss = d^2); different-class
    pairs are pushed beyond ``margin`` (loss = max(0, margin - d)^2).
    """
    diff = emb_a - emb_b
    dist = float(np.linalg.norm(diff))
    if same:
        return dist**2, 2 * diff, -2 * diff
    if dist >= margin or dist == 0.0:
        zero = np.zeros_like(diff)
        return 0.0, zero, zero
    scale = -2.0 * (margin - dist) / dist
    return (margin - dist) ** 2, scale * diff, -scale * diff


def multi_similarity_loss(
    embeddings: np.ndarray,
    labels: np.ndarray,
    alpha: float = 2.0,
    beta: float = 10.0,
    base: float = 0.5,
) -> tuple[float, np.ndarray]:
    """Multi-similarity loss (Wang et al., CVPR'19) over a batch.

    Operates on cosine similarities of (assumed normalized) embeddings;
    returns the batch loss and d(loss)/d(embeddings).  Fully vectorized:
    one similarity matmul, masked positive/negative reductions.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    n = len(embeddings)
    sims = embeddings @ embeddings.T
    same = labels[:, None] == labels[None, :]
    off_diag = ~np.eye(n, dtype=bool)
    pos_mask = same & off_diag
    neg_mask = ~same
    exp_pos = np.zeros_like(sims)
    exp_neg = np.zeros_like(sims)
    np.exp(-alpha * (sims - base), out=exp_pos, where=pos_mask)
    np.exp(beta * (sims - base), out=exp_neg, where=neg_mask)
    pos_sum = exp_pos.sum(axis=1)
    neg_sum = exp_neg.sum(axis=1)
    # log1p(0) == 0, so rows without positives/negatives contribute nothing.
    loss = float(np.sum(np.log1p(pos_sum)) / alpha + np.sum(np.log1p(neg_sum)) / beta)
    grad_sims = exp_neg / (1.0 + neg_sum)[:, None] - exp_pos / (1.0 + pos_sum)[:, None]
    grad = (grad_sims + grad_sims.T) @ embeddings
    return loss, grad


def _multi_similarity_loss_loop(
    embeddings: np.ndarray,
    labels: np.ndarray,
    alpha: float = 2.0,
    beta: float = 10.0,
    base: float = 0.5,
) -> tuple[float, np.ndarray]:
    """Reference O(n^2)-Python implementation of the multi-similarity loss.

    Kept for the vectorization benchmark and as an oracle in tests; not
    used on any production path.
    """
    n = len(embeddings)
    sims = embeddings @ embeddings.T
    loss = 0.0
    grad_sims = np.zeros_like(sims)
    for i in range(n):
        pos = [j for j in range(n) if j != i and labels[j] == labels[i]]
        neg = [j for j in range(n) if labels[j] != labels[i]]
        if pos:
            exp_pos = np.array([np.exp(-alpha * (sims[i, j] - base)) for j in pos])
            loss += np.log1p(exp_pos.sum()) / alpha
            coeff = -exp_pos / (1.0 + exp_pos.sum())
            for j, c in zip(pos, coeff):
                grad_sims[i, j] += c
        if neg:
            exp_neg = np.array([np.exp(beta * (sims[i, j] - base)) for j in neg])
            loss += np.log1p(exp_neg.sum()) / beta
            coeff = exp_neg / (1.0 + exp_neg.sum())
            for j, c in zip(neg, coeff):
                grad_sims[i, j] += c
    grad = (grad_sims + grad_sims.T) @ embeddings
    return float(loss), grad


def n_pair_loss(
    anchor: np.ndarray, positive: np.ndarray, negatives: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """N-pair loss (Sohn, NIPS'16) for one anchor/positive and N negatives."""
    pos_sim = anchor @ positive
    neg_sims = negatives @ anchor
    logits = np.concatenate([[pos_sim], neg_sims])
    logits -= logits.max()
    exp = np.exp(logits)
    probs = exp / exp.sum()
    loss = -np.log(probs[0] + 1e-12)
    # d(loss)/d(sim_k) = probs_k - one_hot(positive)
    dsims = probs.copy()
    dsims[0] -= 1.0
    grad_anchor = dsims[0] * positive + dsims[1:] @ negatives
    grad_positive = dsims[0] * anchor
    grad_negatives = np.outer(dsims[1:], anchor)
    return float(loss), grad_anchor, grad_positive, grad_negatives


def clustering_quality(embeddings: np.ndarray, labels: np.ndarray) -> dict:
    """Intra/inter-class distance statistics (Fig. 4's before/after view).

    Vectorized: the full pairwise distance matrix in one broadcast, then
    masked means over the upper triangle.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    n = len(embeddings)
    diff = embeddings[:, None, :] - embeddings[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    upper_i, upper_j = np.triu_indices(n, k=1)
    pair_dists = dists[upper_i, upper_j]
    pair_same = labels[upper_i] == labels[upper_j]
    intra = pair_dists[pair_same]
    inter = pair_dists[~pair_same]
    intra_mean = float(intra.mean()) if intra.size else 0.0
    inter_mean = float(inter.mean()) if inter.size else 0.0
    ratio = intra_mean / inter_mean if inter_mean > 0 else float("inf")
    return {
        "intra_mean": intra_mean,
        "inter_mean": inter_mean,
        "ratio": ratio,
        "separated": ratio < 1.0,
    }


@dataclass
class TrainStats:
    epochs: int
    losses: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else 0.0


def _normalization_grad(
    grad_norm: np.ndarray, normalized: np.ndarray, norms: np.ndarray
) -> np.ndarray:
    """Backprop d(loss)/d(normalized) through row L2-normalization."""
    dots = np.sum(grad_norm * normalized, axis=1, keepdims=True)
    return grad_norm / norms - normalized * dots / norms


class MetricTrainer:
    """Trains a :class:`CircuitEncoder` with metric-learning losses.

    Epochs run through the batched GNN engine by default (one
    disjoint-union forward + backward per optimizer step); with
    ``REPRO_BATCH_GNN=0`` the original per-graph loop runs instead.  Both
    modes consume the RNG identically and accumulate gradients in the
    same graph order, so training is deterministic across modes: same
    seed, same graphs → bit-identical losses and final weights.
    """

    def __init__(
        self,
        encoder: CircuitEncoder,
        lr: float = 5e-3,
        loss: str = "contrastive",
        margin: float = 0.8,
        seed: int = 0,
    ) -> None:
        if loss not in ("contrastive", "multi_similarity"):
            raise ValueError(f"unknown loss {loss!r}")
        self.encoder = encoder
        self.loss_name = loss
        self.margin = margin
        self.rng = np.random.default_rng(seed)
        model = encoder.model
        # on_step keeps the versioned embedding cache honest: every
        # parameter update invalidates previously cached embeddings.
        self.optimizer = Adam(
            model.parameters, model.gradients, lr=lr, on_step=model.bump_version
        )

    def train(
        self,
        graphs: list[GraphData],
        labels: list[int],
        epochs: int = 30,
        pairs_per_epoch: int = 32,
    ) -> TrainStats:
        """Train on labelled module graphs; returns the loss history."""
        labels_arr = np.asarray(labels)
        losses = []
        for _ in range(epochs):
            if self.loss_name == "contrastive":
                epoch_loss = self._contrastive_epoch(graphs, labels_arr, pairs_per_epoch)
            else:
                epoch_loss = self._ms_epoch(graphs, labels_arr, pairs_per_epoch)
            losses.append(epoch_loss)
        return TrainStats(epochs=epochs, losses=losses)

    def _contrastive_epoch(self, graphs, labels, num_pairs) -> float:
        model = self.encoder.model
        batched = batch_gnn_enabled()
        total = 0.0
        for _ in range(num_pairs):
            i, j = self._sample_pair(labels)
            same = labels[i] == labels[j]
            model.zero_grad()
            if batched:
                # One two-graph forward; the retained state makes the
                # backward free of re-forwards.
                embeddings, state = model.forward_batch(
                    pack_graphs([graphs[i], graphs[j]])
                )
                emb_i, emb_j = embeddings[0], embeddings[1]
            else:
                emb_i = model.embed_graph(graphs[i])
                # Backprop for i must happen before the caches are overwritten
                # by j's forward pass, so compute j's embedding first w/o grad,
                # then redo i/j forward-backward separately.
                emb_j = model.embed_graph(graphs[j])
            loss, grad_i, grad_j = contrastive_loss(emb_i, emb_j, same, self.margin)
            if loss > 0:
                if batched:
                    model.backward_batch(state, np.vstack([grad_i, grad_j]))
                else:
                    model.embed_graph(graphs[i])
                    model.backward_graph(grad_i)
                    model.embed_graph(graphs[j])
                    model.backward_graph(grad_j)
                self.optimizer.step()
            elif batched:
                release_state(state)  # zero loss: no backward will consume it
            total += loss
        return total / num_pairs

    def _ms_epoch(self, graphs, labels, batch_size) -> float:
        model = self.encoder.model
        batched = batch_gnn_enabled()
        idx = self.rng.choice(len(graphs), size=min(batch_size, len(graphs)), replace=False)
        state = None
        full = len(idx) == len(graphs)
        # Caller list the engine packs — and whose internal slot order the
        # scalar fallback mirrors below.
        base = graphs if full else [graphs[i] for i in idx]
        if batched:
            # When the minibatch covers the whole corpus (it is just a
            # shuffle), reuse the *canonical* memoized batch — re-packing
            # a fresh permuted batch every epoch would defeat both the
            # batch memo and the workspace pool.  Per-graph embeddings
            # are batch-composition-independent (bit-exact parity), so
            # selecting rows by ``idx`` equals forwarding the permuted
            # batch directly.
            all_emb, state = model.forward_batch(pack_graphs(base))
            embeddings = all_emb[idx] if full else all_emb
        else:
            embeddings = np.vstack([model.embed_graph(graphs[i]) for i in idx])
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        normalized = embeddings / norms
        loss, grad_norm = multi_similarity_loss(normalized, labels[idx])
        grad_emb = _normalization_grad(grad_norm, normalized, norms)
        model.zero_grad()
        # Both modes accumulate per-graph parameter gradients in the
        # batch's internal slot order (stable size sort of ``base``): the
        # engine reduces its gradient stacks in place with no gather, and
        # the scalar loop iterates graphs in the identical order, keeping
        # the two trajectories bit-exact.
        if batched:
            if full:
                grad_all = np.empty_like(grad_emb)
                grad_all[idx] = grad_emb
                model.backward_batch(state, grad_all, order="slots")
            else:
                model.backward_batch(state, grad_emb, order="slots")
        else:
            if full:
                rows = np.empty(len(idx), dtype=np.intp)
                rows[idx] = np.arange(len(idx))
            else:
                rows = np.arange(len(idx))
            for c in accumulation_order([g.num_nodes for g in base]):
                model.embed_graph(base[c])
                model.backward_graph(grad_emb[rows[c]])
        self.optimizer.step()
        return loss

    def _sample_pair(self, labels) -> tuple[int, int]:
        n = len(labels)
        if self.rng.random() < 0.5:
            # positive pair
            label = self.rng.choice(labels)
            members = np.flatnonzero(labels == label)
            if len(members) >= 2:
                i, j = self.rng.choice(members, size=2, replace=False)
                return int(i), int(j)
        i, j = self.rng.choice(n, size=2, replace=False)
        return int(i), int(j)
