"""Metric learning for circuit embeddings (paper §IV-A, Fig. 4).

Trains the GNN so same-family designs cluster and different families
separate, using the losses the paper cites: contrastive loss [31] and
multi-similarity loss with general pair weighting [32], plus N-pair.
All losses return ``(value, gradient w.r.t. each embedding)`` so the
numpy GNN can backprop without autograd.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn import Adam, GraphData
from .embeddings import CircuitEncoder

__all__ = [
    "contrastive_loss",
    "multi_similarity_loss",
    "n_pair_loss",
    "MetricTrainer",
    "clustering_quality",
]


def contrastive_loss(
    emb_a: np.ndarray, emb_b: np.ndarray, same: bool, margin: float = 0.5
) -> tuple[float, np.ndarray, np.ndarray]:
    """Pairwise contrastive loss on a single pair.

    Same-class pairs are pulled together (loss = d^2); different-class
    pairs are pushed beyond ``margin`` (loss = max(0, margin - d)^2).
    """
    diff = emb_a - emb_b
    dist = float(np.linalg.norm(diff))
    if same:
        return dist**2, 2 * diff, -2 * diff
    if dist >= margin or dist == 0.0:
        zero = np.zeros_like(diff)
        return 0.0, zero, zero
    scale = -2.0 * (margin - dist) / dist
    return (margin - dist) ** 2, scale * diff, -scale * diff


def multi_similarity_loss(
    embeddings: np.ndarray,
    labels: np.ndarray,
    alpha: float = 2.0,
    beta: float = 10.0,
    base: float = 0.5,
) -> tuple[float, np.ndarray]:
    """Multi-similarity loss (Wang et al., CVPR'19) over a batch.

    Operates on cosine similarities of (assumed normalized) embeddings;
    returns the batch loss and d(loss)/d(embeddings).
    """
    n = len(embeddings)
    sims = embeddings @ embeddings.T
    loss = 0.0
    grad_sims = np.zeros_like(sims)
    for i in range(n):
        pos = [j for j in range(n) if j != i and labels[j] == labels[i]]
        neg = [j for j in range(n) if labels[j] != labels[i]]
        if pos:
            exp_pos = np.array([np.exp(-alpha * (sims[i, j] - base)) for j in pos])
            loss += np.log1p(exp_pos.sum()) / alpha
            coeff = -exp_pos / (1.0 + exp_pos.sum())
            for j, c in zip(pos, coeff):
                grad_sims[i, j] += c
        if neg:
            exp_neg = np.array([np.exp(beta * (sims[i, j] - base)) for j in neg])
            loss += np.log1p(exp_neg.sum()) / beta
            coeff = exp_neg / (1.0 + exp_neg.sum())
            for j, c in zip(neg, coeff):
                grad_sims[i, j] += c
    grad = (grad_sims + grad_sims.T) @ embeddings
    return float(loss), grad


def n_pair_loss(
    anchor: np.ndarray, positive: np.ndarray, negatives: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """N-pair loss (Sohn, NIPS'16) for one anchor/positive and N negatives."""
    pos_sim = anchor @ positive
    neg_sims = negatives @ anchor
    logits = np.concatenate([[pos_sim], neg_sims])
    logits -= logits.max()
    exp = np.exp(logits)
    probs = exp / exp.sum()
    loss = -np.log(probs[0] + 1e-12)
    # d(loss)/d(sim_k) = probs_k - one_hot(positive)
    dsims = probs.copy()
    dsims[0] -= 1.0
    grad_anchor = dsims[0] * positive + dsims[1:] @ negatives
    grad_positive = dsims[0] * anchor
    grad_negatives = np.outer(dsims[1:], anchor)
    return float(loss), grad_anchor, grad_positive, grad_negatives


def clustering_quality(embeddings: np.ndarray, labels: np.ndarray) -> dict:
    """Intra/inter-class distance statistics (Fig. 4's before/after view)."""
    labels = np.asarray(labels)
    intra, inter = [], []
    n = len(embeddings)
    for i in range(n):
        for j in range(i + 1, n):
            dist = float(np.linalg.norm(embeddings[i] - embeddings[j]))
            (intra if labels[i] == labels[j] else inter).append(dist)
    intra_mean = float(np.mean(intra)) if intra else 0.0
    inter_mean = float(np.mean(inter)) if inter else 0.0
    ratio = intra_mean / inter_mean if inter_mean > 0 else float("inf")
    return {
        "intra_mean": intra_mean,
        "inter_mean": inter_mean,
        "ratio": ratio,
        "separated": ratio < 1.0,
    }


@dataclass
class TrainStats:
    epochs: int
    losses: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else 0.0


class MetricTrainer:
    """Trains a :class:`CircuitEncoder` with metric-learning losses."""

    def __init__(
        self,
        encoder: CircuitEncoder,
        lr: float = 5e-3,
        loss: str = "contrastive",
        margin: float = 0.8,
        seed: int = 0,
    ) -> None:
        if loss not in ("contrastive", "multi_similarity"):
            raise ValueError(f"unknown loss {loss!r}")
        self.encoder = encoder
        self.loss_name = loss
        self.margin = margin
        self.rng = np.random.default_rng(seed)
        model = encoder.model
        self.optimizer = Adam(model.parameters, model.gradients, lr=lr)

    def train(
        self,
        graphs: list[GraphData],
        labels: list[int],
        epochs: int = 30,
        pairs_per_epoch: int = 32,
    ) -> TrainStats:
        """Train on labelled module graphs; returns the loss history."""
        labels_arr = np.asarray(labels)
        losses = []
        for _ in range(epochs):
            if self.loss_name == "contrastive":
                epoch_loss = self._contrastive_epoch(graphs, labels_arr, pairs_per_epoch)
            else:
                epoch_loss = self._ms_epoch(graphs, labels_arr, pairs_per_epoch)
            losses.append(epoch_loss)
        return TrainStats(epochs=epochs, losses=losses)

    def _embed_with_cache(self, graph: GraphData) -> np.ndarray:
        return self.encoder.model.embed_graph(graph)

    def _contrastive_epoch(self, graphs, labels, num_pairs) -> float:
        model = self.encoder.model
        total = 0.0
        for _ in range(num_pairs):
            i, j = self._sample_pair(labels)
            same = labels[i] == labels[j]
            model.zero_grad()
            emb_i = model.embed_graph(graphs[i])
            # Backprop for i must happen before the caches are overwritten
            # by j's forward pass, so compute j's embedding first w/o grad,
            # then redo i/j forward-backward separately.
            emb_j = model.embed_graph(graphs[j])
            loss, grad_i, grad_j = contrastive_loss(emb_i, emb_j, same, self.margin)
            if loss > 0:
                model.embed_graph(graphs[i])
                model.backward_graph(grad_i)
                model.embed_graph(graphs[j])
                model.backward_graph(grad_j)
                self.optimizer.step()
            total += loss
        return total / num_pairs

    def _ms_epoch(self, graphs, labels, batch_size) -> float:
        model = self.encoder.model
        idx = self.rng.choice(len(graphs), size=min(batch_size, len(graphs)), replace=False)
        embeddings = np.vstack([model.embed_graph(graphs[i]) for i in idx])
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        normalized = embeddings / norms
        loss, grad_norm = multi_similarity_loss(normalized, labels[idx])
        model.zero_grad()
        for row, i in enumerate(idx):
            # grad through the normalization
            norm = norms[row, 0]
            g = grad_norm[row] / norm - (
                normalized[row] * (grad_norm[row] @ normalized[row]) / norm
            )
            model.embed_graph(graphs[i])
            model.backward_graph(g)
        self.optimizer.step()
        return loss

    def _sample_pair(self, labels) -> tuple[int, int]:
        n = len(labels)
        if self.rng.random() < 0.5:
            # positive pair
            label = self.rng.choice(labels)
            members = np.flatnonzero(labels == label)
            if len(members) >= 2:
                i, j = self.rng.choice(members, size=2, replace=False)
                return int(i), int(j)
        i, j = self.rng.choice(n, size=2, replace=False)
        return int(i), int(j)
