"""Parallel execution for the evaluation harness.

The Table III/IV harnesses fan out over independent units of work —
designs, models, pass@k seeds — that share no mutable state (each run
builds its own shell and netlist; the LLM clients are stateless after
construction; the synthesis cache and perf registry are lock-protected).
This module provides the one primitive they need: an order-preserving
``parallel_map`` over :mod:`concurrent.futures` threads.

Each task runs inside a copy of the **caller's** ``contextvars.Context``
(one fresh copy per task, taken at submit time), so ambient context —
in particular the current :mod:`repro.obs` span — survives the thread
hop and worker spans nest under the harness span that spawned them.
Submit→start latency is recorded per task in the
``eval.parallel_queue_wait`` perf timer, which is how queueing delay is
told apart from actual work when a fan-out is slower than expected.

Job count resolution, in priority order:

1. explicit ``jobs=`` argument;
2. the ``REPRO_JOBS`` environment variable;
3. ``os.cpu_count()`` capped at :data:`DEFAULT_MAX_JOBS`.

``REPRO_JOBS=1`` (or ``jobs=1``) forces fully serial execution.  Results
are always returned in input order and exceptions propagate exactly as in
a serial loop, so parallelism never changes what a harness returns —
only how long it takes.
"""

from __future__ import annotations

import contextvars
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from . import obs, perf

__all__ = ["DEFAULT_MAX_JOBS", "resolve_jobs", "parallel_map"]

#: Upper bound on the default worker count (override with REPRO_JOBS).
DEFAULT_MAX_JOBS = 8

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count honouring the ``REPRO_JOBS`` override."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            jobs = min(os.cpu_count() or 1, DEFAULT_MAX_JOBS)
    return max(1, jobs)


def _run_task(
    ctx: contextvars.Context,
    fn: Callable[[T], R],
    item: T,
    index: int,
    label: str,
    submitted: float,
) -> R:
    """Worker-side wrapper: queue-wait timing + caller-context execution."""
    perf.add_time("eval.parallel_queue_wait", time.perf_counter() - submitted)
    return ctx.run(_run_traced, fn, item, index, label)


def _run_traced(fn: Callable[[T], R], item: T, index: int, label: str) -> R:
    with obs.span("eval.task", label=label, index=index):
        return fn(item)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    label: str = "repro-eval",
) -> list[R]:
    """Apply ``fn`` to every item, possibly concurrently.

    Deterministic: the result list matches the input order regardless of
    completion order, and the first exception raised by ``fn`` propagates
    (as in a serial loop).  Runs serially when only one worker is
    resolved or there is at most one item.
    """
    work: Sequence[T] = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    perf.incr("eval.parallel_batches")
    perf.incr("eval.parallel_tasks", len(work))
    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix=label) as pool:
        # One context copy per task, taken here in the caller's thread:
        # a Context can only be entered once at a time, so tasks sharing
        # a single copy would collide when they run concurrently.
        futures = [
            pool.submit(
                _run_task,
                contextvars.copy_context(),
                fn,
                item,
                index,
                label,
                time.perf_counter(),
            )
            for index, item in enumerate(work)
        ]
        return [future.result() for future in futures]
