"""Graph containers and adjacency utilities for the GNN framework."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GraphData", "mean_adjacency"]


@dataclass
class GraphData:
    """A homogeneous graph for GNN consumption.

    Attributes:
        features: node feature matrix, shape (num_nodes, feat_dim).
        edges: list of (src, dst) index pairs (treated as undirected by
            :func:`mean_adjacency` unless ``directed`` is set).
        label: optional class/family label (used by metric learning).
        meta: free-form metadata (module name, design name, ...).
    """

    features: np.ndarray
    edges: list[tuple[int, int]] = field(default_factory=list)
    label: int | None = None
    meta: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.features.shape[0])

    def validate(self) -> None:
        n = self.num_nodes
        for src, dst in self.edges:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"edge ({src}, {dst}) out of range for {n} nodes")


def mean_adjacency(
    num_nodes: int,
    edges: list[tuple[int, int]],
    directed: bool = False,
    self_loops: bool = True,
) -> np.ndarray:
    """Row-normalized (mean-aggregating) dense adjacency matrix.

    Row v averages the features of N(v); with ``self_loops`` a node with no
    neighbours falls back to itself, keeping the propagation well-defined.
    """
    adj = np.zeros((num_nodes, num_nodes), dtype=np.float64)
    for src, dst in edges:
        adj[dst, src] = 1.0
        if not directed:
            adj[src, dst] = 1.0
    if self_loops:
        isolated = adj.sum(axis=1) == 0
        adj[isolated, isolated] = 1.0
    degree = adj.sum(axis=1, keepdims=True)
    degree[degree == 0] = 1.0
    return adj / degree
