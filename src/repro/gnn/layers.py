"""GraphSAGE layers with explicit forward/backward passes.

Implements the paper's Eq. 3:

    h_v^(k) = sigma( W^(k) . Aggregator({h_u^(k-1), u in N(v)}) )

in the common "self + neighbour" parameterization:

    H^(k) = sigma( H^(k-1) W_self + (A_mean H^(k-1)) W_neigh + b )

where ``A_mean`` is a row-normalized adjacency (mean aggregator).  Backward
passes are hand-derived so no autograd framework is needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SAGELayer", "relu", "relu_grad", "tanh", "tanh_grad"]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(np.float64)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


_ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
    "linear": (lambda x: x, lambda x: np.ones_like(x)),
}


class SAGELayer:
    """One GraphSAGE convolution with mean aggregation.

    Parameters are Glorot-initialized.  ``forward`` caches activations for
    the subsequent ``backward`` call; layers are therefore not re-entrant
    across interleaved graphs (the model processes one graph at a time).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(6.0 / (in_dim + out_dim))
        self.w_self = rng.uniform(-scale, scale, size=(in_dim, out_dim))
        self.w_neigh = rng.uniform(-scale, scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        # caches
        self._h_in: np.ndarray | None = None
        self._agg: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self._adj: np.ndarray | None = None
        # gradients
        self.grad_w_self = np.zeros_like(self.w_self)
        self.grad_w_neigh = np.zeros_like(self.w_neigh)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.w_self, self.w_neigh, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_w_self, self.grad_w_neigh, self.grad_bias]

    def zero_grad(self) -> None:
        self.grad_w_self[:] = 0.0
        self.grad_w_neigh[:] = 0.0
        self.grad_bias[:] = 0.0

    def forward(self, h: np.ndarray, adj_mean: np.ndarray) -> np.ndarray:
        """Propagate node features ``h`` through the layer."""
        self._h_in = h
        self._adj = adj_mean
        self._agg = adj_mean @ h
        self._pre = h @ self.w_self + self._agg @ self.w_neigh + self.bias
        return self._act(self._pre)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._pre is None:
            raise RuntimeError("backward called before forward")
        grad_pre = grad_out * self._act_grad(self._pre)
        self.grad_w_self += self._h_in.T @ grad_pre
        self.grad_w_neigh += self._agg.T @ grad_pre
        self.grad_bias += grad_pre.sum(axis=0)
        grad_h = grad_pre @ self.w_self.T
        grad_agg = grad_pre @ self.w_neigh.T
        grad_h += self._adj.T @ grad_agg
        return grad_h
