"""GraphSAGE layers with explicit forward/backward passes.

Implements the paper's Eq. 3:

    h_v^(k) = sigma( W^(k) . Aggregator({h_u^(k-1), u in N(v)}) )

in the common "self + neighbour" parameterization:

    H^(k) = sigma( H^(k-1) W_self + (A_mean H^(k-1)) W_neigh + b )

where ``A_mean`` is a row-normalized adjacency (mean aggregator).  Backward
passes are hand-derived so no autograd framework is needed.

Layers come in two flavours of statefulness:

* the classic ``forward``/``backward`` pair keeps one activation cache on
  the layer (consumed by ``backward``) — the single-graph path;
* the re-entrant ``forward_reentrant``/``backward_reentrant`` pair moves
  the cache into an explicit :class:`LayerCache` owned by the caller, so
  the batched engine (:mod:`repro.gnn.batch`) can hold many in-flight
  activations at once without the layers trampling each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SAGELayer", "LayerCache", "relu", "relu_grad", "tanh", "tanh_grad"]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(np.float64)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


def linear(x: np.ndarray) -> np.ndarray:
    return x


def linear_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


# Named functions (not lambdas) so models holding an activation pair stay
# picklable — the process-backend executor ships encoders to workers.
_ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
    "linear": (linear, linear_grad),
}


@dataclass
class LayerCache:
    """Activations one layer needs to run its backward pass.

    ``h_in`` and ``agg`` are the layer inputs (node features and their
    mean-aggregated neighbourhoods), ``pre`` the pre-activation output.
    For batched calls these hold whole-batch arrays; ``backward_reentrant``
    accepts row slices of them.
    """

    h_in: np.ndarray
    agg: np.ndarray
    pre: np.ndarray


class SAGELayer:
    """One GraphSAGE convolution with mean aggregation.

    Parameters are Glorot-initialized.  ``forward`` caches activations for
    the subsequent ``backward`` call, which consumes them: a second
    ``backward`` (or one without a preceding ``forward``) raises
    ``RuntimeError`` instead of silently reusing stale activations.
    Batched execution uses the re-entrant API and never touches the
    layer-owned cache.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(6.0 / (in_dim + out_dim))
        self.w_self = rng.uniform(-scale, scale, size=(in_dim, out_dim))
        self.w_neigh = rng.uniform(-scale, scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        # single-graph caches (consumed by backward)
        self._cache: LayerCache | None = None
        self._adj: np.ndarray | None = None
        # gradients
        self.grad_w_self = np.zeros_like(self.w_self)
        self.grad_w_neigh = np.zeros_like(self.w_neigh)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.w_self, self.w_neigh, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_w_self, self.grad_w_neigh, self.grad_bias]

    def zero_grad(self) -> None:
        self.grad_w_self[:] = 0.0
        self.grad_w_neigh[:] = 0.0
        self.grad_bias[:] = 0.0

    # -- re-entrant API (explicit caches, used by the batched engine) -------

    def forward_reentrant(
        self, h: np.ndarray, agg: np.ndarray
    ) -> tuple[np.ndarray, LayerCache]:
        """Forward from precomputed aggregation; caller owns the cache."""
        pre = h @ self.w_self + agg @ self.w_neigh + self.bias
        return self._act(pre), LayerCache(h_in=h, agg=agg, pre=pre)

    def backward_reentrant(
        self, grad_out: np.ndarray, cache: LayerCache
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate parameter grads from an explicit cache.

        Returns ``(grad_h, grad_agg)``: the gradient w.r.t. the direct
        input rows and w.r.t. the aggregated rows.  The caller applies its
        own adjacency transpose (``grad_h + adj.T @ grad_agg``), since in
        batched mode the adjacency is per-graph-block.
        """
        grad_pre = grad_out * self._act_grad(cache.pre)
        self.grad_w_self += cache.h_in.T @ grad_pre
        self.grad_w_neigh += cache.agg.T @ grad_pre
        self.grad_bias += grad_pre.sum(axis=0)
        return grad_pre @ self.w_self.T, grad_pre @ self.w_neigh.T

    # -- single-graph API ---------------------------------------------------

    def forward(self, h: np.ndarray, adj_mean: np.ndarray) -> np.ndarray:
        """Propagate node features ``h`` through the layer."""
        out, cache = self.forward_reentrant(h, adj_mean @ h)
        self._cache = cache
        self._adj = adj_mean
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Consume the cached activations; return gradient w.r.t. the input."""
        if self._cache is None:
            raise RuntimeError(
                "SAGELayer.backward called without a matching forward "
                "(no activation cache, or it was already consumed by a "
                "previous backward)"
            )
        cache, adj = self._cache, self._adj
        self._cache = None
        self._adj = None
        grad_h, grad_agg = self.backward_reentrant(grad_out, cache)
        grad_h = grad_h + adj.T @ grad_agg
        return grad_h
