"""Optimizers for the numpy GNN framework."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Vanilla SGD with optional momentum."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in parameters]

    def step(self) -> None:
        for param, grad, vel in zip(self.parameters, self.gradients, self._velocity):
            vel *= self.momentum
            vel -= self.lr * grad
            param += vel


class Adam:
    """Adam optimizer (Kingma & Ba) over in-place parameter arrays."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self.parameters, self.gradients, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
