"""Optimizers for the numpy GNN framework.

Both optimizers accept an optional ``on_step`` callback fired after each
parameter update — :class:`~repro.mentor.metric_learning.MetricTrainer`
wires it to ``GraphSAGE.bump_version`` so the versioned embedding cache
is invalidated on every step.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Vanilla SGD with optional momentum."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
        on_step: Callable[[], None] | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.momentum = momentum
        self.on_step = on_step
        self._velocity = [np.zeros_like(p) for p in parameters]

    def step(self) -> None:
        for param, grad, vel in zip(self.parameters, self.gradients, self._velocity):
            vel *= self.momentum
            vel -= self.lr * grad
            param += vel
        if self.on_step is not None:
            self.on_step()


class Adam:
    """Adam optimizer (Kingma & Ba) over in-place parameter arrays."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        on_step: Callable[[], None] | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.on_step = on_step
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        # Two scratch buffers per parameter make the update allocation-free
        # (the step runs once per training iteration, so the ~8 temporaries
        # per parameter it used to allocate were pure overhead).  Every
        # expression below issues the same ufuncs on the same operands as
        # the textbook form, so trajectories are bit-identical to it.
        self._s1 = [np.zeros_like(p) for p in parameters]
        self._s2 = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        one_m_b1 = 1 - self.beta1
        one_m_b2 = 1 - self.beta2
        for param, grad, m, v, s1, s2 in zip(
            self.parameters, self.gradients, self._m, self._v, self._s1, self._s2
        ):
            # m = beta1*m + (1-beta1)*grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, one_m_b1, out=s1)
            np.add(m, s1, out=m)
            # v = beta2*v + (1-beta2)*grad^2   (grad**2 == grad*grad bitwise)
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=s1)
            np.multiply(s1, one_m_b2, out=s1)
            np.add(v, s1, out=v)
            # param -= lr*m_hat / (sqrt(v_hat) + eps)
            np.true_divide(m, bias1, out=s1)     # m_hat
            np.true_divide(v, bias2, out=s2)     # v_hat
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.multiply(s1, self.lr, out=s1)
            np.true_divide(s1, s2, out=s1)
            np.subtract(param, s1, out=param)
        if self.on_step is not None:
            self.on_step()
