"""Batched GNN execution engine.

The scalar :class:`~repro.gnn.model.GraphSAGE` path embeds one graph at a
time: every ``embed_graph`` call rebuilds the mean adjacency with a Python
edge loop and issues a handful of small matmuls, and metric-learning
epochs re-run forwards just to repopulate layer caches before backward.
This module packs a list of :class:`~repro.gnn.graph.GraphData` into one
disjoint-union batch and runs forward *and* the hand-derived backward over
the whole batch:

* **Packing** (:class:`GraphBatch`) — graphs are stored size-sorted so
  that same-size graphs occupy contiguous node rows; node features are
  concatenated into one ``(total_nodes, feat_dim)`` matrix with
  node-offset bookkeeping (``offsets``/``segment_ids``), and each size
  group keeps its dense mean-adjacency blocks in one ``(G, n, n)`` stack.
  The block-diagonal adjacency is also exposed in CSR-style arrays
  (``indptr``/``indices``/``weights``) for stats and export.  Dense
  blocks are memoized per ``GraphData`` (weakref-evicted), so training
  epochs that re-batch the same graphs never rebuild adjacency.
* **Forward** — per layer, every per-graph matmul of the scalar path
  (aggregation ``adj @ H``, the weight transforms ``H @ W_self`` and
  ``AGG @ W_neigh``) becomes one *stacked* 3-D ``np.matmul`` per size
  group; activations and bias adds run batch-wide.  Readout is a stacked
  segment mean per group.  All intermediate buffers live in a
  :class:`_Workspace` drawn from a global pool keyed by (layer
  signature, batch layout) — workspaces hold no batch data, so any
  same-shaped batch reuses warm, zero-initialised buffers and the steady
  state allocates nothing per call.  Each forward returns an independent
  :class:`BatchState`, keeping the engine re-entrant.
* **Backward** — pooled-gradient scatter, stacked per-group reductions,
  and parameter-gradient accumulation in a caller-chosen graph order:
  the caller's order by default, an explicit permutation/subset via
  ``order=``, or the batch's internal slot order via ``order="slots"``
  (fastest — the per-graph gradient stacks reduce in place with no
  gather; a scalar loop matches it by iterating in
  :func:`accumulation_order`).  Layer 0's input gradient is never
  consumed, so its matmuls are skipped.

Parity contract
---------------

Batched results are *bit-exact* against the scalar path, by construction:

* adjacency blocks run the same expressions as
  :func:`~repro.gnn.graph.mean_adjacency`, only with vectorized index
  assignment (set semantics are identical, so duplicate edges collapse
  the same way);
* every matrix product is issued as a stacked 3-D ``np.matmul`` whose
  2-D slices have exactly the scalar path's operand shapes — numpy
  dispatches each slice to the same GEMM kernel, so slice ``i`` is
  bitwise ``A[i] @ B[i]`` (this holds for transposed stride views and
  for one-node graphs too, and is enforced empirically by the parity
  suite);
* segment means/sums reduce each ``(n, d)`` slice exactly like the
  scalar ``mean(axis=0)``/``sum(axis=0)`` calls, and parameter-gradient
  stacks are reduced with ``np.add.reduce`` over the graph axis, which
  sums sequentially in the chosen accumulation order — the same order
  (and therefore the same rounding) as a scalar loop's ``+=``
  accumulation over those graphs from zeroed gradients.

``tests/gnn/test_batch_parity.py`` enforces the contract with hypothesis
over random graphs and over the seven OpenCores designs.

Set ``REPRO_BATCH_GNN=0`` to fall back to the scalar per-graph path
everywhere (the batched engine is the default).

On top of the engine sits a **model-version-keyed embedding cache**:
``GraphSAGE.embed_graphs`` memoizes pooled graph embeddings keyed by
``(model, model.version, graph)``.  ``load_state_dict`` and optimizer
steps bump the version, so stale embeddings can never be served; hit/miss
counters are exported to :mod:`repro.perf` under the ``gnn_embed`` stats
provider (they show up in the obs run report's ``caches`` section).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import perf
from .graph import GraphData
from .layers import LayerCache

__all__ = [
    "batch_gnn_enabled",
    "embed_cache_enabled",
    "accumulation_order",
    "GraphBatch",
    "pack_graphs",
    "BatchState",
    "batched_forward",
    "batched_backward",
    "release_state",
    "EmbeddingCache",
    "embedding_cache",
    "embed_graphs_cached",
]

_FALSY = ("0", "false", "no", "off")
_clock = time.perf_counter


def batch_gnn_enabled() -> bool:
    """Whether the batched engine is active (``REPRO_BATCH_GNN``, default on)."""
    return os.environ.get("REPRO_BATCH_GNN", "1").lower() not in _FALSY


def embed_cache_enabled() -> bool:
    """Whether the versioned embedding cache is active (``REPRO_GNN_EMBED_CACHE``)."""
    return os.environ.get("REPRO_GNN_EMBED_CACHE", "1").lower() not in _FALSY


# -- adjacency blocks ---------------------------------------------------------

#: id(graph) -> (num_nodes, num_edges, dense mean-adjacency block).
#: Entries are evicted by a weakref.finalize on the owning GraphData, and
#: revalidated against (num_nodes, num_edges) — mutating a graph's edge
#: list *in place* while keeping its length is not supported (build a new
#: GraphData instead, as every producer in this repo does).
_adj_blocks: dict[int, tuple[int, int, np.ndarray]] = {}
_adj_lock = threading.Lock()


def _dense_mean_block(graph: GraphData) -> np.ndarray:
    """Vectorized twin of :func:`~repro.gnn.graph.mean_adjacency`.

    Runs the same expressions with array index assignment instead of a
    Python edge loop; the result is bitwise identical (assignment of 1.0
    is idempotent under duplicates, and the normalization arithmetic is
    the same ops on the same operands).
    """
    n = graph.num_nodes
    adj = np.zeros((n, n), dtype=np.float64)
    if graph.edges:
        e = np.asarray(graph.edges, dtype=np.intp).reshape(-1, 2)
        adj[e[:, 1], e[:, 0]] = 1.0
        adj[e[:, 0], e[:, 1]] = 1.0
    isolated = adj.sum(axis=1) == 0
    adj[isolated, isolated] = 1.0
    degree = adj.sum(axis=1, keepdims=True)
    degree[degree == 0] = 1.0
    return adj / degree


def _adjacency_block(graph: GraphData) -> np.ndarray:
    key = id(graph)
    n, m = graph.num_nodes, len(graph.edges)
    with _adj_lock:
        hit = _adj_blocks.get(key)
        if hit is not None and hit[0] == n and hit[1] == m:
            perf.incr("gnn.adj_cache_hit")
            return hit[2]
    perf.incr("gnn.adj_cache_miss")
    block = _dense_mean_block(graph)
    try:
        weakref.finalize(graph, _adj_blocks.pop, key, None)
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        return block
    with _adj_lock:
        _adj_blocks[key] = (n, m, block)
    return block


def _adjacency_blocks(graphs: list[GraphData]) -> list[np.ndarray]:
    """Memoized blocks for many graphs with one lock round-trip."""
    out: list[np.ndarray | None] = [None] * len(graphs)
    missing: list[int] = []
    hits = 0
    with _adj_lock:
        for pos, graph in enumerate(graphs):
            hit = _adj_blocks.get(id(graph))
            if (
                hit is not None
                and hit[0] == graph.num_nodes
                and hit[1] == len(graph.edges)
            ):
                out[pos] = hit[2]
                hits += 1
            else:
                missing.append(pos)
    if hits:
        perf.incr("gnn.adj_cache_hit", hits)
    for pos in missing:
        out[pos] = _adjacency_block(graphs[pos])
    return out


# -- batch packing ------------------------------------------------------------


class SizeGroup:
    """A run of same-size graphs inside a :class:`GraphBatch`.

    ``blocks`` stacks the dense adjacency blocks as ``(size, n, n)`` so
    kernels can issue one 3-D matmul per group; ``orig`` maps group slots
    back to the caller's graph indices.
    """

    __slots__ = (
        "n", "size", "start", "end", "gstart", "gend", "orig",
        "blocks", "blocks_t",
    )

    def __init__(self, n, size, start, end, gstart, gend, orig, blocks) -> None:
        self.n = n          # nodes per graph
        self.size = size    # graphs in the group
        self.start = start  # first node row in the batch
        self.end = end      # one past the last node row
        self.gstart = gstart  # first graph slot (internal sorted order)
        self.gend = gend      # one past the last graph slot
        self.orig = orig    # original graph indices, shape (size,)
        self.blocks = blocks  # stacked adjacency, shape (size, n, n)
        self.blocks_t = blocks.transpose(0, 2, 1)  # view, for backward


def accumulation_order(sizes) -> np.ndarray:
    """Internal slot order for graphs of the given node counts.

    This is the one definition of the batch layout's graph order (stable
    sort by size): :class:`GraphBatch` packs with it, and a scalar loop
    that iterates graphs in this order accumulates parameter gradients
    bit-identically to ``batched_backward(..., order="slots")``.
    """
    return np.argsort(np.asarray(sizes), kind="stable")


class GraphBatch:
    """Disjoint union of graphs: one feature matrix + block-diagonal adjacency.

    Graphs are stored **size-sorted** (stable, so equal sizes keep the
    caller's relative order): same-size graphs then occupy contiguous node
    rows, and a zero-copy reshape turns each group's rows into the
    ``(G, n, d)`` stacks the kernels consume.  ``order[slot]`` is the
    caller's index of the graph stored at ``slot``; embeddings returned by
    :func:`batched_forward` are always in the caller's order.
    """

    __slots__ = (
        "graphs", "features", "offsets", "counts", "num_graphs",
        "total_nodes", "order", "inv", "groups", "_csr", "layout_key",
    )

    def __init__(self, graphs: list[GraphData]) -> None:
        self.graphs = list(graphs)
        feats = [np.asarray(g.features, dtype=np.float64) for g in self.graphs]
        dims = {f.shape[1] for f in feats}
        if len(dims) > 1:
            raise ValueError(f"inconsistent feature dims in batch: {sorted(dims)}")
        self.num_graphs = len(self.graphs)
        sizes = np.array([f.shape[0] for f in feats], dtype=np.intp)
        self.order = accumulation_order(sizes)
        self.inv = np.argsort(self.order)  # caller index -> internal slot
        self.counts = sizes[self.order]
        self.offsets = np.zeros(self.num_graphs + 1, dtype=np.intp)
        np.cumsum(self.counts, out=self.offsets[1:])
        self.total_nodes = int(self.offsets[-1])
        feat_dim = dims.pop() if dims else 0
        self.features = (
            np.concatenate([feats[i] for i in self.order], axis=0)
            if feats
            else np.empty((0, feat_dim), dtype=np.float64)
        )
        blocks = _adjacency_blocks(self.graphs)
        self.groups: list[SizeGroup] = []
        bounds = np.flatnonzero(np.diff(self.counts)) + 1
        for a, b in zip(
            np.concatenate(([0], bounds)),
            np.concatenate((bounds, [self.num_graphs])),
        ):
            if a == b:
                continue
            orig = self.order[a:b]
            self.groups.append(
                SizeGroup(
                    n=int(self.counts[a]),
                    size=int(b - a),
                    start=int(self.offsets[a]),
                    end=int(self.offsets[b]),
                    gstart=int(a),
                    gend=int(b),
                    orig=orig,
                    blocks=np.stack([blocks[i] for i in orig]),
                )
            )
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Buffer layout is fully determined by the sorted node counts (plus
        # the model's layer shapes); batches over different graphs — or the
        # same graphs in a different order — share pooled workspaces when
        # their layouts match.
        self.layout_key = tuple(map(int, self.counts))

    @property
    def segment_ids(self) -> np.ndarray:
        """Caller's graph index of each node row (internal layout)."""
        return np.repeat(self.order, self.counts)

    def iter_blocks(self):
        """Yield ``(caller_graph_index, start, end, dense_adjacency_block)``
        in the batch's internal (size-sorted) storage order."""
        for group in self.groups:
            for pos in range(group.size):
                start = group.start + pos * group.n
                yield int(group.orig[pos]), start, start + group.n, group.blocks[pos]

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block-diagonal adjacency as ``(indptr, indices, weights)``.

        Rows follow the internal (size-sorted) node layout, matching
        ``iter_blocks``.  Built lazily: the compute kernels consume the
        dense stacks (which preserve bit-parity with the scalar dense
        matmuls), while the CSR view is the compact canonical form for
        stats and export.
        """
        if self._csr is None:
            indices, weights = [], []
            row_counts = np.zeros(self.total_nodes, dtype=np.intp)
            for _, start, _end, block in self.iter_blocks():
                rows, cols = np.nonzero(block)
                indices.append(cols + start)
                weights.append(block[rows, cols])
                row_counts[start:start + block.shape[0]] = np.bincount(
                    rows, minlength=block.shape[0]
                )
            indptr = np.zeros(self.total_nodes + 1, dtype=np.intp)
            np.cumsum(row_counts, out=indptr[1:])
            self._csr = (
                indptr,
                np.concatenate(indices) if indices else np.empty(0, dtype=np.intp),
                np.concatenate(weights) if weights else np.empty(0),
            )
        return self._csr

    @property
    def nnz(self) -> int:
        return int(self.csr[0][-1])


#: Memoized batches for recurring graph lists, keyed by the identity of
#: every graph in order.  Entries hold strong references to their graphs
#: (via ``GraphBatch.graphs``), so a key's ids cannot be recycled while
#: its entry is alive; the per-graph (num_nodes, num_edges) signature
#: additionally guards against in-place edge mutation, like ``_adj_blocks``.
_batch_memo: OrderedDict[tuple, tuple[tuple, GraphBatch]] = OrderedDict()
_batch_memo_lock = threading.Lock()
# Sized for contrastive training, which cycles through O(pairs^2) distinct
# two-graph lists per corpus — far more keys than the handful of full-corpus
# lists the other callers produce.
_BATCH_MEMO_CAPACITY = 256


def pack_graphs(graphs: list[GraphData]) -> GraphBatch:
    """A (memoized) :class:`GraphBatch` for ``graphs``.

    Training epochs and repeated ``embed_graphs`` calls re-batch the same
    graph lists; the memo makes re-packing a dictionary hit, and with it
    the batch's adjacency stacks are reused too.
    """
    # Identity and shape fused into one key: a graph mutated in place gets
    # a different key and simply misses (the stale entry ages out via LRU).
    key = tuple((id(g), g.num_nodes, len(g.edges)) for g in graphs)
    with _batch_memo_lock:
        hit = _batch_memo.get(key)
        if hit is not None:
            _batch_memo.move_to_end(key)
            perf.incr("gnn.batch_memo_hit")
            return hit
    perf.incr("gnn.batch_memo_miss")
    batch = GraphBatch(graphs)
    with _batch_memo_lock:
        _batch_memo[key] = batch
        while len(_batch_memo) > _BATCH_MEMO_CAPACITY:
            _batch_memo.popitem(last=False)
    return batch


class _LayerWS:
    """Per-layer buffers and prebuilt group views of one :class:`_Workspace`.

    ``h_in`` aliases the previous layer's ``out`` (activations chain
    through shared buffers); ``pw_self``/``pw_neigh``/``pbias`` stack the
    per-graph parameter-gradient contributions in internal slot order so
    the caller-order reduction is a fancy-index away.
    """

    __slots__ = (
        "act", "h_in", "agg", "pre", "xn", "out",
        "gout", "gp", "ga", "pw_self", "pw_neigh", "pbias",
        "gb", "pw_scratch", "pb_scratch", "gw_scratch", "gb_scratch",
        "fviews", "bviews",
    )


class _Workspace:
    """Preallocated arrays + prebuilt views for one ``(model-shape, layout)``.

    Building the slice/reshape views once (instead of per call) is what
    lets :func:`batched_forward`/:func:`batched_backward` run as a flat
    sequence of ``out=`` kernels with no per-call allocation.  Workspaces
    reference *no* batch data — packed features are copied into ``h0`` at
    each forward and adjacency stacks come from the batch's groups at call
    time — so one workspace serves every batch with the same node-count
    layout (training epochs re-batch shuffled permutations of the same
    graphs endlessly).  Buffers are zero-initialized: matmul timings must
    not depend on leftover bit patterns (denormals in uninitialized pages
    are dramatically slower).
    """

    __slots__ = ("h0", "layers", "gin", "emb_int", "emb_views", "rep")

    def __init__(self, batch: GraphBatch, key: tuple) -> None:
        total, ng = batch.total_nodes, batch.num_graphs
        # Layer 0's input: a per-forward copy of the packed features —
        # same values, same layout, so the GEMMs it feeds are bit-identical.
        h = np.zeros((total, key[0][0])) if key else batch.features
        self.h0 = h if key else None
        self.layers: list[_LayerWS] = []
        # Gradient w.r.t. the input of the layer being processed; for
        # layer 0 this is d(loss)/d(features), computed then discarded.
        gprev = np.zeros((total, key[0][0])) if key else None
        self.gin = gprev
        for in_dim, out_dim, act in key:
            L = _LayerWS()
            L.act = act
            L.h_in = h
            L.agg = np.zeros((total, in_dim))
            L.pre = np.zeros((total, out_dim))
            L.xn = np.zeros((total, out_dim))    # agg @ w_neigh partial
            # identity activation writes nothing: out aliases pre
            L.out = L.pre if act == "linear" else np.zeros((total, out_dim))
            L.gout = np.zeros((total, out_dim))
            L.gp = L.gout if act == "linear" else np.zeros((total, out_dim))
            L.ga = np.zeros((total, in_dim))     # grad_agg, then grad_h
            L.pw_self = np.zeros((ng, in_dim, out_dim))
            L.pw_neigh = np.zeros((ng, in_dim, out_dim))
            L.pbias = np.zeros((ng, out_dim))
            # Scratch for allocation-free reduction: caller-order ``take``
            # target, reduce targets, and the relu-mask buffer.
            L.gb = np.zeros((total, out_dim))
            L.pw_scratch = np.zeros((ng, in_dim, out_dim))
            L.pb_scratch = np.zeros((ng, out_dim))
            L.gw_scratch = np.zeros((in_dim, out_dim))
            L.gb_scratch = np.zeros(out_dim)
            L.fviews = []
            L.bviews = []
            for grp in batch.groups:
                s, e, g, n = grp.start, grp.end, grp.size, grp.n
                a, b = grp.gstart, grp.gend
                hv = h[s:e].reshape(g, n, in_dim)
                aggv = L.agg[s:e].reshape(g, n, in_dim)
                gpv = L.gp[s:e].reshape(g, n, out_dim)
                L.fviews.append((
                    hv,
                    aggv,
                    L.pre[s:e].reshape(g, n, out_dim),   # x_self target
                    L.xn[s:e].reshape(g, n, out_dim),
                ))
                L.bviews.append((
                    hv.transpose(0, 2, 1),
                    aggv.transpose(0, 2, 1),
                    gpv,
                    L.ga[s:e].reshape(g, n, in_dim),
                    gprev[s:e].reshape(g, n, in_dim),
                    L.pw_self[a:b],
                    L.pw_neigh[a:b],
                    L.pbias[a:b],
                ))
            self.layers.append(L)
            h = L.out
            gprev = L.gout
        emb_dim = key[-1][1] if key else 0
        # Graph embeddings in *internal* slot order; ``emb_int[batch.inv]``
        # is the fresh caller-order copy handed back to the caller.
        self.emb_int = np.zeros((ng, emb_dim))
        self.emb_views = [
            (h[grp.start:grp.end].reshape(grp.size, grp.n, emb_dim),
             self.emb_int[grp.gstart:grp.gend],
             grp.n)
            for grp in batch.groups
        ]
        # Internal graph slot of every node row, for the pooled-gradient
        # scatter (layout-determined, like everything else here).
        self.rep = np.repeat(np.arange(ng), batch.counts)


#: Pooled workspaces keyed by ``(model layer signature, batch layout)``.
#: An in-flight workspace is owned exclusively by its caller (it is *out*
#: of the pool), so concurrent batched calls and two retained
#: :class:`BatchState` objects never share buffers; LRU-bounded so odd
#: one-off layouts age out.
_ws_pool: OrderedDict[tuple, list[_Workspace]] = OrderedDict()
_ws_pool_lock = threading.Lock()
_WS_POOL_CAPACITY = 96  # total pooled workspaces across all layouts


def _ws_acquire(batch: GraphBatch, model) -> tuple[tuple, _Workspace]:
    """Check a forward/backward workspace out of the pool (or build one)."""
    key = tuple(
        (l.w_self.shape[0], l.w_self.shape[1], l.activation)
        for l in model.layers
    )
    ck = (key, batch.layout_key)
    with _ws_pool_lock:
        stack = _ws_pool.get(ck)
        if stack:
            ws = stack.pop()
            if stack:
                _ws_pool.move_to_end(ck)
            else:
                del _ws_pool[ck]
            return ck, ws
    return ck, _Workspace(batch, key)


def _ws_release(ck: tuple, ws: _Workspace) -> None:
    if ws.h0 is None:  # degenerate zero-layer model: not reusable
        return
    with _ws_pool_lock:
        _ws_pool.setdefault(ck, []).append(ws)
        _ws_pool.move_to_end(ck)
        total = sum(len(stack) for stack in _ws_pool.values())
        while total > _WS_POOL_CAPACITY:
            oldest = next(iter(_ws_pool))
            stack = _ws_pool[oldest]
            stack.pop()
            if not stack:
                del _ws_pool[oldest]
            total -= 1


@dataclass
class BatchState:
    """Per-call forward state: what ``batched_backward`` needs.

    Owning the activations here (instead of on the layers) is what makes
    the layers re-entrant: two in-flight batches never clobber each other.
    The state exclusively owns a workspace until its backward consumes it
    (a second backward on the same state raises ``RuntimeError``, like
    the scalar layers' consumed-cache discipline).
    """

    batch: GraphBatch
    caches: list[LayerCache]
    ws: "_Workspace | None" = None
    ws_key: tuple | None = None


# -- kernels ------------------------------------------------------------------


def batched_forward(
    model, batch: GraphBatch, keep_state: bool = True
) -> tuple[np.ndarray, BatchState | None]:
    """Embed every graph in ``batch``; returns ``(embeddings, state)``.

    ``embeddings`` has shape ``(num_graphs, embedding_dim)`` in the
    caller's graph order and is bit-exact with per-graph
    ``model.embed_graph`` calls.  With ``keep_state`` the returned
    :class:`BatchState` feeds :func:`batched_backward`; pass ``False``
    for inference so the workspace returns to the pool immediately.
    """
    perf.incr("gnn.batch_forward")
    perf.incr("gnn.batch_graphs", batch.num_graphs)
    start = _clock()  # direct timing: contextmanager overhead is visible here
    try:
        ck, ws = _ws_acquire(batch, model)
        if ws.h0 is not None:
            # Same values, same layout as the packed features, so the
            # GEMMs below are bit-identical to consuming them directly.
            np.copyto(ws.h0, batch.features)
        mm = np.matmul
        for layer, L in zip(model.layers, ws.layers):
            w_self, w_neigh = layer.w_self, layer.w_neigh
            for grp, (hv, aggv, xsv, xnv) in zip(batch.groups, L.fviews):
                mm(grp.blocks, hv, out=aggv)
                mm(hv, w_self, out=xsv)
                mm(aggv, w_neigh, out=xnv)
            # pre = (x_self + x_neigh) + bias, in the scalar association.
            np.add(L.pre, L.xn, out=L.pre)
            np.add(L.pre, layer.bias, out=L.pre)
            # Same ufunc as layer._act, written into the out buffer (for
            # "linear", act is the identity and L.out aliases L.pre).
            if L.act == "relu":
                np.maximum(L.pre, 0.0, out=L.out)
            elif L.act == "tanh":
                np.tanh(L.pre, out=L.out)
            elif L.out is not L.pre:  # pragma: no cover - defensive
                np.copyto(L.out, L.pre)
        # Readout: np.mean is sum-then-true_divide; issuing those two
        # ufuncs directly skips the wrapper (bit-identical result).
        for hv, ev, n in ws.emb_views:
            np.add.reduce(hv, axis=1, out=ev)
            np.true_divide(ev, n, out=ev)
        embeddings = ws.emb_int[batch.inv]
    finally:
        perf.add_time("gnn.batch_forward", _clock() - start)
    if keep_state:
        caches = [
            LayerCache(h_in=L.h_in, agg=L.agg, pre=L.pre) for L in ws.layers
        ]
        return embeddings, BatchState(batch=batch, caches=caches, ws=ws, ws_key=ck)
    _ws_release(ck, ws)
    return embeddings, None


def batched_backward(
    model, state: BatchState, grad_embeddings: np.ndarray, order=None
) -> None:
    """Backprop pooled-embedding gradients through a batched forward.

    ``grad_embeddings`` rows are in the caller's graph order.  Parameter
    gradients accumulate exactly like the scalar loop
    ``for g: embed_graph(g); backward_graph(grad[g])`` run from zeroed
    gradients — per-graph contributions are stacked per layer and reduced
    sequentially in the caller's graph order, so the sums are
    bit-identical.  Consumes the state (its workspace returns to the
    shared pool); a second backward on the same state raises.

    ``order``, if given, is a permutation (or subset) of caller graph
    indices fixing the accumulation sequence instead: parameter gradients
    sum the listed graphs' contributions in exactly that order, matching
    a scalar loop over ``order``.  ``grad_embeddings`` still covers every
    graph in the batch; graphs outside ``order`` contribute nothing.
    This lets a trainer reuse one memoized batch across shuffled
    minibatch epochs — the shuffle moves into the reduction order.

    ``order="slots"`` accumulates in the batch's *internal* slot order
    (:func:`accumulation_order` of the graph sizes) — the fastest mode,
    since the per-graph gradient stacks reduce in place with no gather.
    A scalar loop matches it by iterating graphs in that same order.
    """
    batch = state.batch
    grad_embeddings = np.asarray(grad_embeddings, dtype=np.float64)
    if grad_embeddings.shape[0] != batch.num_graphs:
        raise ValueError(
            f"expected {batch.num_graphs} embedding gradients, "
            f"got {grad_embeddings.shape[0]}"
        )
    ws = state.ws
    if ws is None:
        raise RuntimeError(
            "BatchState already consumed by a backward pass (or produced "
            "with keep_state=False)"
        )
    state.ws = None
    perf.incr("gnn.batch_backward")
    start = _clock()
    try:
        mm = np.matmul
        # Internal slot of each graph whose contribution is accumulated,
        # in accumulation order; None means internal slot order itself.
        if isinstance(order, str):
            if order != "slots":
                raise ValueError(f"unknown accumulation order {order!r}")
            inv = None
        else:
            inv = batch.inv if order is None else batch.inv[np.asarray(order)]
        # Scalar path: np.tile(grad_embedding / n, (n, 1)) — divide first,
        # then replicate; gathering the divided rows through ``rep`` is
        # the same row-repeat, written straight into the gout buffer.
        scaled = grad_embeddings[batch.order] / batch.counts[:, None]
        np.take(scaled, ws.rep, axis=0, out=ws.layers[-1].gout)
        first = ws.layers[0]
        for layer, L in zip(reversed(model.layers), reversed(ws.layers)):
            if L.act == "relu":
                # relu' is (pre > 0) as 1.0/0.0; greater() with a float
                # out-buffer produces exactly that without allocating.
                np.greater(L.pre, 0.0, out=L.gb)
                np.multiply(L.gout, L.gb, out=L.gp)
            elif L.act != "linear":
                np.multiply(L.gout, layer._act_grad(L.pre), out=L.gp)
            # else: act' == 1 exactly and L.gp aliases L.gout.
            # Transpose *views* of the weights, matching the scalar ``w.T``.
            w_self_t = layer.w_self.T
            w_neigh_t = layer.w_neigh.T
            # Layer 0's input gradient is d(loss)/d(features): nothing
            # consumes it, so its three matmuls per group are skipped.
            need_gin = L is not first
            for grp, (hv_t, aggv_t, gpv, gav, gnv, pwsv, pwnv, pbv) in zip(
                batch.groups, L.bviews
            ):
                mm(hv_t, gpv, out=pwsv)            # h.T @ grad_pre
                mm(aggv_t, gpv, out=pwnv)          # agg.T @ grad_pre
                np.add.reduce(gpv, axis=1, out=pbv)
                if need_gin:
                    mm(gpv, w_neigh_t, out=gav)    # grad_agg
                    mm(grp.blocks_t, gav, out=gnv)  # adj.T @ grad_agg
                    mm(gpv, w_self_t, out=gav)     # grad_h
                    # Same-rounding add in either order: a+b == b+a bitwise.
                    gnv += gav
            # np.add.reduce sums axis 0 sequentially; gathering the stacks
            # through ``inv`` puts them in accumulation order, so the sum
            # has the scalar loop's rounding.  (Accumulating onto
            # *nonzero* existing gradients would fold the old value in at
            # a different point than the scalar loop; both trainers
            # zero_grad before each backward.)
            if inv is None:
                # Slot order: the stacks are already in accumulation
                # order, so they reduce in place with no gather at all.
                np.add.reduce(L.pw_self, axis=0, out=L.gw_scratch)
                np.add(layer.grad_w_self, L.gw_scratch, out=layer.grad_w_self)
                np.add.reduce(L.pw_neigh, axis=0, out=L.gw_scratch)
                np.add(layer.grad_w_neigh, L.gw_scratch, out=layer.grad_w_neigh)
                np.add.reduce(L.pbias, axis=0, out=L.gb_scratch)
                np.add(layer.grad_bias, L.gb_scratch, out=layer.grad_bias)
            elif len(inv) == batch.num_graphs:
                # allocation-free: gather into scratch, reduce, accumulate
                np.take(L.pw_self, inv, axis=0, out=L.pw_scratch)
                np.add.reduce(L.pw_scratch, axis=0, out=L.gw_scratch)
                np.add(layer.grad_w_self, L.gw_scratch, out=layer.grad_w_self)
                np.take(L.pw_neigh, inv, axis=0, out=L.pw_scratch)
                np.add.reduce(L.pw_scratch, axis=0, out=L.gw_scratch)
                np.add(layer.grad_w_neigh, L.gw_scratch, out=layer.grad_w_neigh)
                np.take(L.pbias, inv, axis=0, out=L.pb_scratch)
                np.add.reduce(L.pb_scratch, axis=0, out=L.gb_scratch)
                np.add(layer.grad_bias, L.gb_scratch, out=layer.grad_bias)
            else:  # subset accumulation order: scratch shapes don't fit
                layer.grad_w_self += np.add.reduce(L.pw_self[inv], axis=0)
                layer.grad_w_neigh += np.add.reduce(L.pw_neigh[inv], axis=0)
                layer.grad_bias += np.add.reduce(L.pbias[inv], axis=0)
    finally:
        perf.add_time("gnn.batch_backward", _clock() - start)
    _ws_release(state.ws_key, ws)


def release_state(state: BatchState) -> None:
    """Return an unconsumed forward state's workspace to the shared pool.

    For callers that retain a state but decide not to backprop it (e.g. a
    zero-loss contrastive step, where running the backward would be
    wasted work).  Idempotent; a released state can no longer feed
    :func:`batched_backward`.
    """
    ws = state.ws
    if ws is not None:
        state.ws = None
        _ws_release(state.ws_key, ws)


# -- versioned embedding cache ------------------------------------------------


class EmbeddingCache:
    """LRU cache of pooled graph embeddings keyed by model version.

    Keys are ``(id(model), model.version, id(graph))`` with weakref
    finalizers evicting all of a model's or graph's entries when it is
    collected.  Because the version is part of the key, ``load_state_dict``
    and optimizer steps (which bump it) invalidate implicitly — stale
    entries simply never match and age out of the LRU.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._tracked: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _track(self, obj) -> None:
        if id(obj) not in self._tracked:
            self._tracked.add(id(obj))
            try:
                weakref.finalize(obj, self._drop_owner, id(obj))
            except TypeError:  # pragma: no cover - non-weakref-able object
                pass

    def _drop_owner(self, owner_id: int) -> None:
        with self._lock:
            self._tracked.discard(owner_id)
            dead = [k for k in self._entries if owner_id in (k[0], k[2])]
            for k in dead:
                del self._entries[k]

    def get(self, model, graph) -> np.ndarray | None:
        key = (id(model), model.version, id(graph))
        with self._lock:
            emb = self._entries.get(key)
            if emb is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return emb

    def put(self, model, graph, embedding: np.ndarray) -> None:
        self._track(model)
        self._track(graph)
        key = (id(model), model.version, id(graph))
        stored = np.array(embedding, dtype=np.float64, copy=True)
        stored.setflags(write=False)
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "enabled": embed_cache_enabled(),
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / lookups, 6) if lookups else 0.0,
                "evictions": self.evictions,
            }


#: Process-wide cache used by ``GraphSAGE.embed_graphs``.
embedding_cache = EmbeddingCache()

perf.register_stats_provider("gnn_embed", embedding_cache.stats)


def embed_graphs_cached(model, graphs: list[GraphData]) -> np.ndarray:
    """Embed ``graphs`` through the cache and the active engine.

    Both engine modes produce bit-identical embeddings (the parity
    contract above), so cached entries are valid across mode switches.
    """
    if not graphs:
        return np.empty((0, model.embedding_dim))
    use_cache = embed_cache_enabled()
    if not use_cache:
        # No cache to consult or fill: embed the list directly.  Duplicate
        # objects just occupy two batch slots and come out bit-identical
        # (each graph's slice is computed independently), exactly as the
        # scalar loop would embed them twice.
        if batch_gnn_enabled():
            fresh, _ = batched_forward(model, pack_graphs(graphs), keep_state=False)
            return fresh
        perf.incr("gnn.scalar_graphs", len(graphs))
        return np.vstack([model.embed_graph(g) for g in graphs])
    out = np.empty((len(graphs), model.embedding_dim))
    missing: list[int] = []
    duplicates: list[tuple[int, int]] = []
    seen: dict[int, int] = {}
    for pos, graph in enumerate(graphs):
        cached = embedding_cache.get(model, graph)
        if cached is not None:
            out[pos] = cached
        elif id(graph) in seen:  # duplicate object in one call
            duplicates.append((pos, seen[id(graph)]))
        else:
            seen[id(graph)] = pos
            missing.append(pos)
    if missing:
        todo = [graphs[pos] for pos in missing]
        if batch_gnn_enabled():
            fresh, _ = batched_forward(model, pack_graphs(todo), keep_state=False)
        else:
            perf.incr("gnn.scalar_graphs", len(todo))
            fresh = np.vstack([model.embed_graph(g) for g in todo])
        out[missing] = fresh
        for row, pos in enumerate(missing):
            embedding_cache.put(model, graphs[pos], fresh[row])
    for pos, src in duplicates:
        out[pos] = out[src]
    return out


def embed_graph_groups(model, groups: list[list[GraphData]]) -> list[np.ndarray]:
    """Embed several graph *groups* in one batched forward.

    This is the heterogeneous-arrival entry the serving layer coalesces
    on: each group is one logical unit (e.g. the module graphs of one
    design under analysis), and all groups' graphs are concatenated into
    a single :func:`embed_graphs_cached` call — one packed batch, one
    cache sweep — then sliced back per group.  The parity contract makes
    the grouping immaterial: each returned row is bit-exact with what a
    per-group (or per-graph) call would produce.
    """
    flat: list[GraphData] = [graph for group in groups for graph in group]
    perf.incr("gnn.group_embeds", len(groups))
    embeddings = embed_graphs_cached(model, flat)
    out: list[np.ndarray] = []
    offset = 0
    for group in groups:
        out.append(embeddings[offset:offset + len(group)])
        offset += len(group)
    return out
