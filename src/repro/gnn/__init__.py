"""Numpy GNN framework: GraphSAGE layers, models, optimizers.

This is the repository's PyTorch-Geometric substitute: it implements the
paper's Eq. 3 message passing with mean aggregation, hierarchical mean
pooling for graph embeddings, and hand-derived backward passes so metric
learning (paper §IV-A) can train end to end without autograd.
"""

from .batch import (
    GraphBatch,
    accumulation_order,
    batch_gnn_enabled,
    embed_graph_groups,
    embedding_cache,
    pack_graphs,
    release_state,
)
from .graph import GraphData, mean_adjacency
from .layers import LayerCache, SAGELayer
from .model import GraphSAGE
from .optim import SGD, Adam

__all__ = [
    "GraphData",
    "mean_adjacency",
    "SAGELayer",
    "LayerCache",
    "GraphSAGE",
    "GraphBatch",
    "accumulation_order",
    "embed_graph_groups",
    "pack_graphs",
    "release_state",
    "batch_gnn_enabled",
    "embedding_cache",
    "SGD",
    "Adam",
]
