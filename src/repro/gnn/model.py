"""GraphSAGE encoder producing graph-level embeddings.

The hierarchical usage in CircuitMentor (paper §IV-A) treats each module as
a subgraph: module embeddings come from :meth:`GraphSAGE.embed_graph`, and
the design-level embedding is the mean of its module embeddings
(z_global = 1/N * sum h_i), which also covers the flattened/single-module
degenerate case.
"""

from __future__ import annotations

import numpy as np

from .graph import GraphData, mean_adjacency
from .layers import SAGELayer

__all__ = ["GraphSAGE"]


class GraphSAGE:
    """A stack of :class:`SAGELayer` with mean global pooling.

    Args:
        in_dim: node feature dimensionality.
        hidden_dims: output width of each successive layer; the final entry
            is the embedding dimension.
        activation: nonlinearity for all but the last layer (the last layer
            is linear so embeddings are unbounded before normalization).
        seed: RNG seed for weight init.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dims: tuple[int, ...] = (32, 32),
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        if not hidden_dims:
            raise ValueError("need at least one layer")
        rng = np.random.default_rng(seed)
        dims = [in_dim, *hidden_dims]
        self.layers = [
            SAGELayer(
                dims[i],
                dims[i + 1],
                activation=activation if i < len(hidden_dims) - 1 else "linear",
                rng=rng,
            )
            for i in range(len(hidden_dims))
        ]
        self._num_nodes: int | None = None

    @property
    def embedding_dim(self) -> int:
        return self.layers[-1].w_self.shape[1]

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # -- forward/backward --------------------------------------------------------

    def forward_nodes(self, graph: GraphData) -> np.ndarray:
        """Node-level embeddings for one graph."""
        adj = mean_adjacency(graph.num_nodes, graph.edges)
        h = np.asarray(graph.features, dtype=np.float64)
        for layer in self.layers:
            h = layer.forward(h, adj)
        self._num_nodes = graph.num_nodes
        return h

    def embed_graph(self, graph: GraphData) -> np.ndarray:
        """Graph-level embedding: mean-pool the node embeddings."""
        return self.forward_nodes(graph).mean(axis=0)

    def backward_graph(self, grad_embedding: np.ndarray) -> None:
        """Backprop a gradient w.r.t. the pooled graph embedding.

        Must follow the ``embed_graph`` call for the same graph (layer
        caches hold that graph's activations).
        """
        if self._num_nodes is None:
            raise RuntimeError("backward_graph called before embed_graph")
        grad_nodes = np.tile(grad_embedding / self._num_nodes, (self._num_nodes, 1))
        for layer in reversed(self.layers):
            grad_nodes = layer.backward(grad_nodes)

    # -- convenience ----------------------------------------------------------------

    def embed_graphs(self, graphs: list[GraphData]) -> np.ndarray:
        """Stack graph embeddings, shape (len(graphs), embedding_dim)."""
        return np.vstack([self.embed_graph(g) for g in graphs])

    def state_dict(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        for param, saved in zip(self.parameters, state):
            param[:] = saved
