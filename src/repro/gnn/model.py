"""GraphSAGE encoder producing graph-level embeddings.

The hierarchical usage in CircuitMentor (paper §IV-A) treats each module as
a subgraph: module embeddings come from :meth:`GraphSAGE.embed_graph`, and
the design-level embedding is the mean of its module embeddings
(z_global = 1/N * sum h_i), which also covers the flattened/single-module
degenerate case.

Multi-graph embedding goes through the batched engine
(:mod:`repro.gnn.batch`) by default — one disjoint-union forward instead
of a Python loop — with a per-graph, model-version-keyed embedding cache
in front.  ``REPRO_BATCH_GNN=0`` restores the per-graph fallback; both
paths are bit-exact.
"""

from __future__ import annotations

import numpy as np

from .batch import batched_backward, batched_forward, embed_graphs_cached
from .graph import GraphData, mean_adjacency
from .layers import SAGELayer

__all__ = ["GraphSAGE"]


class GraphSAGE:
    """A stack of :class:`SAGELayer` with mean global pooling.

    Args:
        in_dim: node feature dimensionality.
        hidden_dims: output width of each successive layer; the final entry
            is the embedding dimension.
        activation: nonlinearity for all but the last layer (the last layer
            is linear so embeddings are unbounded before normalization).
        seed: RNG seed for weight init.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dims: tuple[int, ...] = (32, 32),
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        if not hidden_dims:
            raise ValueError("need at least one layer")
        rng = np.random.default_rng(seed)
        dims = [in_dim, *hidden_dims]
        self.layers = [
            SAGELayer(
                dims[i],
                dims[i + 1],
                activation=activation if i < len(hidden_dims) - 1 else "linear",
                rng=rng,
            )
            for i in range(len(hidden_dims))
        ]
        self._num_nodes: int | None = None
        self._version = 0

    @property
    def embedding_dim(self) -> int:
        return self.layers[-1].w_self.shape[1]

    @property
    def version(self) -> int:
        """Weight-state version; keys the embedding cache."""
        return self._version

    def bump_version(self) -> None:
        """Mark the weights as changed (invalidates cached embeddings).

        Called automatically by :meth:`load_state_dict` and by optimizers
        constructed with an ``on_step`` hook (as :class:`MetricTrainer`
        does).  Call it manually after mutating ``parameters`` in place.
        """
        self._version += 1

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # -- forward/backward --------------------------------------------------------

    def forward_nodes(self, graph: GraphData) -> np.ndarray:
        """Node-level embeddings for one graph."""
        adj = mean_adjacency(graph.num_nodes, graph.edges)
        h = np.asarray(graph.features, dtype=np.float64)
        for layer in self.layers:
            h = layer.forward(h, adj)
        self._num_nodes = graph.num_nodes
        return h

    def embed_graph(self, graph: GraphData) -> np.ndarray:
        """Graph-level embedding: mean-pool the node embeddings."""
        return self.forward_nodes(graph).mean(axis=0)

    def backward_graph(self, grad_embedding: np.ndarray) -> None:
        """Backprop a gradient w.r.t. the pooled graph embedding.

        Must follow the ``embed_graph`` call for the same graph (layer
        caches hold that graph's activations and are consumed here).
        """
        if self._num_nodes is None:
            raise RuntimeError("backward_graph called before embed_graph")
        grad_nodes = np.tile(grad_embedding / self._num_nodes, (self._num_nodes, 1))
        for layer in reversed(self.layers):
            grad_nodes = layer.backward(grad_nodes)

    # -- batched API -------------------------------------------------------------

    def forward_batch(self, batch):
        """Embed a :class:`~repro.gnn.batch.GraphBatch`.

        Returns ``(embeddings, state)``; hand ``state`` to
        :meth:`backward_batch`.  Re-entrant: does not disturb the
        single-graph layer caches.
        """
        return batched_forward(self, batch, keep_state=True)

    def backward_batch(self, state, grad_embeddings: np.ndarray, order=None) -> None:
        """Backprop per-graph embedding gradients through ``state``.

        ``order`` optionally fixes the parameter-gradient accumulation
        order (a permutation or subset of caller graph indices); see
        :func:`~repro.gnn.batch.batched_backward`.
        """
        batched_backward(self, state, grad_embeddings, order=order)

    # -- convenience ----------------------------------------------------------------

    def embed_graphs(self, graphs: list[GraphData]) -> np.ndarray:
        """Stack graph embeddings, shape (len(graphs), embedding_dim).

        Runs the batched engine (unless ``REPRO_BATCH_GNN=0``) behind the
        versioned embedding cache; results are bit-exact with a loop of
        :meth:`embed_graph` calls either way.
        """
        if type(graphs) is not list:
            graphs = list(graphs)
        return embed_graphs_cached(self, graphs)

    def state_dict(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        for param, saved in zip(self.parameters, state):
            param[:] = saved
        self.bump_version()
