"""Async micro-batched serving engine for ChatLS customization.

``ServeEngine`` decomposes :meth:`ChatLS.customize_and_evaluate` into the
explicit staged pipeline of :mod:`repro.serve.state` and runs many
sessions concurrently on one event loop.  Each stage owns a
:class:`MicroBatcher` — a coalescing queue whose worker collects every
session that arrives within the batching window (``REPRO_SERVE_BATCH_MAX``
items or ``REPRO_SERVE_BATCH_WAIT_MS`` of waiting, whichever first) and
processes them as **one** kernel call:

* ``analyze``   — per-session design analysis fans out over
  :func:`repro.parallel.parallel_map_async`; the GNN design embeddings
  for the whole batch run as a single grouped forward
  (:meth:`CircuitEncoder.embed_designs`).
* ``retrieve``  — all sessions' strategy lookups become one stacked
  ``search_batch`` kNN (per-session rerank characteristic preserved),
  and all requirement-text manual lookups another.
* ``draft``     — per-session prompt composition + LLM drafting from the
  already-retrieved grounding (no retriever state touched).
* ``revise``    — SynthExpert plans every session's thought steps, then
  every step query across the whole batch goes through one batched
  manual retrieval before the per-step revisions are applied.
* ``synthesize``— scripts fan out over the work-stealing process pool
  (or thread executor) via ``parallel_map_async``.

Stage kernels are synchronous; they run in a small per-engine thread
executor so different stages overlap in wall clock while the event loop
keeps coalescing arrivals.  Results are field-for-field identical to a
sequential ``customize_and_evaluate`` loop over the same requests — the
engine changes the *schedule*, never the computation.

After every completed stage the session's :class:`ChainState` is
checkpointed (when ``checkpoint_dir`` is set); :meth:`ServeEngine.resume`
reloads checkpoints and runs only the stages that have not completed.
"""

from __future__ import annotations

import asyncio
import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterable, Sequence

import numpy as np

from .. import obs, perf
from ..core.chatls import ChatLS, CustomizationResult, _blank_analysis
from ..core.generator import DraftRetrieval, Generator
from ..core.requirements import parse_requirement
from ..core.synthexpert import SynthExpert
from ..core.thoughts import CoTTrace
from ..mentor.analyzer import analyze_design
from ..parallel import parallel_map_async
from ..rag.synthrag import SynthRAG
from ..synth.cache import synthesize_cached
from .state import DONE, STAGES, ChainState, ServeRequest

__all__ = ["BatchPolicy", "MicroBatcher", "ServeEngine"]

#: Live engines, for the collect-time queue-depth/inflight gauges.
_LIVE_ENGINES: "weakref.WeakSet[ServeEngine]" = weakref.WeakSet()

#: Batch-size histogram buckets (sessions per coalesced kernel call).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class BatchPolicy:
    """When a stage queue flushes: size cap or wait deadline, whichever first.

    ``batch_max`` bounds the coalesced batch; ``batch_wait_ms`` is how
    long the first item in a forming batch waits for company.  ``0`` ms
    still drains items that are *already* queued (pure size-based
    coalescing with no added latency).
    """

    batch_max: int = 16
    batch_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError("REPRO_SERVE_BATCH_MAX must be >= 1")
        if self.batch_wait_ms < 0:
            raise ValueError("REPRO_SERVE_BATCH_WAIT_MS must be >= 0")

    @classmethod
    def from_env(cls) -> "BatchPolicy":
        """Policy from ``REPRO_SERVE_BATCH_MAX`` / ``REPRO_SERVE_BATCH_WAIT_MS``."""
        kwargs = {}
        raw_max = os.environ.get("REPRO_SERVE_BATCH_MAX", "").strip()
        if raw_max:
            try:
                kwargs["batch_max"] = int(raw_max)
            except ValueError:
                raise ValueError(
                    f"REPRO_SERVE_BATCH_MAX must be an integer, got {raw_max!r}"
                )
        raw_wait = os.environ.get("REPRO_SERVE_BATCH_WAIT_MS", "").strip()
        if raw_wait:
            try:
                kwargs["batch_wait_ms"] = float(raw_wait)
            except ValueError:
                raise ValueError(
                    f"REPRO_SERVE_BATCH_WAIT_MS must be a number, got {raw_wait!r}"
                )
        return cls(**kwargs)


class MicroBatcher:
    """One stage's coalescing queue + worker coroutine.

    Sessions ``submit`` their state and await the result; the worker
    forms batches under the :class:`BatchPolicy` and hands each batch to
    the stage's async ``process`` callable.  A processor exception
    propagates to every session in that batch (serial-equivalent: each
    of those sessions would have hit the same error alone).
    """

    def __init__(
        self,
        name: str,
        process: Callable[[list[ChainState]], Awaitable[list[ChainState]]],
        policy: BatchPolicy,
    ) -> None:
        self.name = name
        self.process = process
        self.policy = policy
        self.queue: asyncio.Queue = asyncio.Queue()
        self.batch_count = 0
        self.item_count = 0
        self.max_batch = 0
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        self._task = asyncio.create_task(self._worker(), name=f"serve-{self.name}")

    async def stop(self) -> None:
        """Stop the worker after it drains everything already queued."""
        if self._task is None:
            return
        await self.queue.put(None)
        await self._task
        self._task = None

    def depth(self) -> int:
        return self.queue.qsize()

    async def submit(self, state: ChainState) -> ChainState:
        future = asyncio.get_running_loop().create_future()
        await self.queue.put((state, future))
        return await future

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self.queue.get()
            if first is None:
                return
            batch = [first]
            stopping = False
            deadline = loop.time() + self.policy.batch_wait_ms / 1000.0
            while len(batch) < self.policy.batch_max:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window elapsed: still take whatever is already here.
                    try:
                        item = self.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(self.queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if item is None:
                    stopping = True
                    break
                batch.append(item)
            await self._run_batch(batch)
            if stopping:
                return

    async def _run_batch(
        self, batch: list[tuple[ChainState, asyncio.Future]]
    ) -> None:
        from ..obs import metrics as obs_metrics

        states = [state for state, _ in batch]
        started = time.perf_counter()
        try:
            results = await self.process(states)
        except BaseException as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            perf.add_time(f"serve.{self.name}", time.perf_counter() - started)
        self.batch_count += 1
        self.item_count += len(batch)
        self.max_batch = max(self.max_batch, len(batch))
        obs_metrics.histogram(
            "repro_serve_batch_size",
            "Sessions coalesced per serve-stage kernel call.",
            buckets=_BATCH_BUCKETS,
        ).observe(len(batch), stage=self.name)
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)


class ServeEngine:
    """Cross-request micro-batched execution of the ChatLS pipeline."""

    def __init__(
        self,
        chatls: ChatLS,
        policy: BatchPolicy | None = None,
        checkpoint_dir: str | None = None,
        jobs: int | None = None,
        backend: str | None = None,
    ) -> None:
        self.chatls = chatls
        self.policy = policy or BatchPolicy.from_env()
        self.checkpoint_dir = checkpoint_dir
        self.jobs = jobs
        self.backend = backend
        #: Shared, read-only retrieval stack for every session: the
        #: manual index, reranker and library graph are deterministic
        #: functions of (corpus, llm, library), so sharing them cannot
        #: change any session's result — it only deletes per-request
        #: rebuild cost.  The customize pipeline never touches the
        #: per-design circuit store, so ``circuit=None`` is safe.
        self.rag = SynthRAG.build(
            chatls.database, circuit=None, library=chatls.library, llm=chatls.llm
        )
        self.inflight = 0
        self.batchers: dict[str, MicroBatcher] = {}
        #: Test hook: called as ``fn(state, stage)`` after each stage's
        #: checkpoint is written (crash-injection point for resume tests).
        self._after_stage: Callable[[ChainState, str], None] | None = None
        self._executor: ThreadPoolExecutor | None = None
        _LIVE_ENGINES.add(self)

    # -- public API ------------------------------------------------------------

    def run(
        self,
        requests: Sequence[ServeRequest],
        arrival_delays: Sequence[float] | None = None,
    ) -> list[CustomizationResult]:
        """Serve every request; results in request order.

        ``arrival_delays`` optionally staggers session submission
        (seconds per request) to model/replay arrival patterns; omitted,
        all sessions arrive at once and coalesce maximally.
        """
        states = []
        for index, request in enumerate(requests):
            if request.session_id is None:
                request.session_id = f"s{index:04d}"
            states.append(ChainState(request=request))
        return self._drive(states, arrival_delays)

    def resume(self, checkpoints: Iterable[str]) -> list[CustomizationResult]:
        """Reload checkpointed sessions and run only their remaining stages."""
        states = [ChainState.load(path) for path in checkpoints]
        return self._drive(states, None)

    @property
    def stage_sessions(self) -> dict[str, int]:
        """Sessions processed per stage in the most recent run/resume."""
        return {name: batcher.item_count for name, batcher in self.batchers.items()}

    # -- orchestration ---------------------------------------------------------

    def _drive(
        self,
        states: list[ChainState],
        arrival_delays: Sequence[float] | None,
    ) -> list[CustomizationResult]:
        if not states:
            return []
        if arrival_delays is not None and len(arrival_delays) != len(states):
            raise ValueError("arrival_delays length must match request count")
        started = time.perf_counter()
        results = asyncio.run(self._serve(states, arrival_delays))
        elapsed = time.perf_counter() - started
        failures = [r for r in results if isinstance(r, BaseException)]
        if not failures:
            obs.record_run(
                "serve",
                extra={
                    "sessions": len(states),
                    "elapsed_s": round(elapsed, 4),
                    "throughput_sessions_per_s": round(len(states) / elapsed, 4)
                    if elapsed > 0
                    else None,
                    "policy": {
                        "batch_max": self.policy.batch_max,
                        "batch_wait_ms": self.policy.batch_wait_ms,
                    },
                    "stages": {
                        name: {
                            "batches": b.batch_count,
                            "sessions": b.item_count,
                            "max_batch": b.max_batch,
                        }
                        for name, b in self.batchers.items()
                    },
                },
            )
            return results
        raise failures[0]

    async def _serve(self, states, arrival_delays):
        self.batchers = {
            "analyze": MicroBatcher("analyze", self._analyze_batch, self.policy),
            "retrieve": MicroBatcher("retrieve", self._retrieve_batch, self.policy),
            "draft": MicroBatcher("draft", self._draft_batch, self.policy),
            "revise": MicroBatcher("revise", self._revise_batch, self.policy),
            "synthesize": MicroBatcher(
                "synthesize", self._synthesize_batch, self.policy
            ),
        }
        # One executor thread per stage: blocking kernels from different
        # stages overlap; batches within one stage serialize naturally.
        self._executor = ThreadPoolExecutor(
            max_workers=len(STAGES), thread_name_prefix="serve-stage"
        )
        for batcher in self.batchers.values():
            batcher.start()
        try:
            tasks = [
                asyncio.create_task(
                    self._run_session(
                        state,
                        arrival_delays[index] if arrival_delays else 0.0,
                    ),
                    name=f"serve-session-{state.request.session_id}",
                )
                for index, state in enumerate(states)
            ]
            # return_exceptions so every session settles before teardown
            # (a batch-mate's failure must not strand queued sessions).
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for batcher in self.batchers.values():
                await batcher.stop()
            self._executor.shutdown(wait=True)
            self._executor = None
        return list(results)

    async def _run_session(self, state: ChainState, delay: float):
        if delay:
            await asyncio.sleep(delay)
        self.inflight += 1
        try:
            with obs.span(
                "serve.session",
                session=state.request.session_id,
                design=state.request.design_name,
                resume_from=state.stage,
            ) as sp:
                while state.stage != DONE:
                    stage = state.stage
                    state = await self.batchers[stage].submit(state)
                    self._checkpoint(state)
                    if self._after_stage is not None:
                        self._after_stage(state, stage)
                sp.set_attribute("stages_run", len(state.completed))
            perf.incr("serve.sessions")
            return state.result()
        finally:
            self.inflight -= 1

    def _checkpoint(self, state: ChainState) -> None:
        if self.checkpoint_dir is None:
            return
        state.save(
            os.path.join(self.checkpoint_dir, f"{state.request.session_id}.ckpt")
        )

    def _run_blocking(self, fn):
        return asyncio.get_running_loop().run_in_executor(self._executor, fn)

    # -- stage kernels ---------------------------------------------------------

    async def _analyze_batch(self, states: list[ChainState]) -> list[ChainState]:
        chatls = self.chatls
        for state in states:
            if state.requirement is None:
                raw = state.request.requirement
                state.requirement = (
                    parse_requirement(raw) if isinstance(raw, str) else raw
                )
        analyses = await parallel_map_async(
            _analyze_task,
            [
                (
                    state.request.verilog,
                    state.request.design_name,
                    state.request.top,
                    state.request.clock_period,
                    chatls.library,
                )
                for state in states
            ],
            jobs=self.jobs,
            backend=self.backend,
            label="serve-analyze",
            cost=lambda task: len(task[0]),
            executor=self._executor,
        )
        # Cross-session coalescing point: every pending session's module
        # graphs go through ONE grouped GNN forward.
        embeddings = await self._run_blocking(
            lambda: chatls.database.encoder.embed_designs(
                [analysis.circuit for analysis in analyses]
            )
        )
        for state, analysis, embedding in zip(states, analyses, embeddings):
            state.analysis = analysis
            state.design_embedding = embedding
            state.advance()
        return states

    async def _retrieve_batch(self, states: list[ChainState]) -> list[ChainState]:
        chatls = self.chatls

        def kernel():
            stacked = np.stack([state.design_embedding for state in states])
            # Sequential parity: _prepare only points the Eq. 5 rerank at
            # the requirement's characteristic when use_rag is on.
            characteristics = [
                state.requirement.rerank_characteristic if chatls.use_rag else "cps"
                for state in states
            ]
            strategy_rows = self.rag.retrieve_strategies_batch(
                stacked, k=2, characteristics=characteristics
            )
            manual_rows = self.rag.manual_batch(
                [state.requirement.text for state in states], k=2
            )
            return strategy_rows, manual_rows

        strategy_rows, manual_rows = await self._run_blocking(kernel)
        for state, strategies, manual in zip(states, strategy_rows, manual_rows):
            state.retrieval = DraftRetrieval(
                strategy_hits=strategies, manual_hits=manual
            )
            state.advance()
        return states

    async def _draft_batch(self, states: list[ChainState]) -> list[ChainState]:
        chatls = self.chatls

        def kernel():
            generator = Generator(chatls.llm, self.rag)
            drafts = []
            for state in states:
                analysis = (
                    state.analysis
                    if chatls.use_rag
                    else _blank_analysis(state.analysis)
                )
                drafts.append(
                    generator.draft_from_retrieval(
                        state.requirement,
                        state.request.baseline_script,
                        state.request.tool_report,
                        analysis,
                        state.retrieval,
                        seed=state.request.seed,
                    )
                )
            return drafts

        drafts = await self._run_blocking(kernel)
        for state, draft in zip(states, drafts):
            state.draft = draft
            state.advance()
        return states

    async def _revise_batch(self, states: list[ChainState]) -> list[ChainState]:
        chatls = self.chatls

        def kernel():
            expert = SynthExpert(chatls.llm, self.rag)
            plans: list = []
            query_counts: list[int] = []
            all_queries: list[str] = []
            for state in states:
                if not chatls.use_synthexpert:
                    plans.append(None)
                    query_counts.append(0)
                    continue
                plan = expert.plan(state.draft.script)
                queries = plan.queries()
                plans.append(plan)
                query_counts.append(len(queries))
                all_queries.extend(queries)
            # Cross-session coalescing point: every step query from every
            # session in the batch goes through ONE stacked manual search.
            if len(all_queries) > 1:
                hit_rows = self.rag.manual_batch(all_queries, k=2)
            elif all_queries:
                hit_rows = [self.rag.manual(all_queries[0], k=2)]
            else:
                hit_rows = []
            out = []
            offset = 0
            for state, plan, count in zip(states, plans, query_counts):
                if plan is None:
                    out.append((state.draft.script, CoTTrace()))
                else:
                    refined = expert.apply(
                        plan, hit_rows[offset:offset + count], state.analysis
                    )
                    out.append((refined.script, refined.trace))
                offset += count
            return out

        revised = await self._run_blocking(kernel)
        for state, (script, trace) in zip(states, revised):
            state.script = script
            state.trace = trace
            state.advance()
        return states

    async def _synthesize_batch(self, states: list[ChainState]) -> list[ChainState]:
        runs = await parallel_map_async(
            _synthesize_task,
            [
                (
                    self.chatls.library,
                    state.request.design_name,
                    state.request.verilog,
                    state.script,
                    state.request.top,
                )
                for state in states
            ],
            jobs=self.jobs,
            backend=self.backend,
            label="serve-synthesize",
            cost=lambda task: len(task[2]),
            executor=self._executor,
        )
        for state, run in zip(states, runs):
            state.executable = run.success
            state.error = run.error
            state.qor = run.qor
            state.advance()
        return states


# -- module-level stage tasks (picklable for the process backend) --------------


def _analyze_task(task):
    """One session's design analysis (module-level so it crosses processes)."""
    verilog, design_name, top, clock_period, library = task
    return analyze_design(
        verilog, design_name, top=top, clock_period=clock_period, library=library
    )


def _synthesize_task(task):
    """One session's synthesis run (module-level so it crosses processes)."""
    library, design_name, verilog, script, top = task
    return synthesize_cached(library, design_name, verilog, script, top=top)


# -- live gauges ---------------------------------------------------------------


def _serve_metric_families():
    """Queue-depth and inflight-session gauges over every live engine."""
    from ..obs import metrics as obs_metrics

    depth = obs_metrics.MetricFamily(
        "repro_serve_queue_depth", "gauge",
        "Sessions waiting in each serve stage's micro-batch queue.",
    )
    inflight = obs_metrics.MetricFamily(
        "repro_serve_inflight_sessions", "gauge",
        "Sessions currently inside the serving pipeline.",
    )
    per_stage: dict[str, int] = {}
    total = 0
    for engine in list(_LIVE_ENGINES):
        total += engine.inflight
        for name, batcher in engine.batchers.items():
            per_stage[name] = per_stage.get(name, 0) + batcher.depth()
    for name in STAGES:
        if name in per_stage:
            depth.add(per_stage[name], stage=name)
    inflight.add(total)
    return [depth, inflight]


def _register_serve_metrics() -> None:
    from ..obs import metrics as obs_metrics

    obs_metrics.register_callback("serve", _serve_metric_families)


_register_serve_metrics()
