"""Typed, checkpointable per-session state for the serving engine.

``ChainState`` is the explicit form of what :meth:`ChatLS.customize`
keeps implicit on the call stack: the staged pipeline

    analyze -> retrieve -> draft -> revise -> synthesize

with every intermediate artifact (requirement, analysis, design
embedding, retrieval bundle, draft, refined script/trace, QoR) as a
picklable field.  The engine checkpoints the state after each completed
stage (atomic ``tmp + os.replace`` write), so a killed server resumes a
session by running only the stages that have not completed yet.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any

from ..core.chatls import CustomizationResult
from ..core.generator import DraftRetrieval, DraftResult
from ..core.requirements import Requirement
from ..core.thoughts import CoTTrace
from ..mentor.analyzer import DesignAnalysis

__all__ = ["STAGES", "DONE", "ServeRequest", "ChainState"]

#: The staged decomposition of ``ChatLS.customize_and_evaluate``.
STAGES: tuple[str, ...] = ("analyze", "retrieve", "draft", "revise", "synthesize")

#: Terminal stage marker: every stage of the chain has completed.
DONE = "done"


@dataclass
class ServeRequest:
    """One customization request submitted to the serving engine.

    Mirrors the :meth:`ChatLS.customize_and_evaluate` signature;
    ``evaluate=False`` stops after revision (the :meth:`ChatLS.customize`
    contract, no synthesis run).
    """

    verilog: str
    design_name: str
    baseline_script: str
    requirement: str | Requirement
    tool_report: str = ""
    top: str | None = None
    clock_period: float = 1.0
    seed: int = 0
    evaluate: bool = True
    session_id: str | None = None


@dataclass
class ChainState:
    """The session's progress through the staged pipeline.

    ``stage`` names the *next* stage to run (or :data:`DONE`);
    ``completed`` records the stages already run, in order.  All fields
    are picklable, which is the whole point: a saved state resumes with
    zero recomputation of completed stages.
    """

    request: ServeRequest
    stage: str = STAGES[0]
    completed: tuple[str, ...] = ()

    # Stage artifacts, filled in as the chain advances.
    requirement: Requirement | None = None
    analysis: DesignAnalysis | None = None
    design_embedding: Any = None
    retrieval: DraftRetrieval | None = None
    draft: DraftResult | None = None
    script: str | None = None
    trace: CoTTrace | None = None
    qor: Any = None
    executable: bool = True
    error: str | None = None

    def stages(self) -> tuple[str, ...]:
        """The stages this session runs (``evaluate=False`` skips synthesis)."""
        return STAGES if self.request.evaluate else STAGES[:-1]

    def remaining(self) -> tuple[str, ...]:
        """Stages still to run, starting with :attr:`stage`."""
        if self.stage == DONE:
            return ()
        stages = self.stages()
        return stages[stages.index(self.stage):]

    def advance(self) -> None:
        """Mark the current stage completed and move to the next."""
        if self.stage == DONE:
            raise ValueError("chain already completed")
        stages = self.stages()
        index = stages.index(self.stage)
        self.completed = self.completed + (self.stage,)
        self.stage = stages[index + 1] if index + 1 < len(stages) else DONE

    def result(self) -> CustomizationResult:
        """The finished session as a :class:`CustomizationResult`.

        Field-for-field what the sequential ``customize`` /
        ``customize_and_evaluate`` call would have returned.
        """
        if self.stage != DONE:
            raise ValueError(f"chain not finished (next stage: {self.stage})")
        return CustomizationResult(
            script=self.script,
            analysis=self.analysis,
            trace=self.trace,
            prompt=self.draft.prompt if self.draft is not None else "",
            qor=self.qor,
            executable=self.executable,
            error=self.error,
            seed=self.request.seed,
        )

    # -- checkpointing ---------------------------------------------------------

    def save(self, path: str) -> str:
        """Atomically persist the state: write a sibling tmp, then rename.

        ``os.replace`` is atomic on POSIX, so a reader (or a resumed
        server) only ever sees the previous complete checkpoint or the
        new complete checkpoint — never a torn write.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(self, fh)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    @classmethod
    def load(cls, path: str) -> "ChainState":
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        if not isinstance(state, cls):
            raise ValueError(f"{path}: not a ChainState checkpoint")
        return state
