"""ChatLS-as-a-service: async micro-batched serving of the customize pipeline.

The sequential :meth:`ChatLS.customize_and_evaluate` call becomes an
explicit staged chain (``analyze -> retrieve -> draft -> revise ->
synthesize``) over a typed, checkpointable :class:`ChainState`; the
:class:`ServeEngine` runs many sessions concurrently and coalesces each
stage's pending work across sessions into batched kernel calls (grouped
GNN embeds, stacked kNN searches, pooled synthesis fan-out) under a
:class:`BatchPolicy` (``REPRO_SERVE_BATCH_MAX`` /
``REPRO_SERVE_BATCH_WAIT_MS``).  Per-session results are identical to
the sequential loop; only the schedule changes.
"""

from .engine import BatchPolicy, MicroBatcher, ServeEngine
from .state import DONE, STAGES, ChainState, ServeRequest

__all__ = [
    "BatchPolicy",
    "ChainState",
    "DONE",
    "MicroBatcher",
    "STAGES",
    "ServeEngine",
    "ServeRequest",
]
