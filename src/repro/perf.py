"""Lightweight performance counters and timers.

The perf layers added for scale (incremental STA, the synthesis result
cache, parallel evaluation) all report what they actually did through this
registry so speedups are *measured*, not asserted:

* counters — monotonically increasing event counts
  (``sta.full``, ``sta.incremental``, ``synthcache.hit`` ...);
* timers — accumulated wall-clock per labelled region with call counts,
  plus a bounded reservoir of per-call durations so ``snapshot()`` can
  report p50/p95/max without unbounded memory;
* stats providers — callables (the caches register theirs) whose output
  ``snapshot()`` surfaces under a ``caches`` key.

The registry is process-global and thread-safe (the parallel evaluation
executor updates it from worker threads).  Overhead is a dict update per
event, cheap enough to leave on unconditionally.

Usage::

    from repro import perf

    perf.incr("synthcache.hit")
    with perf.timer("sta.analyze"):
        engine.analyze()
    print(perf.snapshot())
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable

from .rand import rng as _seeded_rng

__all__ = [
    "PerfRegistry",
    "registry",
    "incr",
    "timer",
    "counter",
    "elapsed",
    "snapshot",
    "reset",
    "add_time",
    "counters",
    "register_stats_provider",
    "export_state",
    "merge_state",
]

#: Per-timer reservoir size: large enough for stable p50/p95, small
#: enough that a million calls cost a fixed few KiB per label.
RESERVOIR_CAPACITY = 256


class _Reservoir:
    """Bounded uniform sample of per-call durations (Vitter's algorithm R).

    The RNG is seeded per reservoir, so sampling is deterministic for a
    given call sequence; the exact maximum is tracked separately because
    tail spikes are precisely what sampling may drop.
    """

    __slots__ = ("samples", "seen", "max", "_rng")

    def __init__(self) -> None:
        self.samples: list[float] = []
        self.seen = 0
        self.max = 0.0
        self._rng = _seeded_rng(0x5EED)

    def add(self, value: float) -> None:
        self.seen += 1
        if value > self.max:
            self.max = value
        if len(self.samples) < RESERVOIR_CAPACITY:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.seen)
            if slot < RESERVOIR_CAPACITY:
                self.samples[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current sample (q in [0, 1])."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def merge_from(self, samples: list[float], seen: int, max_value: float) -> None:
        """Fold another reservoir's bounded sample into this one, weighted.

        Each retained sample stands for ``seen / len(samples)`` original
        observations (a reservoir is a uniform sample of everything its
        owner saw), so merging must weight by source call counts: a
        worker that timed 10,000 calls deserves 100x the representation
        of one that timed 100, even though both exported at most
        :data:`RESERVOIR_CAPACITY` samples.  An unweighted merge —
        feeding donor samples through :meth:`add` one by one — lets the
        smaller source crowd the reservoir and biases p50/p95 toward its
        distribution.

        Selection is weighted sampling without replacement
        (Efraimidis–Spirakis A-Res: key ``u^(1/w)``, keep the largest
        keys), driven by this reservoir's seeded RNG so merges stay
        deterministic for a given call sequence.
        """
        if max_value > self.max:
            self.max = max_value
        if not samples:
            self.seen += max(0, seen)
            return
        seen = max(seen, len(samples))
        pool: list[tuple[float, float]] = []
        if self.samples:
            own_weight = self.seen / len(self.samples)
            pool.extend((value, own_weight) for value in self.samples)
        donor_weight = seen / len(samples)
        pool.extend((value, donor_weight) for value in samples)
        if len(pool) <= RESERVOIR_CAPACITY:
            self.samples = [value for value, _ in pool]
        else:
            keyed = sorted(
                (
                    (self._rng.random() ** (1.0 / weight), value)
                    for value, weight in pool
                ),
                key=lambda kv: kv[0],
                reverse=True,
            )
            self.samples = [value for _, value in keyed[:RESERVOIR_CAPACITY]]
        self.seen += seen


class PerfRegistry:
    """Thread-safe registry of named counters and accumulated timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._time_total: dict[str, float] = {}
        self._time_calls: dict[str, int] = {}
        self._time_samples: dict[str, _Reservoir] = {}
        self._providers: dict[str, Callable[[], dict]] = {}

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Copy of every counter (the tracer diffs this per span)."""
        with self._lock:
            return dict(self._counters)

    # -- timers -------------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            self._time_total[name] = self._time_total.get(name, 0.0) + seconds
            self._time_calls[name] = self._time_calls.get(name, 0) + 1
            reservoir = self._time_samples.get(name)
            if reservoir is None:
                reservoir = self._time_samples[name] = _Reservoir()
            reservoir.add(seconds)

    def elapsed(self, name: str) -> float:
        with self._lock:
            return self._time_total.get(name, 0.0)

    # -- stats providers ----------------------------------------------------

    def register_stats_provider(self, name: str, provider: Callable[[], dict]) -> None:
        """Expose an external stats source (a cache) in ``snapshot()``.

        Registering the same name again replaces the provider (modules
        that reload re-register harmlessly).
        """
        with self._lock:
            self._providers[name] = provider

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Structured dump: ``{"counters": ..., "timers": ...[, "caches": ...]}``.

        Timer entries keep the original ``total_s``/``calls`` keys and add
        reservoir-estimated ``p50_s``/``p95_s`` plus the exact ``max_s``.
        """
        with self._lock:
            out = {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "total_s": round(total, 6),
                        "calls": self._time_calls.get(name, 0),
                        "p50_s": round(self._time_samples[name].percentile(0.50), 6),
                        "p95_s": round(self._time_samples[name].percentile(0.95), 6),
                        "max_s": round(self._time_samples[name].max, 6),
                    }
                    for name, total in self._time_total.items()
                },
            }
            providers = dict(self._providers)
        # Providers run outside the registry lock: they take their own
        # locks, and their code paths may call back into incr()/add_time().
        if providers:
            out["caches"] = {name: fn() for name, fn in providers.items()}
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._time_total.clear()
            self._time_calls.clear()
            self._time_samples.clear()

    # -- cross-process aggregation -------------------------------------------

    def export_state(self) -> dict:
        """Mergeable dump of counters and timers (see :meth:`merge_state`).

        Unlike :meth:`snapshot` this keeps the raw reservoir samples so a
        receiving registry can fold them into its own percentile estimates.
        Worker processes of the parallel process backend export their
        registry through this at pool shutdown.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "total_s": total,
                        "calls": self._time_calls.get(name, 0),
                        "samples": list(self._time_samples[name].samples),
                        "seen": self._time_samples[name].seen,
                        "max_s": self._time_samples[name].max,
                    }
                    for name, total in self._time_total.items()
                },
            }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`export_state` into this one.

        Counter values, timer totals and call counts add exactly; the
        donor's (bounded) duration samples merge into this registry's
        reservoirs **weighted by source call counts**
        (:meth:`_Reservoir.merge_from`), so percentiles after a
        multi-worker merge estimate the pooled distribution instead of
        over-representing whichever source exported fewer calls; ``max_s``
        stays exact.
        """
        for name, value in state.get("counters", {}).items():
            self.incr(name, value)
        for name, entry in state.get("timers", {}).items():
            with self._lock:
                self._time_total[name] = (
                    self._time_total.get(name, 0.0) + entry["total_s"]
                )
                self._time_calls[name] = (
                    self._time_calls.get(name, 0) + entry["calls"]
                )
                reservoir = self._time_samples.get(name)
                if reservoir is None:
                    reservoir = self._time_samples[name] = _Reservoir()
                reservoir.merge_from(
                    list(entry.get("samples", ())),
                    # Older exports lack "seen"; calls equals seen for a
                    # registry that only ever saw add_time().
                    entry.get("seen", entry.get("calls", 0)),
                    entry.get("max_s", 0.0),
                )


#: The process-global registry used by the module-level helpers.
registry = PerfRegistry()

incr = registry.incr
timer = registry.timer
counter = registry.counter
counters = registry.counters
elapsed = registry.elapsed
snapshot = registry.snapshot
reset = registry.reset
add_time = registry.add_time
register_stats_provider = registry.register_stats_provider
export_state = registry.export_state
merge_state = registry.merge_state
