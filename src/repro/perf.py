"""Lightweight performance counters and timers.

The perf layers added for scale (incremental STA, the synthesis result
cache, parallel evaluation) all report what they actually did through this
registry so speedups are *measured*, not asserted:

* counters — monotonically increasing event counts
  (``sta.full``, ``sta.incremental``, ``synthcache.hit`` ...);
* timers — accumulated wall-clock per labelled region with call counts.

The registry is process-global and thread-safe (the parallel evaluation
executor updates it from worker threads).  Overhead is a dict update per
event, cheap enough to leave on unconditionally.

Usage::

    from repro import perf

    perf.incr("synthcache.hit")
    with perf.timer("sta.analyze"):
        engine.analyze()
    print(perf.snapshot())
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "PerfRegistry",
    "registry",
    "incr",
    "timer",
    "counter",
    "elapsed",
    "snapshot",
    "reset",
]


class PerfRegistry:
    """Thread-safe registry of named counters and accumulated timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._time_total: dict[str, float] = {}
        self._time_calls: dict[str, int] = {}

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers -------------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            self._time_total[name] = self._time_total.get(name, 0.0) + seconds
            self._time_calls[name] = self._time_calls.get(name, 0) + 1

    def elapsed(self, name: str) -> float:
        with self._lock:
            return self._time_total.get(name, 0.0)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Structured dump: ``{"counters": ..., "timers": ...}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "total_s": round(total, 6),
                        "calls": self._time_calls.get(name, 0),
                    }
                    for name, total in self._time_total.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._time_total.clear()
            self._time_calls.clear()


#: The process-global registry used by the module-level helpers.
registry = PerfRegistry()

incr = registry.incr
timer = registry.timer
counter = registry.counter
elapsed = registry.elapsed
snapshot = registry.snapshot
reset = registry.reset
