"""ChatLS reproduction: multimodal RAG + CoT for logic synthesis scripts.

Reproduces "ChatLS: Multimodal Retrieval-Augmented Generation and
Chain-of-Thought for Logic Synthesis Script Customization" (DAC 2025) as a
self-contained Python library, including every substrate the paper
depends on: a Verilog front end, a gate-level synthesis engine with STA
(the Design Compiler substitute), a property-graph database with a Cypher
subset (the Neo4j substitute), vector indexes (FAISS substitute), a numpy
GraphSAGE framework (PyTorch-Geometric substitute) and deterministic
simulated LLMs (GPT-4o / Claude substitutes).

Top-level entry points::

    from repro import ChatLS, build_default_database, DCShell
"""

from .core import BaselineRunner, ChatLS, CustomizationResult, parse_requirement
from .designs import build_default_database, get_benchmark
from .mentor import CircuitEncoder, analyze_design, build_circuit_graph
from .rag import SynthRAG
from .synth import DCShell, nangate45

__version__ = "1.0.0"

__all__ = [
    "BaselineRunner",
    "ChatLS",
    "CustomizationResult",
    "parse_requirement",
    "build_default_database",
    "get_benchmark",
    "CircuitEncoder",
    "analyze_design",
    "build_circuit_graph",
    "SynthRAG",
    "DCShell",
    "nangate45",
    "__version__",
]
