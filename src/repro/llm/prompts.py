"""Prompt construction and parsing for synthesis-script customization.

Prompts are plain text with ``## SECTION`` headers; simulated models parse
the sections back out.  This keeps the architecture faithful to the paper
(everything the model knows arrives through the prompt) while staying
deterministic and offline.

Sections:

* ``USER REQUIREMENT`` — the natural-language goal.
* ``BASELINE SCRIPT`` — the script being customized (Table III setup).
* ``TOOL REPORT`` — the synthesis tool's QoR/timing report text.
* ``DESIGN RTL`` — raw Verilog (truncated to the model's window; baselines
  only get this).
* ``CIRCUIT ANALYSIS`` — CircuitMentor's summary (ChatLS only).
* ``RETRIEVED STRATEGIES`` — SynthRAG strategy hits (ChatLS only).
* ``MANUAL EXCERPTS`` — retrieved command documentation (ChatLS only).
"""

from __future__ import annotations

import re

__all__ = [
    "build_prompt",
    "parse_sections",
    "extract_script",
    "SECTION_ORDER",
]

SECTION_ORDER = (
    "USER REQUIREMENT",
    "BASELINE SCRIPT",
    "TOOL REPORT",
    "CIRCUIT ANALYSIS",
    "RETRIEVED STRATEGIES",
    "MANUAL EXCERPTS",
    "DESIGN RTL",
)


def build_prompt(sections: dict[str, str]) -> str:
    """Assemble a prompt from named sections (known sections first)."""
    parts = [
        "You are a logic synthesis expert. Customize the synthesis script "
        "to satisfy the user requirement. Reply with the full script in a "
        "```tcl fenced block. Do not change the clock period."
    ]
    ordered = [s for s in SECTION_ORDER if s in sections]
    ordered += [s for s in sections if s not in SECTION_ORDER]
    for name in ordered:
        parts.append(f"## {name}\n{sections[name].rstrip()}")
    return "\n\n".join(parts)


_SECTION_RE = re.compile(r"^## ([A-Z ]+)$", re.MULTILINE)


def parse_sections(prompt: str) -> dict[str, str]:
    """Recover the named sections from a prompt built by :func:`build_prompt`."""
    sections: dict[str, str] = {}
    matches = list(_SECTION_RE.finditer(prompt))
    for i, match in enumerate(matches):
        start = match.end()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(prompt)
        sections[match.group(1).strip()] = prompt[start:end].strip()
    return sections


_FENCE_RE = re.compile(r"```(?:tcl)?\s*\n(.*?)```", re.DOTALL)


def extract_script(completion_text: str) -> str | None:
    """Pull the Tcl script out of a model completion (fenced block)."""
    match = _FENCE_RE.search(completion_text)
    if match:
        return match.group(1).strip()
    # Fall back: treat lines that look like commands as the script.
    lines = [
        line
        for line in completion_text.splitlines()
        if line.strip() and not line.lstrip().startswith(("#", "//"))
        and re.match(r"^[a-z_]+(\s|$)", line.strip())
    ]
    return "\n".join(lines) if lines else None
