"""Simulated LLM layer: prompt schema, deterministic models, baselines.

Substitutes GPT-4o / Claude 3.5 (paper §V) with seeded policies behind the
same prompt-in/text-out interface, reproducing the information asymmetry
between raw prompting and the grounded ChatLS pipeline.
"""

from .base import Completion, LLMClient
from .baselines import MODEL_BUILDERS, chatls_core, claude35, gpt4o
from .prompts import build_prompt, extract_script, parse_sections
from .simulated import (
    HALLUCINATION_GALLERY,
    VALID_COMMANDS,
    ModelProfile,
    SimulatedLLM,
)

__all__ = [
    "Completion",
    "LLMClient",
    "MODEL_BUILDERS",
    "chatls_core",
    "claude35",
    "gpt4o",
    "build_prompt",
    "extract_script",
    "parse_sections",
    "HALLUCINATION_GALLERY",
    "VALID_COMMANDS",
    "ModelProfile",
    "SimulatedLLM",
]
