"""Deterministic simulated LLMs.

The reproduction substitutes GPT-4o / Claude-3.5 with seeded, deterministic
policies that honour the same interface (prompt text in, completion text
out) and — critically — the same *information asymmetry* the paper
evaluates: a model can only act on what its prompt contains, truncated to
its effective context window, and it hallucinates invalid commands at a
profile-specific rate (paper §IV-C: hallucinated commands render scripts
non-executable).

Capability model:

* With ``RETRIEVED STRATEGIES`` / ``CIRCUIT ANALYSIS`` sections present
  (the ChatLS pipeline), the model grounds its script on them directly.
* Without them (raw baselines), it falls back to keyword heuristics over
  the (window-truncated) RTL plus the tool report — so pathologies that
  are invisible in source text (fanout, register imbalance) are missed.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

import numpy as np

from .base import Completion
from .prompts import parse_sections

__all__ = ["ModelProfile", "SimulatedLLM", "VALID_COMMANDS"]


#: Commands (and option sets) that actually exist in the dc_shell substrate.
VALID_COMMANDS: dict[str, tuple[str, ...]] = {
    "compile": ("-map_effort medium", "-map_effort high"),
    "compile_ultra": ("", "-retime", "-no_autoungroup"),
    "optimize_registers": ("",),
    "balance_buffer": ("",),
    "set_max_fanout": ("16", "24", "12"),
    "set_max_area": ("0",),
    "ungroup": ("-all -flatten",),
    "set_flatten": ("true",),
    "report_qor": ("",),
    "report_timing": ("",),
}

#: Plausible-but-nonexistent commands / options used by the hallucination
#: model.  These mirror real LLM failure modes on EDA tools: invented
#: commands, options from other tools, misremembered flags.
HALLUCINATION_GALLERY: tuple[str, ...] = (
    "set_optimize_timing -aggressive",
    "compile_ultra -auto_retime",
    "optimize_fanout -max 16",
    "set_critical_range 0.5",
    "retime_design -effort high",
    "set_timing_derate -late 1.05",
    "compile -timing_effort ultra",
    "insert_clock_tree -balanced",
    "set_cost_priority -delay",
    "optimize_netlist -area",
)


@dataclass
class ModelProfile:
    """Capability profile of one simulated model."""

    name: str
    context_window: int = 4000  # chars of DESIGN RTL actually attended to
    hallucination_rate: float = 0.25
    prefers_area: bool = False
    extra_command_rate: float = 0.35
    knows_retiming_heuristic: bool = False  # dares retime w/o analysis
    knows_fanout_heuristic: bool = False


def _stable_seed(*parts) -> int:
    digest = hashlib.blake2b("|".join(map(str, parts)).encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "little")


@dataclass
class _Cues:
    """What the model managed to infer from its prompt."""

    wns: float = 0.0
    tns: float = 0.0
    violated: bool = False
    mul_heavy: bool = False
    xor_heavy: bool = False
    case_heavy: bool = False
    many_modules: bool = False
    pathologies: list[str] = field(default_factory=list)
    strategy_commands: list[str] = field(default_factory=list)
    manual_commands: list[str] = field(default_factory=list)
    requirement: str = ""


class SimulatedLLM:
    """A deterministic policy model honouring the LLM interface."""

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self.name = profile.name

    # -- public interface ------------------------------------------------------

    def complete(self, prompt: str, seed: int = 0) -> Completion:
        sections = parse_sections(prompt)
        task = sections.get("TASK", "DRAFT_SCRIPT").strip().upper()
        rng = np.random.default_rng(_stable_seed(self.name, seed, task))
        if task == "FORMULATE QUERY" or task == "FORMULATE_QUERY":
            text = self._formulate_query(sections)
        elif task in ("GENERATE CYPHER", "GENERATE_CYPHER"):
            text = self._generate_cypher(sections)
        elif task in ("REVISE STEP", "REVISE_STEP"):
            text = self._revise_step(sections)
        elif task in ("RERANK", "RERANK DOCUMENTS"):
            text = self._rerank(sections)
        else:
            text = self._draft_script(sections, rng)
        return Completion(text=text, model=self.name, seed=seed)

    # -- cue extraction -----------------------------------------------------------

    def _gather_cues(self, sections: dict[str, str]) -> _Cues:
        cues = _Cues()
        cues.requirement = sections.get("USER REQUIREMENT", "")
        report = sections.get("TOOL REPORT", "")
        wns = re.search(r"Worst Negative Slack:\s*(-?\d+\.?\d*)", report)
        tns = re.search(r"Total Negative Slack:\s*(-?\d+\.?\d*)", report)
        if wns:
            cues.wns = float(wns.group(1))
        if tns:
            cues.tns = float(tns.group(1))
        cues.violated = cues.wns < 0 or "VIOLATED" in report
        rtl = sections.get("DESIGN RTL", "")[: self.profile.context_window]
        if rtl:
            cues.mul_heavy = rtl.count("*") >= 3
            cues.xor_heavy = rtl.count("^") >= 20
            cues.case_heavy = rtl.count("case") >= 3
            cues.many_modules = rtl.count("endmodule") >= 2
        analysis = sections.get("CIRCUIT ANALYSIS", "")
        match = re.search(r"detected pathologies:\s*(.+)", analysis)
        if match and match.group(1).strip() != "none":
            cues.pathologies = [p.strip() for p in match.group(1).split(",")]
        strategies = sections.get("RETRIEVED STRATEGIES", "")
        for line in strategies.splitlines():
            cmd = line.strip()
            if cmd.startswith("- command:"):
                cues.strategy_commands.append(cmd.split(":", 1)[1].strip())
        manual = sections.get("MANUAL EXCERPTS", "")
        for name in VALID_COMMANDS:
            if name in manual:
                cues.manual_commands.append(name)
        return cues

    # -- script drafting -----------------------------------------------------------

    def _draft_script(self, sections: dict[str, str], rng) -> str:
        cues = self._gather_cues(sections)
        baseline = sections.get("BASELINE SCRIPT", "")
        commands = self._choose_commands(cues, rng)
        commands = self._apply_hallucinations(commands, rng)
        script = self._rewrite_script(baseline, commands)
        rationale = self._rationale(cues, commands)
        return f"{rationale}\n\n```tcl\n{script}\n```\n"

    def _choose_commands(self, cues: _Cues, rng) -> list[str]:
        # Grounded path: retrieved strategies dominate (ChatLS pipeline).
        if cues.strategy_commands:
            commands = list(dict.fromkeys(cues.strategy_commands))
            # One compile-class command per script: the first (highest
            # priority) wins; set_* constraints must precede it.
            compiles = [c for c in commands if c.split()[0].startswith("compile")]
            keep_compile = compiles[0] if compiles else "compile"
            constraints = [c for c in commands if c.startswith(("set_", "ungroup"))]
            post = [
                c
                for c in commands
                if c in ("optimize_registers", "balance_buffer")
            ]
            return constraints + [keep_compile] + post
        # Ungrounded path: keyword heuristics over truncated RTL + report.
        commands: list[str] = []
        want_area = self.profile.prefers_area and "area" not in cues.requirement
        if cues.violated:
            if cues.mul_heavy and rng.random() < 0.8:
                commands.append("compile -map_effort high")
            else:
                commands.append("compile_ultra")
            if cues.many_modules and rng.random() < self.profile.extra_command_rate:
                commands.insert(0, "ungroup -all -flatten")
            if (
                self.profile.knows_fanout_heuristic
                and rng.random() < 0.25
            ):
                commands.insert(0, "set_max_fanout 16")
            if (
                self.profile.knows_retiming_heuristic
                and rng.random() < 0.2
            ):
                commands.append("optimize_registers")
        else:
            commands.append("compile")
        if (want_area or not cues.violated) and rng.random() < 0.5:
            commands.insert(0, "set_max_area 0")
        return commands

    def _apply_hallucinations(self, commands: list[str], rng) -> list[str]:
        output = []
        for command in commands:
            if rng.random() < self.profile.hallucination_rate:
                output.append(
                    HALLUCINATION_GALLERY[int(rng.integers(len(HALLUCINATION_GALLERY)))]
                )
            else:
                output.append(command)
        return output

    @staticmethod
    def _rewrite_script(baseline: str, commands: list[str]) -> str:
        """Replace the compile section of the baseline with new commands."""
        keep_before: list[str] = []
        keep_after: list[str] = []
        seen_compile = False
        for line in baseline.splitlines():
            stripped = line.strip()
            first = stripped.split(" ")[0] if stripped else ""
            if first in ("compile", "compile_ultra", "optimize_registers",
                         "balance_buffer", "set_max_fanout", "set_max_area",
                         "ungroup", "set_flatten"):
                seen_compile = True
                continue
            if not stripped:
                continue
            if first.startswith("report") and seen_compile:
                keep_after.append(stripped)
            elif first.startswith("report"):
                keep_after.append(stripped)
            else:
                keep_before.append(stripped)
        script_lines = keep_before + commands + (keep_after or ["report_qor"])
        return "\n".join(script_lines)

    def _rationale(self, cues: _Cues, commands: list[str]) -> str:
        reasons = []
        if cues.pathologies:
            reasons.append(f"analysis shows {', '.join(cues.pathologies)}")
        if cues.violated:
            reasons.append(f"timing is violated (WNS {cues.wns})")
        if cues.mul_heavy:
            reasons.append("the RTL is multiply-heavy")
        plan = "; ".join(reasons) or "the design meets timing"
        return f"Because {plan}, I will use: {', '.join(commands)}."

    # -- auxiliary tasks (used by SynthExpert / SynthRAG) -----------------------------

    def _formulate_query(self, sections: dict[str, str]) -> str:
        step = sections.get("THOUGHT STEP", "")
        tokens = re.findall(r"[a-z_]+", step.lower())
        relevant = [t for t in tokens if t in VALID_COMMANDS or len(t) > 5]
        return " ".join(dict.fromkeys(relevant))[:120] or step[:120]

    def _generate_cypher(self, sections: dict[str, str]) -> str:
        target = sections.get("TARGET", "").strip()
        kind = sections.get("KIND", "module").strip().lower()
        if kind == "cell":
            return (
                f"MATCH (c:LibCell {{name: '{target}'}}) "
                "RETURN c.name, c.area, c.drive_res"
            )
        return (
            f"MATCH (m:Module {{name: '{target}'}}) "
            "RETURN m.name, m.code, m.category"
        )

    def _revise_step(self, sections: dict[str, str]) -> str:
        step = sections.get("THOUGHT STEP", "")
        retrieved = sections.get("RETRIEVED", "")
        # Drop any command in the step that the retrieved manual text does
        # not document -- the paper's "ensure command specifications" check.
        valid_mentioned = [c for c in VALID_COMMANDS if c in retrieved]
        words = step.split()
        if not valid_mentioned:
            return step
        lines = [step]
        lines.append(f"(validated against manual: {', '.join(valid_mentioned)})")
        return "\n".join(lines)

    def _rerank(self, sections: dict[str, str]) -> str:
        """Order candidate documents by lexical overlap with the query."""
        query = set(re.findall(r"[a-z_]+", sections.get("QUERY", "").lower()))
        docs = []
        for line in sections.get("CANDIDATES", "").splitlines():
            if ":" not in line:
                continue
            doc_id, text = line.split(":", 1)
            overlap = len(query & set(re.findall(r"[a-z_]+", text.lower())))
            docs.append((overlap, doc_id.strip()))
        docs.sort(key=lambda pair: -pair[0])
        return "\n".join(doc_id for _, doc_id in docs)
