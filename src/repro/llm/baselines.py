"""Model-profile presets: the Table III contenders.

The two commercial baselines and the ChatLS core generator share the
:class:`~repro.llm.simulated.SimulatedLLM` machinery; they differ only in
their capability profiles.  The baseline profiles encode what the paper's
evaluation showed:

* **GPT-4o** — competent, area-leaning (it wins some area columns in
  Table III), misses fanout/retiming opportunities without analysis,
  hallucinates occasionally.
* **Claude 3.5 Sonnet** — similar; slightly larger effective window but a
  higher rate of invalid options, and an area-insensitive style (its
  Table III areas are usually the largest).
* **ChatLS core** — the same class of model, but in the ChatLS pipeline it
  receives CircuitMentor analysis + SynthRAG retrievals, and SynthExpert
  repairs hallucinations against the manual.
"""

from __future__ import annotations

from .simulated import ModelProfile, SimulatedLLM

__all__ = ["gpt4o", "claude35", "chatls_core", "MODEL_BUILDERS"]


def gpt4o() -> SimulatedLLM:
    """The simulated GPT-4o (2024-08-06) baseline."""
    return SimulatedLLM(
        ModelProfile(
            name="gpt-4o-sim",
            context_window=3500,
            hallucination_rate=0.22,
            prefers_area=True,
            extra_command_rate=0.35,
            knows_retiming_heuristic=False,
            knows_fanout_heuristic=False,
        )
    )


def claude35() -> SimulatedLLM:
    """The simulated Claude 3.5 Sonnet (2024-10-22) baseline."""
    return SimulatedLLM(
        ModelProfile(
            name="claude-3.5-sonnet-sim",
            context_window=5000,
            hallucination_rate=0.28,
            prefers_area=False,
            extra_command_rate=0.45,
            knows_retiming_heuristic=False,
            knows_fanout_heuristic=True,
        )
    )


def chatls_core() -> SimulatedLLM:
    """The generator inside ChatLS (grounded by RAG + analysis sections)."""
    return SimulatedLLM(
        ModelProfile(
            name="chatls-core",
            context_window=8000,
            hallucination_rate=0.18,
            prefers_area=False,
            extra_command_rate=0.3,
            knows_retiming_heuristic=True,
            knows_fanout_heuristic=True,
        )
    )


MODEL_BUILDERS = {
    "gpt-4o": gpt4o,
    "claude-3.5": claude35,
    "chatls-core": chatls_core,
}
