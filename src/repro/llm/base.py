"""LLM client interface and response containers.

Every generator in this repository — the ChatLS pipeline and the GPT-4o /
Claude-3.5 baselines — speaks the same contract: a prompt string goes in,
completion text comes out.  The simulated models are deterministic given
``(prompt, seed)``; Pass@k sampling varies the seed (paper Table III is
Pass@5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

__all__ = ["LLMClient", "Completion"]


@dataclass(frozen=True)
class Completion:
    """One model completion."""

    text: str
    model: str
    seed: int


class LLMClient(Protocol):
    """Prompt-in / text-out language model interface."""

    name: str

    def complete(self, prompt: str, seed: int = 0) -> Completion:
        """Generate a completion for ``prompt``; deterministic per seed."""
        ...
