"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Converts the tracer's event records into the Trace Event Format's
"complete" (``ph: "X"``) and "instant" (``ph: "i"``) events.  Timestamps
are microseconds from the tracer epoch, one timeline row per thread, so
nested spans render as a flame graph per worker.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = ["to_chrome", "write_chrome"]

_CATEGORY = "repro"


def to_chrome(events: Iterable[dict], meta: dict | None = None) -> dict[str, Any]:
    """Build a Chrome trace-event document from tracer event records."""
    pid = (meta or {}).get("pid", 1)
    trace_events: list[dict[str, Any]] = []
    thread_names: dict[int, str] = {}
    for record in events:
        kind = record.get("type")
        if kind == "span":
            tid = record.get("tid", 0)
            thread_names.setdefault(tid, record.get("tname", f"thread-{tid}"))
            args = dict(record.get("attrs") or {})
            args["trace"] = record.get("trace")
            args["span"] = record.get("span")
            if record.get("parent"):
                args["parent"] = record["parent"]
            trace_events.append(
                {
                    "name": record["name"],
                    "cat": _CATEGORY,
                    "ph": "X",
                    "ts": round(record["ts"] * 1e6, 3),
                    "dur": round(record["dur"] * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif kind == "event":
            trace_events.append(
                {
                    "name": record["name"],
                    "cat": _CATEGORY,
                    "ph": "i",
                    "s": "t",
                    "ts": round(record["ts"] * 1e6, 3),
                    "pid": pid,
                    "tid": 0,
                    "args": dict(record.get("attrs") or {}),
                }
            )
    for tid, tname in thread_names.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable[dict], path: str, meta: dict | None = None) -> None:
    """Write the events as a Chrome trace JSON file."""
    with open(path, "w") as fh:
        json.dump(to_chrome(events, meta=meta), fh)
