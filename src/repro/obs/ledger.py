"""Persistent run ledger: one manifest per eval run, diffable for regressions.

The trace/report stack answers "what happened inside *this* run"; the
ledger answers "how does this run compare to the last hundred".  With
``REPRO_RUN_LEDGER=<dir>`` set, every harness run appends one JSON
manifest to the directory:

* identity — run id, label (``table3``/``table4``/...), wall-clock time,
  git revision, hostname, Python/platform;
* configuration — the full ``REPRO_*`` environment fingerprint and the
  effective parallel backend/jobs;
* performance — per-stage ``total/calls/p50/p95/max`` from the
  :mod:`repro.perf` timers, every counter, and each cache provider's
  snapshot (entries, hits, misses, ...);
* quality — per-design QoR rows (WNS/CPS/TNS/area) keyed
  ``<model>/<design>``.

Manifests are plain JSON written atomically (tmp + ``os.replace``), so a
killed run never leaves a torn entry, and concurrent runs never clobber
each other (run ids embed pid + a per-process sequence number).

``python -m repro.obs.report --diff <base> <new>`` (see
:mod:`repro.obs.report`) compares two manifests with configurable
thresholds — stage latency ratio, cache hit-rate drop, relative QoR
tolerance — and exits nonzero when the new run regresses, which is the
machine-checkable gate CI runs against a committed baseline manifest.

With ``REPRO_RUN_LEDGER`` unset, :func:`record_run` is one environment
lookup and returns immediately.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from .. import perf

__all__ = [
    "MANIFEST_SCHEMA",
    "DiffResult",
    "Thresholds",
    "ledger_dir",
    "ledger_enabled",
    "build_manifest",
    "write_manifest",
    "record_run",
    "load_manifest",
    "list_runs",
    "latest_run",
    "resolve_run",
    "diff_manifests",
    "render_diff",
    "qor_rows",
]

#: Manifest schema version (bump on breaking shape changes).
MANIFEST_SCHEMA = 1

#: Per-process manifest sequence, so runs in one process get unique ids.
_RUN_SEQ = itertools.count(1)


def ledger_dir() -> str | None:
    """The ledger directory from ``REPRO_RUN_LEDGER`` (None = disabled)."""
    raw = os.environ.get("REPRO_RUN_LEDGER", "").strip()
    return raw or None


def ledger_enabled() -> bool:
    return ledger_dir() is not None


def _git_rev() -> str | None:
    """Current git revision, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _env_fingerprint() -> dict[str, str]:
    """The ``REPRO_*`` environment slice that shapes a run."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_") and key != "REPRO_PARALLEL_WORKER"
    }


def qor_rows(qor: Mapping[str, Any] | None) -> dict[str, dict[str, float]]:
    """Normalize ``{key: QoRSnapshot | dict | None}`` into manifest rows."""
    rows: dict[str, dict[str, float]] = {}
    for key, snap in (qor or {}).items():
        if snap is None:
            continue
        if isinstance(snap, Mapping):
            values = snap
        else:
            values = {
                "wns": snap.wns, "cps": snap.cps,
                "tns": snap.tns, "area": snap.area,
            }
        rows[key] = {
            metric: round(float(values[metric]), 6)
            for metric in ("wns", "cps", "tns", "area")
            if metric in values
        }
    return rows


def build_manifest(
    label: str,
    qor: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble one run manifest from the current process state.

    The perf snapshot is taken here, so callers should build the manifest
    at the *end* of the run (after :func:`repro.parallel.sync_worker_perf`
    or pool shutdown, if the process backend ran, so worker activity is
    folded in).
    """
    snapshot = perf.snapshot()
    caches = dict(snapshot.get("caches", {}))
    parallel = caches.pop("parallel", None)
    run_id = (
        f"{time.strftime('%Y%m%dT%H%M%S')}"
        f"-{os.getpid()}-{next(_RUN_SEQ):03d}-{label}"
    )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "label": label,
        "unix_time": time.time(),
        "git_rev": _git_rev(),
        "hostname": socket.gethostname(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "env": _env_fingerprint(),
        "parallel": parallel,
        "stages": snapshot.get("timers", {}),
        "counters": snapshot.get("counters", {}),
        "caches": caches,
        "qor": qor_rows(qor),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(manifest: dict, directory: str | None = None) -> str:
    """Atomically write a manifest into the ledger directory; returns path."""
    directory = directory or ledger_dir()
    if directory is None:
        raise ValueError("no ledger directory (REPRO_RUN_LEDGER unset)")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{manifest['run_id']}.json")
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def record_run(
    label: str,
    qor: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> str | None:
    """Persist a manifest for this run iff ``REPRO_RUN_LEDGER`` is set.

    The no-op path is one environment lookup — harness call sites are
    never guarded.  Returns the manifest path, or None when disabled.
    """
    directory = ledger_dir()
    if directory is None:
        return None
    path = write_manifest(build_manifest(label, qor=qor, extra=extra), directory)
    perf.incr("ledger.runs_recorded")
    return path


def load_manifest(path: str) -> dict:
    """Load and minimally validate one manifest file."""
    with open(path) as fh:
        manifest = json.load(fh)
    if not isinstance(manifest, dict) or "run_id" not in manifest:
        raise ValueError(f"{path}: not a run manifest")
    return manifest


def list_runs(directory: str | None = None) -> list[str]:
    """Manifest paths in the ledger directory, oldest first."""
    directory = directory or ledger_dir()
    if directory is None or not os.path.isdir(directory):
        return []
    names = [n for n in os.listdir(directory) if n.endswith(".json")]
    return [os.path.join(directory, n) for n in sorted(names)]


def latest_run(directory: str | None = None,
               exclude: str | None = None) -> str | None:
    """The newest manifest path (optionally excluding one), or None."""
    runs = list_runs(directory)
    if exclude is not None:
        exclude_abs = os.path.abspath(exclude)
        runs = [r for r in runs if os.path.abspath(r) != exclude_abs]
    return runs[-1] if runs else None


def resolve_run(ref: str, directory: str | None = None,
                exclude: str | None = None) -> str:
    """Resolve ``ref`` — a path, a run id, or ``latest`` — to a file path."""
    if ref == "latest":
        path = latest_run(directory, exclude=exclude)
        if path is None:
            raise FileNotFoundError(
                "no manifests in ledger directory "
                f"{directory or ledger_dir() or '(unset)'}"
            )
        return path
    if os.path.isfile(ref):
        return ref
    directory = directory or ledger_dir()
    if directory is not None:
        candidate = os.path.join(directory, f"{ref}.json")
        if os.path.isfile(candidate):
            return candidate
    raise FileNotFoundError(f"no such run manifest: {ref!r}")


# -- regression diffing --------------------------------------------------------


@dataclass(frozen=True)
class Thresholds:
    """Regression thresholds for :func:`diff_manifests`.

    A stage regresses when its p50 or p95 grows by more than
    ``latency_ratio`` **and** by more than ``min_delta_s`` absolute (the
    absolute floor keeps micro-stage jitter from flagging); a cache
    regresses when its hit rate drops by more than ``hit_rate_drop``
    (only caches with at least ``min_lookups`` lookups in both runs are
    compared); a QoR row regresses when a metric worsens by more than
    ``qor_tol`` relative.
    """

    latency_ratio: float = 1.5
    min_delta_s: float = 0.001
    hit_rate_drop: float = 0.10
    min_lookups: int = 10
    qor_tol: float = 1e-6


@dataclass
class DiffResult:
    """Structured outcome of comparing two manifests."""

    base_id: str
    new_id: str
    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _hit_rate(stats: Mapping[str, Any]) -> tuple[float, int] | None:
    hits, misses = stats.get("hits"), stats.get("misses")
    if not isinstance(hits, (int, float)) or not isinstance(misses, (int, float)):
        return None
    lookups = int(hits + misses)
    if lookups <= 0:
        return None
    return hits / lookups, lookups


#: QoR metric → +1 when larger is better (slacks), -1 when smaller is
#: better (area).
_QOR_SENSE = {"wns": 1.0, "cps": 1.0, "tns": 1.0, "area": -1.0}


def diff_manifests(
    base: dict, new: dict, thresholds: Thresholds | None = None
) -> DiffResult:
    """Compare two run manifests; regressions make the CLI exit nonzero.

    Only stages/caches/QoR rows present in **both** manifests are
    compared — a stage that exists in one run only is a note, not a
    regression, so baselines stay valid as instrumentation grows.
    """
    th = thresholds or Thresholds()
    result = DiffResult(
        base_id=base.get("run_id", "?"), new_id=new.get("run_id", "?")
    )

    base_stages = base.get("stages", {}) or {}
    new_stages = new.get("stages", {}) or {}
    for name in sorted(set(base_stages) & set(new_stages)):
        for stat in ("p50_s", "p95_s"):
            old = float(base_stages[name].get(stat, 0.0))
            cur = float(new_stages[name].get(stat, 0.0))
            delta = cur - old
            if old > 0 and cur > old * th.latency_ratio and delta > th.min_delta_s:
                result.regressions.append(
                    f"stage {name} {stat}: {old:.6f}s -> {cur:.6f}s "
                    f"({cur / old:.2f}x > {th.latency_ratio:.2f}x threshold)"
                )
            elif old > 0 and old > cur * th.latency_ratio and -delta > th.min_delta_s:
                result.improvements.append(
                    f"stage {name} {stat}: {old:.6f}s -> {cur:.6f}s "
                    f"({old / cur:.2f}x faster)"
                )
    for name in sorted(set(base_stages) ^ set(new_stages)):
        side = "base" if name in base_stages else "new"
        result.notes.append(f"stage {name} only in {side} run")

    base_caches = base.get("caches", {}) or {}
    new_caches = new.get("caches", {}) or {}
    for name in sorted(set(base_caches) & set(new_caches)):
        old_rate = _hit_rate(base_caches[name])
        new_rate = _hit_rate(new_caches[name])
        if old_rate is None or new_rate is None:
            continue
        if old_rate[1] < th.min_lookups or new_rate[1] < th.min_lookups:
            continue
        drop = old_rate[0] - new_rate[0]
        if drop > th.hit_rate_drop:
            result.regressions.append(
                f"cache {name} hit rate: {old_rate[0]:.3f} -> {new_rate[0]:.3f} "
                f"(drop {drop:.3f} > {th.hit_rate_drop:.3f} threshold)"
            )
        elif drop < -th.hit_rate_drop:
            result.improvements.append(
                f"cache {name} hit rate: {old_rate[0]:.3f} -> {new_rate[0]:.3f}"
            )

    base_qor = base.get("qor", {}) or {}
    new_qor = new.get("qor", {}) or {}
    for key in sorted(set(base_qor) & set(new_qor)):
        for metric, sense in _QOR_SENSE.items():
            if metric not in base_qor[key] or metric not in new_qor[key]:
                continue
            old = float(base_qor[key][metric])
            cur = float(new_qor[key][metric])
            scale = max(abs(old), abs(cur), 1e-9)
            worsening = sense * (old - cur) / scale
            if worsening > th.qor_tol:
                result.regressions.append(
                    f"qor {key} {metric}: {old} -> {cur} (worse)"
                )
            elif worsening < -th.qor_tol:
                result.improvements.append(
                    f"qor {key} {metric}: {old} -> {cur} (better)"
                )
    for key in sorted(set(base_qor) ^ set(new_qor)):
        side = "base" if key in base_qor else "new"
        result.notes.append(f"qor row {key} only in {side} run")

    return result


def render_diff(result: DiffResult) -> str:
    """Human-readable diff summary (the CLI's stdout)."""
    lines = [
        "RUN LEDGER DIFF",
        f"  base: {result.base_id}",
        f"  new:  {result.new_id}",
        f"  verdict: {'OK' if result.ok else 'REGRESSION'}",
    ]
    for title, entries in (
        ("Regressions", result.regressions),
        ("Improvements", result.improvements),
        ("Notes", result.notes),
    ):
        if entries:
            lines.append("")
            lines.append(f"{title}:")
            lines.extend(f"  - {entry}" for entry in entries)
    return "\n".join(lines)
