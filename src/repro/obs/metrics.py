"""Live metrics: typed registry + Prometheus text exposition endpoint.

Where :mod:`repro.perf` is the *write* side of runtime telemetry (cheap
counters and timers updated on every hot-path event) and the trace/report
stack is *post-hoc*, this module is the **live read side**: a typed
metrics registry (labelled counters, gauges, histograms) whose families
are rendered in the Prometheus text exposition format and served by a
stdlib background HTTP server, so a running evaluation — a full Table III
sweep on the process pool — can be scraped mid-flight for queue depths,
worker utilization, cache hit ratios and process resource usage.

Three metric sources feed one scrape:

* **typed metrics** registered here (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`), including callback gauges whose value is computed
  lazily at collect time — the instrumentation pattern used by the
  parallel pool and the caches, which costs nothing between scrapes;
* the **perf bridge** (:func:`collect_perf`): every ``repro.perf``
  counter, timer (exported as a histogram — bucket counts estimated from
  the bounded reservoir, ``_sum``/``_count`` exact) and stats provider
  (cache entries/hits/misses plus a derived hit ratio), so the whole
  existing instrumentation surface is scrapeable without re-plumbing;
* the **resource sampler** (:mod:`repro.obs.sampler`), which sets process
  gauges (RSS, CPU%, GC, FDs, threads) on a period.

Everything is **off by default**: with ``REPRO_METRICS_PORT`` unset,
:func:`ensure_server` is one environment lookup and no thread, no socket,
no registry traffic beyond what call sites already paid for
:mod:`repro.perf`.  Set ``REPRO_METRICS_PORT=9464`` (or ``0`` for an
ephemeral port) and every harness entry point starts the endpoint::

    REPRO_METRICS_PORT=9464 python -m repro.eval.report &
    curl localhost:9464/metrics
"""

from __future__ import annotations

import bisect
import os
import re
import threading
from typing import Any, Callable, Iterable, Iterator

from .. import perf

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "Sample",
    "DEFAULT_BUCKETS",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "register_callback",
    "collect_perf",
    "render",
    "parse_exposition",
    "metrics_port",
    "metrics_enabled",
    "ensure_server",
    "start_server",
    "stop_server",
    "active_server",
]

#: Default histogram bucket upper bounds (seconds) for stage latencies:
#: sub-millisecond cache hits through minute-scale full-corpus stages.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def sanitize_name(name: str) -> str:
    """Map an arbitrary dotted metric name to exposition-legal form."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


class Sample:
    """One exposition line: ``name{labels} value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value


class MetricFamily:
    """A named, typed group of samples (one ``# TYPE`` block)."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, type: str, help: str = "",
                 samples: list[Sample] | None = None) -> None:
        self.name = name
        self.type = type
        self.help = help
        self.samples = samples if samples is not None else []

    def add(self, value: float, suffix: str = "", **labels: Any) -> None:
        self.samples.append(
            Sample(self.name + suffix, {k: str(v) for k, v in labels.items()}, value)
        )


def _label_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    """Base for typed metrics: labelled children behind one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 registry: "MetricsRegistry | None" = None) -> None:
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: dict[tuple, Any] = {}
        if registry is not None:
            registry.register(self)

    def _check_labels(self, labels: dict[str, Any]) -> dict[str, str]:
        out = {}
        for key, value in labels.items():
            if not _LABEL_OK.match(key):
                raise ValueError(f"invalid label name {key!r}")
            out[key] = str(value)
        return out

    def clear(self) -> None:
        with self._lock:
            self._children.clear()

    def collect(self) -> MetricFamily:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing labelled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        labels = self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            current, _ = self._children.get(key, (0.0, labels))
            self._children[key] = (current + amount, labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self._check_labels(labels))
        with self._lock:
            return self._children.get(key, (0.0, {}))[0]

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            children = list(self._children.values())
        for value, labels in children:
            family.add(value, **labels)
        return family


class Gauge(_Metric):
    """Labelled gauge: a value that can go up, down, or be computed lazily.

    ``set_function`` installs a callable evaluated at collect time — the
    zero-overhead instrumentation pattern for live state (queue depths,
    pool occupancy): nothing runs until something scrapes.
    """

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        labels = self._check_labels(labels)
        with self._lock:
            self._children[_label_key(labels)] = (float(value), labels)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        labels = self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            current, _ = self._children.get(key, (0.0, labels))
            if callable(current):
                raise ValueError(f"gauge {self.name} child is a callback")
            self._children[key] = (current + amount, labels)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        labels = self._check_labels(labels)
        with self._lock:
            self._children[_label_key(labels)] = (fn, labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self._check_labels(labels))
        with self._lock:
            value, _ = self._children.get(key, (0.0, {}))
        return float(value()) if callable(value) else value

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            children = list(self._children.values())
        for value, labels in children:
            if callable(value):
                try:
                    value = float(value())
                except Exception:  # a dead callback must not kill the scrape
                    continue
            family.add(value, **labels)
        return family


class Histogram(_Metric):
    """Labelled histogram with fixed bucket upper bounds.

    Renders the standard cumulative ``_bucket{le=...}`` series plus exact
    ``_sum`` and ``_count``; bucket counts are monotonically non-
    decreasing by construction and the ``+Inf`` bucket always equals
    ``_count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 registry: "MetricsRegistry | None" = None) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        super().__init__(name, help, registry)

    def observe(self, value: float, **labels: Any) -> None:
        labels = self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = (
                    [0] * len(self.bounds), [0.0, 0], labels
                )
            counts, sum_count, _ = child
            idx = bisect.bisect_left(self.bounds, value)
            if idx < len(counts):
                counts[idx] += 1
            sum_count[0] += value
            sum_count[1] += 1

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            children = [
                (list(counts), list(sum_count), dict(labels))
                for counts, sum_count, labels in self._children.values()
            ]
        for counts, (total, count), labels in children:
            cumulative = 0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                family.add(cumulative, suffix="_bucket", le=_fmt_bound(bound), **labels)
            family.add(count, suffix="_bucket", le="+Inf", **labels)
            family.add(total, suffix="_sum", **labels)
            family.add(count, suffix="_count", **labels)
        return family


def _fmt_bound(bound: float) -> str:
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """Thread-safe collection of typed metrics plus collector callbacks.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent, so
    modules that reload re-register harmlessly); callbacks return extra
    :class:`MetricFamily` lists computed at scrape time — the perf bridge
    and the parallel-pool live stats register through this channel.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._callbacks: dict[str, Callable[[], Iterable[MetricFamily]]] = {}

    def register(self, metric: _Metric) -> None:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        metric = cls(name, help, **kwargs)
        with self._lock:
            return self._metrics.setdefault(name, metric)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def register_callback(
        self, name: str, fn: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Add (or replace) a collect-time family source."""
        with self._lock:
            self._callbacks[name] = fn

    def collect(self) -> list[MetricFamily]:
        with self._lock:
            metrics = list(self._metrics.values())
            callbacks = list(self._callbacks.values())
        families = [m.collect() for m in metrics]
        for callback in callbacks:
            try:
                families.extend(callback())
            except Exception:  # one broken source must not kill the scrape
                continue
        return [f for f in families if f.samples]

    def reset(self) -> None:
        """Drop every metric and callback (test isolation helper)."""
        with self._lock:
            self._metrics.clear()
            self._callbacks.clear()


#: The process-global registry served by the metrics endpoint.
registry = MetricsRegistry()

counter = registry.counter
gauge = registry.gauge
histogram = registry.histogram


def register_callback(name: str, fn: Callable[[], Iterable[MetricFamily]]) -> None:
    registry.register_callback(name, fn)


# -- perf bridge ---------------------------------------------------------------


def collect_perf() -> list[MetricFamily]:
    """Bridge the :mod:`repro.perf` registry into metric families.

    * counters → ``repro_perf_events_total{name=...}``;
    * timers → ``repro_stage_seconds{stage=...}`` histograms: bucket
      counts estimated from the bounded duration reservoir (each retained
      sample represents ``calls / len(samples)`` observations), while
      ``_sum``/``_count`` stay exact — so rate and mean are exact and
      quantiles are as good as the reservoir;
    * stats providers → ``repro_cache_stat{cache=...,stat=...}`` for every
      numeric stat, plus a derived ``repro_cache_hit_ratio`` wherever the
      provider reports hits and misses.
    """
    state = perf.export_state()
    families = []

    counters_family = MetricFamily(
        "repro_perf_events_total", "counter", "repro.perf counter values."
    )
    for name, value in sorted(state.get("counters", {}).items()):
        counters_family.add(value, name=name)
    families.append(counters_family)

    stages = MetricFamily(
        "repro_stage_seconds", "histogram",
        "Per-stage wall clock from repro.perf timers (reservoir-estimated buckets).",
    )
    for name, entry in sorted(state.get("timers", {}).items()):
        calls = entry.get("calls", 0)
        samples = sorted(entry.get("samples", ()))
        cumulative_prev = 0
        for bound in DEFAULT_BUCKETS:
            if samples:
                frac = bisect.bisect_right(samples, bound) / len(samples)
                cumulative = min(calls, round(frac * calls))
            else:
                cumulative = 0
            cumulative = max(cumulative, cumulative_prev)
            cumulative_prev = cumulative
            stages.add(cumulative, suffix="_bucket", stage=name, le=_fmt_bound(bound))
        stages.add(calls, suffix="_bucket", stage=name, le="+Inf")
        stages.add(entry.get("total_s", 0.0), suffix="_sum", stage=name)
        stages.add(calls, suffix="_count", stage=name)
    families.append(stages)

    snapshot_caches = perf.snapshot().get("caches", {})
    stats_family = MetricFamily(
        "repro_cache_stat", "gauge", "Cache/provider statistics by name."
    )
    ratio_family = MetricFamily(
        "repro_cache_hit_ratio", "gauge", "hits / (hits + misses) per cache."
    )
    for cache_name, stats in sorted(snapshot_caches.items()):
        if not isinstance(stats, dict):
            continue
        for stat, value in sorted(stats.items()):
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                stats_family.add(value, cache=cache_name, stat=stat)
        hits, misses = stats.get("hits"), stats.get("misses")
        if isinstance(hits, (int, float)) and isinstance(misses, (int, float)):
            lookups = hits + misses
            if lookups > 0:
                ratio_family.add(hits / lookups, cache=cache_name)
    families.append(stats_family)
    families.append(ratio_family)
    return families


registry.register_callback("perf", collect_perf)


# -- text exposition -----------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render(reg: MetricsRegistry | None = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    reg = reg if reg is not None else registry
    lines: list[str] = []
    for family in reg.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for sample in family.samples:
            if sample.labels:
                label_text = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in sample.labels.items()
                )
                lines.append(f"{sample.name}{{{label_text}}} {_fmt_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_fmt_value(sample.value)}")
    return "\n".join(lines) + "\n"


_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> tuple[dict[str, str], list[Sample]]:
    """Strictly parse exposition text back into ``(types, samples)``.

    Every non-comment line must match the sample grammar; histogram
    families are validated for cumulative bucket monotonicity and
    ``+Inf == _count`` agreement.  Raises :class:`ValueError` on any
    malformed line — the round-trip property the test suite scrapes for.
    """
    types: dict[str, str] = {}
    samples: list[Sample] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split()
            if len(parts) != 2 or parts[1] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            types[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for lm in _LABEL.finditer(raw):
                labels[lm.group(1)] = lm.group(2).replace('\\"', '"').replace(
                    "\\n", "\n"
                ).replace("\\\\", "\\")
                consumed = lm.end()
                if consumed < len(raw) and raw[consumed] == ",":
                    consumed += 1
            if consumed != len(raw):
                raise ValueError(f"line {lineno}: bad label block {raw!r}")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {value_text!r}")
        samples.append(Sample(match.group("name"), labels, value))
    _validate_histograms(types, samples)
    return types, samples


def _histogram_children(
    samples: list[Sample], family: str
) -> Iterator[tuple[tuple, list[tuple[float, float]], float | None]]:
    """Group a histogram family's samples by child label set."""
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for sample in samples:
        labels = dict(sample.labels)
        le = labels.pop("le", None)
        key = _label_key(labels)
        if sample.name == f"{family}_bucket" and le is not None:
            bound = float(le.replace("+Inf", "inf"))
            buckets.setdefault(key, []).append((bound, sample.value))
        elif sample.name == f"{family}_count":
            counts[key] = sample.value
    for key, entries in buckets.items():
        yield key, sorted(entries), counts.get(key)


def _validate_histograms(types: dict[str, str], samples: list[Sample]) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        relevant = [s for s in samples if s.name.startswith(family)]
        for key, entries, count in _histogram_children(relevant, family):
            values = [v for _, v in entries]
            if values != sorted(values):
                raise ValueError(
                    f"{family} {dict(key)}: bucket counts decrease: {values}"
                )
            if entries and entries[-1][0] != float("inf"):
                raise ValueError(f"{family} {dict(key)}: missing +Inf bucket")
            if count is not None and entries and entries[-1][1] != count:
                raise ValueError(
                    f"{family} {dict(key)}: +Inf bucket {entries[-1][1]} != "
                    f"count {count}"
                )


# -- background HTTP server ----------------------------------------------------


def metrics_port() -> int | None:
    """Parse ``REPRO_METRICS_PORT``: unset/empty → None, else an int.

    ``0`` is valid and binds an ephemeral port (tests; the bound port is
    on :attr:`MetricsServer.port`).
    """
    raw = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_METRICS_PORT must be an integer, got {raw!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"REPRO_METRICS_PORT out of range: {port}")
    return port


def metrics_enabled() -> bool:
    return metrics_port() is not None


class MetricsServer:
    """Background HTTP server exposing ``/metrics`` (and ``/healthz``)."""

    def __init__(self, port: int, reg: MetricsRegistry | None = None,
                 host: str = "127.0.0.1") -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        target = reg if reg is not None else registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?")[0] not in ("/metrics", "/", "/healthz"):
                    self.send_error(404)
                    return
                if self.path.startswith("/healthz"):
                    body = b"ok\n"
                    content_type = "text/plain"
                else:
                    body = render(target).encode()
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr chatter
                return

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)


_SERVER_LOCK = threading.Lock()
_SERVER: MetricsServer | None = None
_SAMPLER = None


def active_server() -> MetricsServer | None:
    return _SERVER


def start_server(port: int | None = None,
                 sample_secs: float | None = None) -> MetricsServer:
    """Start the exposition endpoint (and the resource sampler) now.

    Idempotent: a second call returns the running server.  ``port=None``
    reads ``REPRO_METRICS_PORT`` and raises if unset — use
    :func:`ensure_server` for the env-gated auto-start.
    """
    global _SERVER, _SAMPLER
    with _SERVER_LOCK:
        if _SERVER is not None:
            return _SERVER
        if port is None:
            port = metrics_port()
            if port is None:
                raise ValueError("REPRO_METRICS_PORT is not set")
        _SERVER = MetricsServer(port)
        from .sampler import ResourceSampler, sample_interval

        _SAMPLER = ResourceSampler(
            interval=sample_interval() if sample_secs is None else sample_secs
        )
        _SAMPLER.start()
        return _SERVER


def stop_server() -> None:
    """Stop the endpoint and the sampler (test teardown / embedding)."""
    global _SERVER, _SAMPLER
    with _SERVER_LOCK:
        if _SAMPLER is not None:
            _SAMPLER.stop()
            _SAMPLER = None
        if _SERVER is not None:
            _SERVER.close()
            _SERVER = None


def ensure_server() -> MetricsServer | None:
    """Start the endpoint iff ``REPRO_METRICS_PORT`` is set.

    The harness entry points call this unconditionally; when the gate is
    unset it is a single environment lookup — the documented near-zero
    disabled overhead.
    """
    if _SERVER is not None:
        return _SERVER
    if not metrics_enabled():
        return None
    return start_server()
