"""Run-report and ledger-diff CLI.

Usage::

    python -m repro.obs.report trace.jsonl [--top N] [--chrome out.json]
    python -m repro.obs.report --diff base.json new.json [thresholds...]
    python -m repro.obs.report --diff new.json --baseline latest

**Trace mode** prints a per-stage wall-clock breakdown (total, calls,
p50/p95/max aggregated by span name), the perf counter summary captured
at tracer shutdown, the parallel-execution summary (effective
backend/jobs plus per-worker queue-wait and steal statistics when the
process backend ran), and the slowest individual spans.  Worker
*sidecar* traces (``trace.jsonl.wNN``, written by process-pool workers
whose spans cannot nest under the parent's — see
:mod:`repro.parallel.worker`) are merged in automatically; their
snapshot records are dropped because the workers' perf registries
already merge into the parent's at pool shutdown.  Truncated or partial
JSONL lines (a worker killed mid-write) are skipped with a warning and
a count — the CLI only fails when a trace yields zero parseable spans.
``--chrome`` additionally converts the trace to Chrome trace-event JSON
for Perfetto.

**Diff mode** compares two run-ledger manifests
(:mod:`repro.obs.ledger`): ``--diff base new`` compares explicitly;
``--diff new --baseline latest`` resolves the baseline from the
``REPRO_RUN_LEDGER`` directory (or ``--ledger-dir``).  Thresholds are
configurable (``--latency-ratio``, ``--hit-rate-drop``, ``--qor-tol``,
``--min-delta-s``, ``--min-lookups``) and any regression makes the
process exit nonzero — the CI regression gate.
"""

from __future__ import annotations

import argparse
import glob as globlib
import json
import re
import sys
from typing import Any, Sequence

from ..eval.tables import render_table
from .chrome import write_chrome

__all__ = [
    "load_events",
    "load_events_with_sidecars",
    "summarize",
    "render_report",
    "run_diff",
    "main",
]


def load_events(path: str, strict: bool = False) -> list[dict]:
    """Parse a JSONL trace file into event records.

    Truncated or otherwise malformed lines — the tail a killed worker
    left mid-write — are skipped with one warning per file and a total
    count, so a partial trace still yields a report.  ``strict=True``
    restores the raising behaviour for callers validating a trace they
    just wrote.
    """
    events = []
    skipped = 0
    first_bad: str | None = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid JSON ({exc})"
                    ) from exc
                skipped += 1
                if first_bad is None:
                    first_bad = f"{path}:{lineno}: {exc}"
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(f"{path}:{lineno}: not a JSON object")
                skipped += 1
                if first_bad is None:
                    first_bad = f"{path}:{lineno}: not a JSON object"
                continue
            events.append(record)
    if skipped:
        print(
            f"warning: {path}: skipped {skipped} unparseable line"
            f"{'s' if skipped != 1 else ''} (first: {first_bad})",
            file=sys.stderr,
        )
    return events


def load_events_with_sidecars(path: str) -> list[dict]:
    """Load a trace plus any worker sidecar traces (``<path>.wNN``).

    Sidecar snapshot records are dropped: the worker registries merged
    into the parent's at pool shutdown, so the parent snapshot already
    holds their counters and keeping both would double-count.
    """
    events = load_events(path)
    for sidecar in sorted(globlib.glob(f"{globlib.escape(path)}.w[0-9][0-9]")):
        worker = re.search(r"\.w(\d+)$", sidecar).group(1)
        for record in load_events(sidecar):
            if record.get("type") == "snapshot":
                continue
            if record.get("type") == "span":
                record["tname"] = f"w{worker}:{record.get('tname', '?')}"
            events.append(record)
    return events


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def summarize(events: list[dict]) -> dict[str, Any]:
    """Aggregate trace events into the report's structured form."""
    spans = [e for e in events if e.get("type") == "span"]
    by_name: dict[str, list[float]] = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record["dur"])
    stages = {
        name: {
            "total_s": round(sum(durs), 6),
            "calls": len(durs),
            "p50_s": round(percentile(durs, 0.50), 6),
            "p95_s": round(percentile(durs, 0.95), 6),
            "max_s": round(max(durs), 6),
        }
        for name, durs in by_name.items()
    }
    counters: dict[str, int] = {}
    caches: dict[str, dict] = {}
    timers: dict[str, dict] = {}
    for record in events:
        if record.get("type") == "snapshot":
            counters = record.get("perf", {}).get("counters", {})
            caches = record.get("perf", {}).get("caches", {})
            timers = record.get("perf", {}).get("timers", {})
    # The parallel stats provider reports through the same provider
    # channel as the caches but is its own report section.
    caches = dict(caches)
    parallel = caches.pop("parallel", None)
    if not counters:
        # No shutdown snapshot (e.g. a truncated trace): reconstruct from
        # the per-span perf deltas of root spans, which contain their
        # whole subtree's activity exactly once.
        for record in spans:
            if record.get("parent"):
                continue
            for key, value in (record.get("attrs", {}).get("perf") or {}).items():
                counters[key] = counters.get(key, 0) + value
    threads = {r.get("tname", "?") for r in spans}
    slowest = sorted(spans, key=lambda r: r["dur"], reverse=True)
    return {
        "spans": len(spans),
        "traces": len({r["trace"] for r in spans}),
        "threads": sorted(threads),
        "stages": stages,
        "counters": counters,
        "caches": caches,
        "parallel": parallel,
        "workers": _worker_stats(counters, timers),
        "slowest": slowest,
    }


def _worker_stats(counters: dict, timers: dict) -> list[dict]:
    """Per-worker queue-wait/run/steal rows from the merged perf state.

    The scheduler and workers record under ``parallel.<metric>.wNN``
    keys; after pool shutdown those live in the parent snapshot.
    """
    ids: set[str] = set()
    for key in list(counters) + list(timers):
        match = re.fullmatch(r"parallel\.[a-z_]+\.w(\d+)", key)
        if match:
            ids.add(match.group(1))
    rows = []
    for wid in sorted(ids):
        wait = timers.get(f"parallel.queue_wait.w{wid}", {})
        run = timers.get(f"parallel.task_run.w{wid}", {})
        rows.append(
            {
                "worker": f"w{wid}",
                "tasks": counters.get(f"parallel.tasks.w{wid}", 0),
                "steals": counters.get(f"parallel.steals.w{wid}", 0),
                "wait_p50_s": wait.get("p50_s", 0.0),
                "wait_p95_s": wait.get("p95_s", 0.0),
                "wait_max_s": wait.get("max_s", 0.0),
                "run_total_s": run.get("total_s", 0.0),
            }
        )
    return rows


def render_report(events: list[dict], top: int = 10) -> str:
    """Render the human-readable run report."""
    summary = summarize(events)
    out = [
        "OBSERVABILITY RUN REPORT",
        f"  spans: {summary['spans']}  traces: {summary['traces']}"
        f"  threads: {len(summary['threads'])}",
        "",
    ]
    stage_rows = [
        [name, s["total_s"], s["calls"], s["p50_s"], s["p95_s"], s["max_s"]]
        for name, s in sorted(
            summary["stages"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
    ]
    out.append(
        render_table(
            ["Stage", "Total (s)", "Calls", "p50 (s)", "p95 (s)", "Max (s)"],
            [[r[0], _s(r[1]), r[2], _s(r[3]), _s(r[4]), _s(r[5])] for r in stage_rows],
            title="Per-stage time breakdown",
        )
    )
    if summary["counters"]:
        out.append("")
        out.append(
            render_table(
                ["Counter", "Value"],
                sorted(summary["counters"].items()),
                title="Perf counters",
            )
        )
    if summary["caches"]:
        out.append("")
        out.append(
            render_table(
                ["Cache", "Entries", "Hits", "Misses"],
                [
                    [name, c.get("entries", 0), c.get("hits", 0), c.get("misses", 0)]
                    for name, c in sorted(summary["caches"].items())
                ],
                title="Caches",
            )
        )
    if summary.get("parallel"):
        p = summary["parallel"]
        out.append("")
        out.append(
            "Parallel execution: backend={backend} jobs={jobs} tasks={tasks}".format(
                backend=p.get("backend"), jobs=p.get("jobs"), tasks=p.get("tasks")
            )
            + (
                f"  pools={p['pools']} pool_workers={p.get('pool_workers', 0)}"
                if p.get("pools")
                else ""
            )
        )
    if summary.get("workers"):
        out.append("")
        out.append(
            render_table(
                [
                    "Worker", "Tasks", "Steals",
                    "Wait p50 (s)", "Wait p95 (s)", "Wait max (s)", "Run (s)",
                ],
                [
                    [
                        w["worker"], w["tasks"], w["steals"],
                        _s(w["wait_p50_s"]), _s(w["wait_p95_s"]),
                        _s(w["wait_max_s"]), _s(w["run_total_s"]),
                    ]
                    for w in summary["workers"]
                ],
                title="Process-pool workers (queue wait / steals)",
            )
        )
    out.append("")
    slow_rows = [
        [
            r["name"],
            _s(r["dur"]),
            r.get("tname", "?"),
            _attr_hint(r.get("attrs") or {}),
        ]
        for r in summary["slowest"][:top]
    ]
    out.append(
        render_table(
            ["Span", "Dur (s)", "Thread", "Attributes"],
            slow_rows,
            title=f"Slowest spans (top {min(top, len(slow_rows))})",
        )
    )
    return "\n".join(out)


def _s(value: float) -> str:
    return f"{value:.6f}"


def _attr_hint(attrs: dict, limit: int = 60) -> str:
    pairs = [f"{k}={v}" for k, v in attrs.items() if k != "perf"]
    text = " ".join(pairs)
    return text[: limit - 1] + "…" if len(text) > limit else text


def run_diff(args: argparse.Namespace) -> int:
    """The ``--diff`` sub-mode: compare two ledger manifests."""
    from .ledger import (
        Thresholds,
        diff_manifests,
        load_manifest,
        render_diff,
        resolve_run,
    )

    refs = list(args.diff)
    if len(refs) > 2:
        print("--diff takes at most two manifests", file=sys.stderr)
        return 2
    if len(refs) == 2:
        if args.baseline:
            print("--baseline conflicts with a two-manifest --diff", file=sys.stderr)
            return 2
        base_ref, new_ref = refs
    else:
        if not args.baseline:
            print(
                "--diff with one manifest needs --baseline (e.g. --baseline latest)",
                file=sys.stderr,
            )
            return 2
        new_ref, base_ref = refs[0], args.baseline
    try:
        new_path = resolve_run(new_ref, directory=args.ledger_dir)
        base_path = resolve_run(
            base_ref, directory=args.ledger_dir, exclude=new_path
        )
        base = load_manifest(base_path)
        new = load_manifest(new_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    result = diff_manifests(
        base,
        new,
        Thresholds(
            latency_ratio=args.latency_ratio,
            min_delta_s=args.min_delta_s,
            hit_rate_drop=args.hit_rate_drop,
            min_lookups=args.min_lookups,
            qor_tol=args.qor_tol,
        ),
    )
    print(render_diff(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?",
                        help="path to a JSONL trace (REPRO_TRACE output)")
    parser.add_argument("--top", type=int, default=10, help="slowest spans to list")
    parser.add_argument("--chrome", metavar="OUT.json",
                        help="also convert to Chrome trace-event JSON")
    diff = parser.add_argument_group("ledger diff")
    diff.add_argument("--diff", nargs="+", metavar="MANIFEST",
                      help="compare run manifests: BASE NEW, or NEW with --baseline")
    diff.add_argument("--baseline", metavar="REF",
                      help="baseline run: a path, a run id, or 'latest'")
    diff.add_argument("--ledger-dir", metavar="DIR",
                      help="ledger directory (default: REPRO_RUN_LEDGER)")
    diff.add_argument("--latency-ratio", type=float, default=1.5,
                      help="stage p50/p95 growth factor that flags (default 1.5)")
    diff.add_argument("--min-delta-s", type=float, default=0.001,
                      help="absolute latency-growth floor in seconds (default 0.001)")
    diff.add_argument("--hit-rate-drop", type=float, default=0.10,
                      help="cache hit-rate drop that flags (default 0.10)")
    diff.add_argument("--min-lookups", type=int, default=10,
                      help="minimum cache lookups for comparison (default 10)")
    diff.add_argument("--qor-tol", type=float, default=1e-6,
                      help="relative QoR worsening tolerance (default 1e-6)")
    args = parser.parse_args(argv)
    if args.diff:
        return run_diff(args)
    if not args.trace:
        parser.error("a trace path is required unless --diff is given")
    events = load_events_with_sidecars(args.trace)
    if not any(e.get("type") == "span" for e in events):
        print(f"{args.trace}: no spans recorded", file=sys.stderr)
        return 1
    print(render_report(events, top=args.top))
    if args.chrome:
        meta = next((e for e in events if e.get("type") == "meta"), None)
        write_chrome(events, args.chrome, meta=meta)
        print(f"\n[chrome trace written to {args.chrome}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
