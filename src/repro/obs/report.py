"""Run-report CLI over a JSONL trace.

Usage::

    python -m repro.obs.report trace.jsonl [--top N] [--chrome out.json]

Prints a per-stage wall-clock breakdown (total, calls, p50/p95/max
aggregated by span name), the perf counter summary captured at tracer
shutdown, the parallel-execution summary (effective backend/jobs plus
per-worker queue-wait and steal statistics when the process backend
ran), and the slowest individual spans.  Worker *sidecar* traces
(``trace.jsonl.wNN``, written by process-pool workers whose spans
cannot nest under the parent's — see :mod:`repro.parallel.worker`) are
merged in automatically; their snapshot records are dropped because the
workers' perf registries already merge into the parent's at pool
shutdown.  ``--chrome`` additionally converts the trace to Chrome
trace-event JSON for Perfetto.
"""

from __future__ import annotations

import argparse
import glob as globlib
import json
import re
import sys
from typing import Any, Sequence

from ..eval.tables import render_table
from .chrome import write_chrome

__all__ = ["load_events", "load_events_with_sidecars", "summarize", "render_report", "main"]


def load_events(path: str) -> list[dict]:
    """Parse a JSONL trace file into event records."""
    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    return events


def load_events_with_sidecars(path: str) -> list[dict]:
    """Load a trace plus any worker sidecar traces (``<path>.wNN``).

    Sidecar snapshot records are dropped: the worker registries merged
    into the parent's at pool shutdown, so the parent snapshot already
    holds their counters and keeping both would double-count.
    """
    events = load_events(path)
    for sidecar in sorted(globlib.glob(f"{globlib.escape(path)}.w[0-9][0-9]")):
        worker = re.search(r"\.w(\d+)$", sidecar).group(1)
        for record in load_events(sidecar):
            if record.get("type") == "snapshot":
                continue
            if record.get("type") == "span":
                record["tname"] = f"w{worker}:{record.get('tname', '?')}"
            events.append(record)
    return events


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def summarize(events: list[dict]) -> dict[str, Any]:
    """Aggregate trace events into the report's structured form."""
    spans = [e for e in events if e.get("type") == "span"]
    by_name: dict[str, list[float]] = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record["dur"])
    stages = {
        name: {
            "total_s": round(sum(durs), 6),
            "calls": len(durs),
            "p50_s": round(percentile(durs, 0.50), 6),
            "p95_s": round(percentile(durs, 0.95), 6),
            "max_s": round(max(durs), 6),
        }
        for name, durs in by_name.items()
    }
    counters: dict[str, int] = {}
    caches: dict[str, dict] = {}
    timers: dict[str, dict] = {}
    for record in events:
        if record.get("type") == "snapshot":
            counters = record.get("perf", {}).get("counters", {})
            caches = record.get("perf", {}).get("caches", {})
            timers = record.get("perf", {}).get("timers", {})
    # The parallel stats provider reports through the same provider
    # channel as the caches but is its own report section.
    caches = dict(caches)
    parallel = caches.pop("parallel", None)
    if not counters:
        # No shutdown snapshot (e.g. a truncated trace): reconstruct from
        # the per-span perf deltas of root spans, which contain their
        # whole subtree's activity exactly once.
        for record in spans:
            if record.get("parent"):
                continue
            for key, value in (record.get("attrs", {}).get("perf") or {}).items():
                counters[key] = counters.get(key, 0) + value
    threads = {r.get("tname", "?") for r in spans}
    slowest = sorted(spans, key=lambda r: r["dur"], reverse=True)
    return {
        "spans": len(spans),
        "traces": len({r["trace"] for r in spans}),
        "threads": sorted(threads),
        "stages": stages,
        "counters": counters,
        "caches": caches,
        "parallel": parallel,
        "workers": _worker_stats(counters, timers),
        "slowest": slowest,
    }


def _worker_stats(counters: dict, timers: dict) -> list[dict]:
    """Per-worker queue-wait/run/steal rows from the merged perf state.

    The scheduler and workers record under ``parallel.<metric>.wNN``
    keys; after pool shutdown those live in the parent snapshot.
    """
    ids: set[str] = set()
    for key in list(counters) + list(timers):
        match = re.fullmatch(r"parallel\.[a-z_]+\.w(\d+)", key)
        if match:
            ids.add(match.group(1))
    rows = []
    for wid in sorted(ids):
        wait = timers.get(f"parallel.queue_wait.w{wid}", {})
        run = timers.get(f"parallel.task_run.w{wid}", {})
        rows.append(
            {
                "worker": f"w{wid}",
                "tasks": counters.get(f"parallel.tasks.w{wid}", 0),
                "steals": counters.get(f"parallel.steals.w{wid}", 0),
                "wait_p50_s": wait.get("p50_s", 0.0),
                "wait_p95_s": wait.get("p95_s", 0.0),
                "wait_max_s": wait.get("max_s", 0.0),
                "run_total_s": run.get("total_s", 0.0),
            }
        )
    return rows


def render_report(events: list[dict], top: int = 10) -> str:
    """Render the human-readable run report."""
    summary = summarize(events)
    out = [
        "OBSERVABILITY RUN REPORT",
        f"  spans: {summary['spans']}  traces: {summary['traces']}"
        f"  threads: {len(summary['threads'])}",
        "",
    ]
    stage_rows = [
        [name, s["total_s"], s["calls"], s["p50_s"], s["p95_s"], s["max_s"]]
        for name, s in sorted(
            summary["stages"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
    ]
    out.append(
        render_table(
            ["Stage", "Total (s)", "Calls", "p50 (s)", "p95 (s)", "Max (s)"],
            [[r[0], _s(r[1]), r[2], _s(r[3]), _s(r[4]), _s(r[5])] for r in stage_rows],
            title="Per-stage time breakdown",
        )
    )
    if summary["counters"]:
        out.append("")
        out.append(
            render_table(
                ["Counter", "Value"],
                sorted(summary["counters"].items()),
                title="Perf counters",
            )
        )
    if summary["caches"]:
        out.append("")
        out.append(
            render_table(
                ["Cache", "Entries", "Hits", "Misses"],
                [
                    [name, c.get("entries", 0), c.get("hits", 0), c.get("misses", 0)]
                    for name, c in sorted(summary["caches"].items())
                ],
                title="Caches",
            )
        )
    if summary.get("parallel"):
        p = summary["parallel"]
        out.append("")
        out.append(
            "Parallel execution: backend={backend} jobs={jobs} tasks={tasks}".format(
                backend=p.get("backend"), jobs=p.get("jobs"), tasks=p.get("tasks")
            )
            + (
                f"  pools={p['pools']} pool_workers={p.get('pool_workers', 0)}"
                if p.get("pools")
                else ""
            )
        )
    if summary.get("workers"):
        out.append("")
        out.append(
            render_table(
                [
                    "Worker", "Tasks", "Steals",
                    "Wait p50 (s)", "Wait p95 (s)", "Wait max (s)", "Run (s)",
                ],
                [
                    [
                        w["worker"], w["tasks"], w["steals"],
                        _s(w["wait_p50_s"]), _s(w["wait_p95_s"]),
                        _s(w["wait_max_s"]), _s(w["run_total_s"]),
                    ]
                    for w in summary["workers"]
                ],
                title="Process-pool workers (queue wait / steals)",
            )
        )
    out.append("")
    slow_rows = [
        [
            r["name"],
            _s(r["dur"]),
            r.get("tname", "?"),
            _attr_hint(r.get("attrs") or {}),
        ]
        for r in summary["slowest"][:top]
    ]
    out.append(
        render_table(
            ["Span", "Dur (s)", "Thread", "Attributes"],
            slow_rows,
            title=f"Slowest spans (top {min(top, len(slow_rows))})",
        )
    )
    return "\n".join(out)


def _s(value: float) -> str:
    return f"{value:.6f}"


def _attr_hint(attrs: dict, limit: int = 60) -> str:
    pairs = [f"{k}={v}" for k, v in attrs.items() if k != "perf"]
    text = " ".join(pairs)
    return text[: limit - 1] + "…" if len(text) > limit else text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to a JSONL trace (REPRO_TRACE output)")
    parser.add_argument("--top", type=int, default=10, help="slowest spans to list")
    parser.add_argument("--chrome", metavar="OUT.json",
                        help="also convert to Chrome trace-event JSON")
    args = parser.parse_args(argv)
    events = load_events_with_sidecars(args.trace)
    if not any(e.get("type") == "span" for e in events):
        print(f"{args.trace}: no spans recorded", file=sys.stderr)
        return 1
    print(render_report(events, top=args.top))
    if args.chrome:
        meta = next((e for e in events if e.get("type") == "meta"), None)
        write_chrome(events, args.chrome, meta=meta)
        print(f"\n[chrome trace written to {args.chrome}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
