"""Run-report CLI over a JSONL trace.

Usage::

    python -m repro.obs.report trace.jsonl [--top N] [--chrome out.json]

Prints a per-stage wall-clock breakdown (total, calls, p50/p95/max
aggregated by span name), the perf counter summary captured at tracer
shutdown, and the slowest individual spans.  ``--chrome`` additionally
converts the trace to Chrome trace-event JSON for Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from ..eval.tables import render_table
from .chrome import write_chrome

__all__ = ["load_events", "summarize", "render_report", "main"]


def load_events(path: str) -> list[dict]:
    """Parse a JSONL trace file into event records."""
    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    return events


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def summarize(events: list[dict]) -> dict[str, Any]:
    """Aggregate trace events into the report's structured form."""
    spans = [e for e in events if e.get("type") == "span"]
    by_name: dict[str, list[float]] = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record["dur"])
    stages = {
        name: {
            "total_s": round(sum(durs), 6),
            "calls": len(durs),
            "p50_s": round(percentile(durs, 0.50), 6),
            "p95_s": round(percentile(durs, 0.95), 6),
            "max_s": round(max(durs), 6),
        }
        for name, durs in by_name.items()
    }
    counters: dict[str, int] = {}
    caches: dict[str, dict] = {}
    for record in events:
        if record.get("type") == "snapshot":
            counters = record.get("perf", {}).get("counters", {})
            caches = record.get("perf", {}).get("caches", {})
    if not counters:
        # No shutdown snapshot (e.g. a truncated trace): reconstruct from
        # the per-span perf deltas of root spans, which contain their
        # whole subtree's activity exactly once.
        for record in spans:
            if record.get("parent"):
                continue
            for key, value in (record.get("attrs", {}).get("perf") or {}).items():
                counters[key] = counters.get(key, 0) + value
    threads = {r.get("tname", "?") for r in spans}
    slowest = sorted(spans, key=lambda r: r["dur"], reverse=True)
    return {
        "spans": len(spans),
        "traces": len({r["trace"] for r in spans}),
        "threads": sorted(threads),
        "stages": stages,
        "counters": counters,
        "caches": caches,
        "slowest": slowest,
    }


def render_report(events: list[dict], top: int = 10) -> str:
    """Render the human-readable run report."""
    summary = summarize(events)
    out = [
        "OBSERVABILITY RUN REPORT",
        f"  spans: {summary['spans']}  traces: {summary['traces']}"
        f"  threads: {len(summary['threads'])}",
        "",
    ]
    stage_rows = [
        [name, s["total_s"], s["calls"], s["p50_s"], s["p95_s"], s["max_s"]]
        for name, s in sorted(
            summary["stages"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
    ]
    out.append(
        render_table(
            ["Stage", "Total (s)", "Calls", "p50 (s)", "p95 (s)", "Max (s)"],
            [[r[0], _s(r[1]), r[2], _s(r[3]), _s(r[4]), _s(r[5])] for r in stage_rows],
            title="Per-stage time breakdown",
        )
    )
    if summary["counters"]:
        out.append("")
        out.append(
            render_table(
                ["Counter", "Value"],
                sorted(summary["counters"].items()),
                title="Perf counters",
            )
        )
    if summary["caches"]:
        out.append("")
        out.append(
            render_table(
                ["Cache", "Entries", "Hits", "Misses"],
                [
                    [name, c.get("entries", 0), c.get("hits", 0), c.get("misses", 0)]
                    for name, c in sorted(summary["caches"].items())
                ],
                title="Caches",
            )
        )
    out.append("")
    slow_rows = [
        [
            r["name"],
            _s(r["dur"]),
            r.get("tname", "?"),
            _attr_hint(r.get("attrs") or {}),
        ]
        for r in summary["slowest"][:top]
    ]
    out.append(
        render_table(
            ["Span", "Dur (s)", "Thread", "Attributes"],
            slow_rows,
            title=f"Slowest spans (top {min(top, len(slow_rows))})",
        )
    )
    return "\n".join(out)


def _s(value: float) -> str:
    return f"{value:.6f}"


def _attr_hint(attrs: dict, limit: int = 60) -> str:
    pairs = [f"{k}={v}" for k, v in attrs.items() if k != "perf"]
    text = " ".join(pairs)
    return text[: limit - 1] + "…" if len(text) > limit else text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to a JSONL trace (REPRO_TRACE output)")
    parser.add_argument("--top", type=int, default=10, help="slowest spans to list")
    parser.add_argument("--chrome", metavar="OUT.json",
                        help="also convert to Chrome trace-event JSON")
    args = parser.parse_args(argv)
    events = load_events(args.trace)
    if not any(e.get("type") == "span" for e in events):
        print(f"{args.trace}: no spans recorded", file=sys.stderr)
        return 1
    print(render_report(events, top=args.top))
    if args.chrome:
        meta = next((e for e in events if e.get("type") == "meta"), None)
        write_chrome(events, args.chrome, meta=meta)
        print(f"\n[chrome trace written to {args.chrome}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
