"""Structured logging for the ChatLS pipeline.

One JSON object per line, carrying the event name, free-form fields and —
when emitted inside an open span — the current trace/span ids, so log
lines join against the trace.  Enabled by ``REPRO_LOG=<level>``
(``debug`` | ``info`` | ``warning`` | ``error``); disabled (the default)
every helper is a cheap no-op.  ``REPRO_LOG_FILE=<path>`` redirects the
stream from stderr to a file.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, IO

from .tracer import _CURRENT

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "logging_enabled",
    "log",
    "debug",
    "info",
    "warning",
    "error",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class StructuredLogger:
    """JSON-lines logger with a severity threshold.

    ``level=None`` disables the logger entirely: :meth:`log` returns after
    one comparison, with no formatting, no time call and no I/O.
    """

    def __init__(self, level: str | None = None, stream: IO[str] | None = None) -> None:
        if level is not None and level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; known: {sorted(LEVELS)}")
        self.level = level
        self.threshold = LEVELS[level] if level is not None else None
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def log(self, level: str, event: str, **fields: Any) -> None:
        if self.threshold is None or LEVELS.get(level, 0) < self.threshold:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        span = _CURRENT.get()
        if span is not None:
            record["trace"] = span.trace_id
            record["span"] = span.span_id
        record["thread"] = threading.current_thread().name
        record.update(fields)
        line = json.dumps(record, default=str)
        stream = self._stream or sys.stderr
        with self._lock:
            stream.write(line + "\n")

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


# -- module-level state -------------------------------------------------------

_LOCK = threading.Lock()
_LOGGER: StructuredLogger | None = None


def get_logger() -> StructuredLogger:
    """The active logger, lazily configured from ``REPRO_LOG``."""
    global _LOGGER
    logger = _LOGGER
    if logger is None:
        with _LOCK:
            if _LOGGER is None:
                level = os.environ.get("REPRO_LOG", "").strip().lower() or None
                stream = None
                path = os.environ.get("REPRO_LOG_FILE", "").strip()
                if level is not None and level not in LEVELS:
                    level = "info"  # any unknown/true-ish value means "on"
                if level is not None and path:
                    stream = open(path, "a")
                _LOGGER = StructuredLogger(level, stream)
            logger = _LOGGER
    return logger


def configure_logging(level: str | None = None,
                      stream: IO[str] | None = None) -> StructuredLogger:
    """Install a fresh logger (``level=None`` disables logging)."""
    global _LOGGER
    with _LOCK:
        _LOGGER = StructuredLogger(level, stream)
        return _LOGGER


def logging_enabled() -> bool:
    return get_logger().enabled


def log(level: str, event: str, **fields: Any) -> None:
    get_logger().log(level, event, **fields)


def debug(event: str, **fields: Any) -> None:
    get_logger().log("debug", event, **fields)


def info(event: str, **fields: Any) -> None:
    get_logger().log("info", event, **fields)


def warning(event: str, **fields: Any) -> None:
    get_logger().log("warning", event, **fields)


def error(event: str, **fields: Any) -> None:
    get_logger().log("error", event, **fields)
