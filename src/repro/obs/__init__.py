"""``repro.obs``: end-to-end pipeline observability.

Three layers over the same span/event model:

* :mod:`repro.obs.tracer` — hierarchical span tracer (``REPRO_TRACE``),
  contextvars-nested across ``parallel_map`` worker threads, exporting
  JSONL or Chrome trace-event JSON;
* :mod:`repro.obs.logs` — structured JSON-lines logging (``REPRO_LOG``)
  with trace/span correlation ids;
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``,
  the per-stage time breakdown / counter / slowest-span report.

Everything is off by default and near-zero overhead when disabled, so
call sites are never guarded.
"""

from .logs import (
    LEVELS,
    StructuredLogger,
    configure_logging,
    debug,
    error,
    get_logger,
    info,
    log,
    logging_enabled,
    warning,
)
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    configure,
    current_span,
    event,
    flush,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "LEVELS",
    "NOOP_SPAN",
    "Span",
    "StructuredLogger",
    "Tracer",
    "configure",
    "configure_logging",
    "current_span",
    "debug",
    "error",
    "event",
    "flush",
    "get_logger",
    "get_tracer",
    "info",
    "log",
    "logging_enabled",
    "span",
    "tracing_enabled",
    "warning",
]
