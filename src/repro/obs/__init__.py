"""``repro.obs``: end-to-end pipeline observability.

Five layers over the same span/event/metric model:

* :mod:`repro.obs.tracer` — hierarchical span tracer (``REPRO_TRACE``),
  contextvars-nested across ``parallel_map`` worker threads, exporting
  JSONL or Chrome trace-event JSON;
* :mod:`repro.obs.logs` — structured JSON-lines logging (``REPRO_LOG``)
  with trace/span correlation ids;
* :mod:`repro.obs.metrics` — live typed metrics (labelled counters,
  gauges, histograms) bridged from :mod:`repro.perf`, exposed in
  Prometheus text format by a background HTTP server
  (``REPRO_METRICS_PORT``), with the resource sampler of
  :mod:`repro.obs.sampler` (``REPRO_METRICS_SAMPLE_SECS``);
* :mod:`repro.obs.ledger` — one persistent manifest per eval run
  (``REPRO_RUN_LEDGER``): git rev, env fingerprint, per-stage
  latencies, counters, caches, per-design QoR;
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  for the per-stage run report, ``--diff base new`` for the
  threshold-gated regression diff between two ledger manifests.

Everything is off by default and near-zero overhead when disabled, so
call sites are never guarded.
"""

from .ledger import ledger_enabled, record_run
from .metrics import ensure_server as ensure_metrics_server
from .metrics import metrics_enabled
from .logs import (
    LEVELS,
    StructuredLogger,
    configure_logging,
    debug,
    error,
    get_logger,
    info,
    log,
    logging_enabled,
    warning,
)
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    configure,
    current_span,
    event,
    flush,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "LEVELS",
    "NOOP_SPAN",
    "Span",
    "StructuredLogger",
    "Tracer",
    "configure",
    "configure_logging",
    "current_span",
    "debug",
    "ensure_metrics_server",
    "error",
    "event",
    "flush",
    "ledger_enabled",
    "metrics_enabled",
    "record_run",
    "get_logger",
    "get_tracer",
    "info",
    "log",
    "logging_enabled",
    "span",
    "tracing_enabled",
    "warning",
]
