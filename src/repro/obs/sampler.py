"""Periodic process-resource sampler feeding the metrics registry.

A daemon thread samples the process every ``REPRO_METRICS_SAMPLE_SECS``
seconds (default 5) and sets gauges in :mod:`repro.obs.metrics`:

* ``repro_process_rss_bytes`` — resident set size (``/proc/self/statm``,
  falling back to ``resource.getrusage`` peak-RSS on non-Linux);
* ``repro_process_cpu_percent`` — user+system CPU over the last sample
  interval, as a percentage of one core (can exceed 100 under the thread
  executor or while pool results are being deserialized);
* ``repro_process_gc_collections_total{generation=...}`` — cumulative
  CPython GC collections per generation;
* ``repro_process_open_fds`` — open file descriptors
  (``/proc/self/fd``; absent on platforms without procfs);
* ``repro_process_threads`` — live ``threading`` thread count;
* ``repro_process_uptime_seconds`` — seconds since the sampler started.

The sampler only runs while the metrics endpoint is up (it is started
and stopped by :func:`repro.obs.metrics.start_server` /
:func:`~repro.obs.metrics.stop_server`), so with metrics disabled there
is no thread and no sampling work at all.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from . import metrics

__all__ = ["ResourceSampler", "sample_interval", "read_rss_bytes", "count_open_fds"]

#: Default sampling period in seconds.
DEFAULT_SAMPLE_SECS = 5.0

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def sample_interval() -> float:
    """The sampling period from ``REPRO_METRICS_SAMPLE_SECS`` (min 0.05s)."""
    raw = os.environ.get("REPRO_METRICS_SAMPLE_SECS", "").strip()
    if not raw:
        return DEFAULT_SAMPLE_SECS
    try:
        interval = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_METRICS_SAMPLE_SECS must be a number, got {raw!r}"
        )
    return max(0.05, interval)


def read_rss_bytes() -> int | None:
    """Current resident set size in bytes, or None if unreadable."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes; this branch only runs
        # without procfs, so assume the BSD/macOS convention.
        return int(usage)
    except Exception:
        return None


def count_open_fds() -> int | None:
    """Open file descriptors of this process (procfs; None elsewhere)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


class ResourceSampler:
    """Daemon thread that periodically sets process gauges.

    One sample is taken synchronously in :meth:`start`, so gauges exist
    the moment the endpoint comes up; further samples run on the period
    until :meth:`stop`.
    """

    def __init__(self, interval: float = DEFAULT_SAMPLE_SECS,
                 registry: metrics.MetricsRegistry | None = None) -> None:
        self.interval = interval
        reg = registry if registry is not None else metrics.registry
        self._rss = reg.gauge(
            "repro_process_rss_bytes", "Resident set size of this process."
        )
        self._cpu = reg.gauge(
            "repro_process_cpu_percent",
            "CPU use over the last sample interval (% of one core).",
        )
        self._gc = reg.gauge(
            "repro_process_gc_collections_total",
            "Cumulative CPython GC collections per generation.",
        )
        self._fds = reg.gauge(
            "repro_process_open_fds", "Open file descriptors."
        )
        self._threads = reg.gauge(
            "repro_process_threads", "Live threading.Thread count."
        )
        self._uptime = reg.gauge(
            "repro_process_uptime_seconds", "Seconds since the sampler started."
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = time.perf_counter()
        self._last_wall = self._started
        self._last_cpu = self._cpu_seconds()
        self.samples = 0

    @staticmethod
    def _cpu_seconds() -> float:
        times = os.times()
        return times.user + times.system

    def sample(self) -> None:
        """Take one sample and update every gauge."""
        now = time.perf_counter()
        cpu_now = self._cpu_seconds()
        wall_delta = now - self._last_wall
        if wall_delta > 0:
            self._cpu.set(100.0 * (cpu_now - self._last_cpu) / wall_delta)
        self._last_wall = now
        self._last_cpu = cpu_now

        rss = read_rss_bytes()
        if rss is not None:
            self._rss.set(rss)
        fds = count_open_fds()
        if fds is not None:
            self._fds.set(fds)
        for generation, stats in enumerate(gc.get_stats()):
            self._gc.set(stats.get("collections", 0), generation=generation)
        self._threads.set(threading.active_count())
        self._uptime.set(now - self._started)
        self.samples += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
