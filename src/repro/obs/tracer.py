"""Hierarchical span tracer for the ChatLS pipeline.

A *span* is one timed region of the pipeline — a customization run, one
SynthRAG retrieval, one SynthExpert thought-step revision, one synthesis
phase.  Spans carry a trace id (shared by every span of one root
operation), a span id, a parent span id and free-form key-value
attributes, and nest through :mod:`contextvars` so spans opened inside
``parallel_map`` worker threads attach to the harness span that spawned
them.  On close, each span also records the :mod:`repro.perf` counter
deltas observed while it was open (cache hits/misses, ``sta.incremental``
vs ``sta.full`` ...), which is how wall-clock gets attributed to cache
behaviour per stage.

Tracing is **off by default** and configured through the environment:

* ``REPRO_TRACE=<path>`` — enable tracing; ``*.jsonl`` paths get a JSONL
  event log (one JSON object per line), ``*.json`` paths get Chrome
  trace-event format loadable in Perfetto / ``chrome://tracing``.

When disabled, :func:`span` returns a shared no-op context manager — one
function call and no allocation beyond the kwargs dict, no events, no
file I/O.  Programmatic configuration (tests, embedding) goes through
:func:`configure`.

Span naming convention (see DESIGN.md):

* ``chatls.*`` — framework stages (prepare, draft, sample, customize);
* ``rag.*`` — the three SynthRAG retrieval modes;
* ``expert.*`` — SynthExpert CoT refinement;
* ``synth.*`` — synthesis engine phases (elaborate, techmap, optimize, sta);
* ``eval.*`` — harness fan-out (tables, cells, parallel tasks).
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from typing import Any

from .. import perf

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "event",
    "current_span",
    "get_tracer",
    "configure",
    "tracing_enabled",
    "flush",
]

#: The innermost open span of the current execution context.  Copied into
#: worker threads by ``parallel_map`` (via ``contextvars.copy_context``),
#: which is what makes cross-thread span nesting work.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)

#: Events buffered before a flush is forced (jsonl only).
_FLUSH_EVERY = 512


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def set_attributes(self, **attrs: Any) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


#: The singleton returned by :func:`span` when tracing is disabled.  It is
#: stateless, so re-entering it concurrently from many threads is safe.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of the pipeline."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "start",
        "end",
        "thread_id",
        "thread_name",
        "_token",
        "_counters_before",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = f"{next(_SPAN_IDS):08x}"
        self.trace_id = ""
        self.parent_id: str | None = None
        self.start = 0.0
        self.end = 0.0
        self.thread_id = 0
        self.thread_name = ""
        self._token = None
        self._counters_before: dict[str, int] | None = None

    # -- attributes ---------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def set_attributes(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def add_event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to this span."""
        self._tracer._record_event(
            {
                "type": "event",
                "name": name,
                "trace": self.trace_id,
                "span": self.span_id,
                "ts": round(time.perf_counter() - self._tracer.epoch, 9),
                "attrs": attrs,
            }
        )

    # -- context manager protocol -------------------------------------------

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = f"{next(_TRACE_IDS):08x}"
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self._token = _CURRENT.set(self)
        if self._tracer.record_perf:
            self._counters_before = perf.registry.counters()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        if self._counters_before is not None:
            after = perf.registry.counters()
            delta = {
                key: value - self._counters_before.get(key, 0)
                for key, value in after.items()
                if value != self._counters_before.get(key, 0)
            }
            if delta:
                self.attrs["perf"] = delta
        self._tracer._record_span(self)
        return False


class Tracer:
    """Collects span/event records and exports them on flush.

    ``path`` selects both the destination and the format: ``*.json``
    writes Chrome trace-event JSON (one array, rewritten per flush),
    anything else writes JSONL (one event object per line).  A ``None``
    path disables the tracer entirely.
    """

    def __init__(self, path: str | None = None, fmt: str | None = None,
                 record_perf: bool = True) -> None:
        self.path = path
        self.enabled = path is not None
        if fmt is None:
            fmt = "chrome" if path is not None and path.endswith(".json") else "jsonl"
        self.format = fmt
        self.record_perf = record_perf and self.enabled
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._flushed = 0  # jsonl: events already written to the file
        self._wrote_header = False

    # -- span factory --------------------------------------------------------

    def start_span(self, name: str, attrs: dict[str, Any]) -> Span:
        return Span(self, name, attrs)

    # -- recording -----------------------------------------------------------

    def _record_span(self, span: Span) -> None:
        self._record_event(
            {
                "type": "span",
                "name": span.name,
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "ts": round(span.start - self.epoch, 9),
                "dur": round(span.end - span.start, 9),
                "tid": span.thread_id,
                "tname": span.thread_name,
                "attrs": span.attrs,
            }
        )

    def _record_event(self, record: dict) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._events.append(record)
            pending = len(self._events) - self._flushed
        if self.format == "jsonl" and pending >= _FLUSH_EVERY:
            self.flush()

    def events(self) -> list[dict]:
        """All events recorded so far (copy)."""
        with self._lock:
            return list(self._events)

    # -- export --------------------------------------------------------------

    def flush(self) -> None:
        """Write buffered events to :attr:`path`."""
        if not self.enabled:
            return
        with self._lock:
            if self.format == "jsonl":
                pending = self._events[self._flushed :]
                header = not self._wrote_header
                self._wrote_header = True
                self._flushed = len(self._events)
                lines = []
                if header:
                    lines.append(json.dumps(self._meta()))
                lines.extend(json.dumps(e, default=str) for e in pending)
                if lines:
                    mode = "w" if header else "a"
                    with open(self.path, mode) as fh:
                        fh.write("\n".join(lines) + "\n")
            else:
                from .chrome import to_chrome

                with open(self.path, "w") as fh:
                    json.dump(to_chrome(self._events, meta=self._meta()), fh)

    def shutdown(self) -> None:
        """Final export: append a perf snapshot event, then flush."""
        if not self.enabled:
            return
        self._record_event(
            {
                "type": "snapshot",
                "ts": round(time.perf_counter() - self.epoch, 9),
                "perf": perf.snapshot(),
            }
        )
        self.flush()

    def _meta(self) -> dict:
        return {
            "type": "meta",
            "pid": os.getpid(),
            "unix_time": time.time(),
            "format": self.format,
        }


# -- module-level state -------------------------------------------------------

_LOCK = threading.Lock()
_TRACER: Tracer | None = None


def get_tracer() -> Tracer:
    """The active tracer, lazily configured from ``REPRO_TRACE``."""
    global _TRACER
    tracer = _TRACER
    if tracer is None:
        with _LOCK:
            if _TRACER is None:
                path = os.environ.get("REPRO_TRACE", "").strip() or None
                _TRACER = Tracer(path)
            tracer = _TRACER
    return tracer


def configure(path: str | None = None, fmt: str | None = None,
              record_perf: bool = True) -> Tracer:
    """Install a fresh tracer (``path=None`` disables tracing)."""
    global _TRACER
    with _LOCK:
        _TRACER = Tracer(path, fmt=fmt, record_perf=record_perf)
        return _TRACER


def tracing_enabled() -> bool:
    return get_tracer().enabled


def span(name: str, **attrs: Any):
    """Open a span (use as a context manager).

    No-op (a shared singleton, no allocation or I/O) when tracing is
    disabled, so call sites never need to guard::

        with obs.span("rag.manual", k=k) as sp:
            hits = ...
            sp.set_attribute("hits", len(hits))
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.start_span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event on the current span (no-op when disabled)."""
    current = _CURRENT.get()
    if current is not None:
        current.add_event(name, **attrs)


def current_span() -> "Span | _NoopSpan":
    """The innermost open span of this context (NOOP_SPAN when none)."""
    return _CURRENT.get() or NOOP_SPAN


def flush() -> None:
    """Flush the active tracer (convenience for harness shutdown hooks)."""
    get_tracer().flush()


@atexit.register
def _shutdown_at_exit() -> None:
    tracer = _TRACER
    if tracer is not None and tracer.enabled:
        tracer.shutdown()
