"""Deterministic seeded RNG streams — no module touches global ``random``.

Every stochastic component in the repo (the design-space explorer, the
RTL generators, perf reservoirs, randomized test fixtures) draws from a
private :class:`random.Random` built here, so test files and library
modules can never bleed seeds into each other through the interpreter's
global generator, and results are reproducible regardless of import or
execution order.

Two entry points:

* :func:`rng` — a fresh private generator.  ``rng(seed)`` with no stream
  keys is exactly ``random.Random(seed)`` (so callers migrating off a
  bare ``random.Random`` keep byte-identical sequences), while
  ``rng(seed, "chain", 3)`` derives an independent stream for the given
  key path.
* :func:`derive` — the stable 64-bit subseed behind keyed streams.
  Hash-based (sha256), so it is identical across processes, platforms
  and ``PYTHONHASHSEED`` values — parallel workers can derive the same
  per-task seeds the parent would.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive", "rng"]


def derive(seed: int, *streams) -> int:
    """A stable 64-bit subseed for the stream keyed by ``streams``.

    Streams with the same ``(seed, *streams)`` always get the same
    subseed; distinct key paths get independent ones.  Keys may be any
    mix of ints and strings (their ``repr`` feeds the hash).
    """
    h = hashlib.sha256()
    h.update(repr(int(seed)).encode("utf-8"))
    for key in streams:
        h.update(b"\x1f")
        h.update(repr(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def rng(seed: int, *streams) -> random.Random:
    """A private generator for the stream keyed by ``streams``.

    With no stream keys this is exactly ``random.Random(seed)``; with
    keys, the generator is seeded from :func:`derive`, giving an
    independent deterministic stream per key path.
    """
    if not streams:
        return random.Random(seed)
    return random.Random(derive(seed, *streams))
