"""Feature-hashing text embedder (the ``text-embedding-3-large`` substitute).

Deterministic and fully offline: each word and subword n-gram is hashed to a
signed dimension (the "hashing trick"), optionally weighted by IDF learned
from a corpus.  Two texts sharing vocabulary land near each other in cosine
space, which is the property SynthRAG's manual retrieval needs.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from .tokenizer import char_ngrams, word_tokens

__all__ = ["HashingEmbedder"]


def _hash_token(token: str, salt: str = "") -> int:
    digest = hashlib.blake2b(f"{salt}:{token}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingEmbedder:
    """Embed text into a fixed-dimensional vector via feature hashing.

    Args:
        dim: embedding dimensionality.
        use_subwords: also hash character n-grams, improving robustness to
            morphology (``retime``/``retiming``) and hyphenation.
        subword_weight: relative weight of subword features vs words.
    """

    def __init__(
        self,
        dim: int = 256,
        use_subwords: bool = True,
        subword_weight: float = 0.3,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.use_subwords = use_subwords
        self.subword_weight = subword_weight
        self._idf: dict[str, float] | None = None

    def fit_idf(self, corpus: list[str]) -> "HashingEmbedder":
        """Learn IDF weights from ``corpus`` (one string per document)."""
        doc_freq: dict[str, int] = {}
        for doc in corpus:
            for token in set(word_tokens(doc)):
                doc_freq[token] = doc_freq.get(token, 0) + 1
        n = max(len(corpus), 1)
        self._idf = {
            token: math.log((1 + n) / (1 + freq)) + 1.0
            for token, freq in doc_freq.items()
        }
        return self

    def _token_weight(self, token: str) -> float:
        if self._idf is None:
            return 1.0
        return self._idf.get(token, math.log(1 + len(self._idf)) + 1.0)

    def embed(self, text: str) -> np.ndarray:
        """Embed one text; the result is L2-normalized (or zero if empty)."""
        vec = np.zeros(self.dim)
        tokens = word_tokens(text)
        for token in tokens:
            weight = self._token_weight(token)
            h = _hash_token(token)
            sign = 1.0 if (h >> 1) & 1 else -1.0
            vec[h % self.dim] += sign * weight
            if self.use_subwords:
                for gram in char_ngrams(token):
                    hg = _hash_token(gram, salt="sub")
                    sign_g = 1.0 if (hg >> 1) & 1 else -1.0
                    vec[hg % self.dim] += sign_g * weight * self.subword_weight
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        return np.vstack([self.embed(t) for t in texts]) if texts else np.empty((0, self.dim))
