"""Offline text embedding (the OpenAI ``text-embedding-3-large`` substitute).

:class:`HashingEmbedder` provides deterministic dense embeddings via the
hashing trick with subword n-grams; :class:`TfidfModel` is the classical
sparse baseline used in retrieval ablations.
"""

from .hashing import HashingEmbedder
from .tfidf import TfidfModel
from .tokenizer import STOPWORDS, char_ngrams, word_tokens

__all__ = ["HashingEmbedder", "TfidfModel", "STOPWORDS", "char_ngrams", "word_tokens"]
