"""Sparse TF-IDF vectorizer with cosine ranking (BM25-adjacent baseline).

Used by SynthRAG ablations to compare hashing embeddings against a
classical lexical retriever (paper cites BM25 [33] as the conventional
reranking baseline).
"""

from __future__ import annotations

import math

import numpy as np

from .tokenizer import word_tokens

__all__ = ["TfidfModel"]


class TfidfModel:
    """Fit on a corpus, then rank documents against queries by cosine."""

    def __init__(self) -> None:
        self.vocabulary: dict[str, int] = {}
        self._idf: np.ndarray | None = None
        self._doc_matrix: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._doc_matrix is not None

    def fit(self, corpus: list[str]) -> "TfidfModel":
        if not corpus:
            raise ValueError("corpus must not be empty")
        docs_tokens = [word_tokens(doc) for doc in corpus]
        for tokens in docs_tokens:
            for token in tokens:
                self.vocabulary.setdefault(token, len(self.vocabulary))
        vocab_size = len(self.vocabulary)
        doc_freq = np.zeros(vocab_size)
        for tokens in docs_tokens:
            for token in set(tokens):
                doc_freq[self.vocabulary[token]] += 1
        n = len(corpus)
        self._idf = np.log((1 + n) / (1 + doc_freq)) + 1.0
        self._doc_matrix = np.vstack(
            [self._vectorize(tokens) for tokens in docs_tokens]
        )
        return self

    def _vectorize(self, tokens: list[str]) -> np.ndarray:
        vec = np.zeros(len(self.vocabulary))
        for token in tokens:
            idx = self.vocabulary.get(token)
            if idx is not None:
                vec[idx] += 1.0
        if vec.sum() > 0:
            vec = (vec / vec.sum()) * self._idf
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def transform(self, text: str) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("fit the model before transform")
        return self._vectorize(word_tokens(text))

    def rank(self, query: str, k: int = 5) -> list[tuple[int, float]]:
        """Top-``k`` (document index, cosine score) pairs for ``query``."""
        q = self.transform(query)
        scores = self._doc_matrix @ q
        order = np.argsort(-scores)[:k]
        return [(int(i), float(scores[i])) for i in order]
