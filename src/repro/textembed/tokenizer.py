"""Tokenization for the offline text embedder."""

from __future__ import annotations

import re

__all__ = ["word_tokens", "char_ngrams", "STOPWORDS"]

_WORD_RE = re.compile(r"[a-z0-9_]+")

#: Tiny English stopword list tuned for tool-manual prose.
STOPWORDS = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "can", "for",
        "from", "has", "have", "if", "in", "is", "it", "its", "may", "of",
        "on", "or", "that", "the", "this", "to", "when", "which", "will",
        "with", "you", "your",
    }
)


def word_tokens(text: str, drop_stopwords: bool = True) -> list[str]:
    """Lowercased word tokens; underscores kept so command names survive."""
    tokens = _WORD_RE.findall(text.lower())
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def char_ngrams(token: str, n_min: int = 3, n_max: int = 5) -> list[str]:
    """Character n-grams with boundary markers (fastText-style subwords)."""
    marked = f"<{token}>"
    grams = []
    for n in range(n_min, n_max + 1):
        grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
    return grams
