"""Exact (brute-force) nearest-neighbour index."""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .metrics import METRICS, pairwise_scores
from .storage import VectorArena

__all__ = ["SearchResult", "FlatIndex", "live_index_stats", "topk_order"]

#: Every live index, tracked weakly so the ``vectorstore`` stats provider
#: (and the metrics endpoint behind it) can report aggregate index size
#: without keeping retired indexes alive.
_LIVE_INDEXES: "weakref.WeakSet" = weakref.WeakSet()


def live_index_stats() -> dict:
    """Aggregate health of every live index (``vectorstore`` provider).

    Beyond raw size, the ANN indexes contribute graph shape and search
    effort counters (hops, distance evaluations, brute-force fallbacks)
    so the metrics endpoint can watch retrieval cost drift as corpora
    grow — a cheap recall proxy: effort per query collapsing while the
    corpus grows is the signature of a degraded graph.
    """
    indexes = list(_LIVE_INDEXES)
    totals = {
        "indexes": len(indexes),
        "vectors": sum(len(ix) for ix in indexes),
        "rebuilds": sum(getattr(ix, "rebuilds", 0) for ix in indexes),
        "graph_edges": 0,
        "searches": 0,
        "hops": 0,
        "dist_evals": 0,
        "exhaustive_searches": 0,
    }
    for ix in indexes:
        counters = getattr(ix, "search_counters", None)
        if callable(counters):
            for name, value in counters().items():
                totals[name] = totals.get(name, 0) + value
    return totals


def topk_order(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, best first.

    The shared selection kernel: every index funnels its final ranking
    through this so tie handling is identical across exact search, ANN
    rerank and the batched paths.
    """
    k = min(k, scores.shape[-1])
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    top = np.argpartition(-scores, k - 1)[:k]
    return top[np.argsort(-scores[top])]


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: Any
    score: float
    payload: Any


class FlatIndex:
    """Exact nearest-neighbour search over dense vectors.

    Vectors are added with a hashable ``key`` and an optional ``payload``
    (any object — SynthRAG stores strategy records here).  ``search``
    returns the top-k entries by the chosen metric, largest score first.

    Storage is a :class:`~repro.vectorstore.storage.VectorArena`: one
    preallocated contiguous matrix that doubles in capacity when full,
    so interleaved add/search streams cost O(1) amortized per add — a
    search never triggers a rebuild, and only capacity growth (or a
    mmap materialization) reallocates.  ``rebuilds`` counts those
    reallocations.  ``remove`` swaps the last row into the hole, so it
    is O(dim) and touches exactly one key position.
    """

    def __init__(
        self, dim: int, metric: str = "cosine", dtype: Any = np.float64
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        self._arena = VectorArena(dim, dtype=dtype)
        self.metric = metric
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._key_pos: dict[Any, int] = {}
        self._searches = 0
        _LIVE_INDEXES.add(self)

    @property
    def dim(self) -> int:
        return self._arena.dim

    @property
    def rebuilds(self) -> int:
        """Matrix reallocations (capacity doublings + mmap detach)."""
        return self._arena.rebuilds

    def __len__(self) -> int:
        return len(self._arena)

    def __contains__(self, key: Any) -> bool:
        return key in self._key_pos

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        """Insert one vector; duplicate keys are rejected."""
        if key in self._key_pos:
            raise ValueError(f"duplicate key {key!r}")
        position = self._arena.append(vector)
        self._key_pos[key] = position
        self._keys.append(key)
        self._payloads.append(payload)

    def add_batch(
        self,
        keys: Sequence[Any],
        vectors: np.ndarray,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        """Insert many vectors as one contiguous block copy."""
        keys = list(keys)
        if not keys:
            return
        payloads = list(payloads) if payloads is not None else [None] * len(keys)
        if len(payloads) != len(keys):
            raise ValueError("payloads length must match keys")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=self._arena.dtype))
        if vectors.shape[0] != len(keys):
            raise ValueError("vectors row count must match keys")
        fresh = set()
        for key in keys:
            if key in self._key_pos or key in fresh:
                raise ValueError(f"duplicate key {key!r}")
            fresh.add(key)
        positions = self._arena.extend(vectors)
        for key, position in zip(keys, positions):
            self._key_pos[key] = position
        self._keys.extend(keys)
        self._payloads.extend(payloads)

    def remove(self, key: Any) -> None:
        """Swap-with-last removal: O(dim), one ``_key_pos`` update."""
        idx = self._key_pos.pop(key)
        moved_from = self._arena.swap_remove(idx)
        last = len(self._keys) - 1
        if moved_from is not None:
            moved_key = self._keys[last]
            self._keys[idx] = moved_key
            self._payloads[idx] = self._payloads[last]
            self._key_pos[moved_key] = idx
        del self._keys[last], self._payloads[last]

    def get_vector(self, key: Any) -> np.ndarray:
        return np.array(self._arena.row(self._key_pos[key]), dtype=np.float64)

    def _database(self) -> np.ndarray:
        return self._arena.view()

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        """Top-``k`` entries closest to ``query`` (largest score first)."""
        if not len(self):
            return []
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        if query.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[1]}")
        self._searches += 1
        scores = pairwise_scores(query, self._database(), self.metric)[0]
        top = topk_order(scores, k)
        return [
            SearchResult(key=self._keys[i], score=float(scores[i]), payload=self._payloads[i])
            for i in top
        ]

    def search_batch(self, queries: np.ndarray, k: int = 5) -> list[list[SearchResult]]:
        """Batched exact search: one stacked distance computation.

        All queries score against the arena in a single
        ``(B, n)`` kernel call, then each row is ranked independently —
        the per-query numpy dispatch overhead is paid once per batch.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {queries.shape[1]}")
        if not len(self):
            return [[] for _ in range(queries.shape[0])]
        self._searches += queries.shape[0]
        scores = pairwise_scores(queries, self._database(), self.metric)
        out: list[list[SearchResult]] = []
        for row in scores:
            top = topk_order(row, k)
            out.append(
                [
                    SearchResult(
                        key=self._keys[i], score=float(row[i]), payload=self._payloads[i]
                    )
                    for i in top
                ]
            )
        return out

    def search_counters(self) -> dict:
        return {"searches": self._searches}

    # -- persistence -----------------------------------------------------------

    def save(self, prefix: str | os.PathLike) -> None:
        """Persist to ``<prefix>.npy`` + ``<prefix>.json``.

        Keys and payloads land in the JSON sidecar, so both must be
        JSON-serializable (payloads default to ``None``, which is).
        """
        self._arena.save(
            prefix,
            sidecar={
                "index": "flat",
                "metric": self.metric,
                "keys": self._keys,
                "payloads": self._payloads,
            },
        )

    @classmethod
    def load(cls, prefix: str | os.PathLike, mmap: bool = True) -> "FlatIndex":
        """Reopen a saved index; ``mmap=True`` maps vectors zero-copy."""
        arena, sidecar = VectorArena.load(prefix, mmap=mmap)
        index = cls(arena.dim, metric=sidecar["metric"], dtype=arena.dtype)
        index._arena = arena
        index._keys = list(sidecar["keys"])
        index._payloads = list(sidecar["payloads"])
        index._key_pos = {key: i for i, key in enumerate(index._keys)}
        if len(index._keys) != len(arena):
            raise ValueError("sidecar keys do not match stored vectors")
        return index
