"""Exact (brute-force) nearest-neighbour index."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .metrics import pairwise_scores

__all__ = ["SearchResult", "FlatIndex"]


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: Any
    score: float
    payload: Any


class FlatIndex:
    """Exact nearest-neighbour search over dense vectors.

    Vectors are added with a hashable ``key`` and an optional ``payload``
    (any object — SynthRAG stores strategy records here).  ``search``
    returns the top-k entries by the chosen metric, largest score first.
    """

    def __init__(self, dim: int, metric: str = "cosine") -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        """Insert one vector; duplicate keys are rejected."""
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        if key in self._keys:
            raise ValueError(f"duplicate key {key!r}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._rows.append(vector)
        self._matrix = None

    def add_batch(
        self,
        keys: Sequence[Any],
        vectors: np.ndarray,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        payloads = payloads if payloads is not None else [None] * len(keys)
        for key, vec, payload in zip(keys, vectors, payloads):
            self.add(key, vec, payload)

    def remove(self, key: Any) -> None:
        idx = self._keys.index(key)
        del self._keys[idx], self._payloads[idx], self._rows[idx]
        self._matrix = None

    def get_vector(self, key: Any) -> np.ndarray:
        return self._rows[self._keys.index(key)].copy()

    def _database(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = (
                np.vstack(self._rows) if self._rows else np.empty((0, self.dim))
            )
        return self._matrix

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        """Top-``k`` entries closest to ``query`` (largest score first)."""
        if not self._keys:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        if query.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[1]}")
        scores = pairwise_scores(query, self._database(), self.metric)[0]
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [
            SearchResult(key=self._keys[i], score=float(scores[i]), payload=self._payloads[i])
            for i in top
        ]

    def search_batch(self, queries: np.ndarray, k: int = 5) -> list[list[SearchResult]]:
        return [self.search(q, k) for q in np.atleast_2d(queries)]
