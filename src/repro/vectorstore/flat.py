"""Exact (brute-force) nearest-neighbour index."""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .metrics import pairwise_scores

__all__ = ["SearchResult", "FlatIndex", "live_index_stats"]

#: Every live index, tracked weakly so the ``vectorstore`` stats provider
#: (and the metrics endpoint behind it) can report aggregate index size
#: without keeping retired indexes alive.
_LIVE_INDEXES: "weakref.WeakSet" = weakref.WeakSet()


def live_index_stats() -> dict:
    """Aggregate size of every live index (``vectorstore`` provider)."""
    indexes = list(_LIVE_INDEXES)
    return {
        "indexes": len(indexes),
        "vectors": sum(len(ix) for ix in indexes),
        "rebuilds": sum(getattr(ix, "rebuilds", 0) for ix in indexes),
    }


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: Any
    score: float
    payload: Any


class FlatIndex:
    """Exact nearest-neighbour search over dense vectors.

    Vectors are added with a hashable ``key`` and an optional ``payload``
    (any object — SynthRAG stores strategy records here).  ``search``
    returns the top-k entries by the chosen metric, largest score first.

    Storage is a preallocated matrix that doubles in capacity when full,
    so interleaved add/search streams cost O(1) amortized per add — a
    search never triggers a rebuild, and only capacity growth (or a
    ``remove``) reallocates.  ``rebuilds`` counts those reallocations.
    """

    def __init__(self, dim: int, metric: str = "cosine") -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._key_pos: dict[Any, int] = {}
        self._matrix = np.empty((0, dim), dtype=np.float64)
        self._size = 0
        #: Number of matrix reallocations (capacity doublings + removals).
        self.rebuilds = 0
        _LIVE_INDEXES.add(self)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return key in self._key_pos

    def _grow(self, minimum: int) -> None:
        capacity = max(4, self._matrix.shape[0])
        while capacity < minimum:
            capacity *= 2
        grown = np.empty((capacity, self.dim), dtype=np.float64)
        grown[: self._size] = self._matrix[: self._size]
        self._matrix = grown
        self.rebuilds += 1

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        """Insert one vector; duplicate keys are rejected."""
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        if key in self._key_pos:
            raise ValueError(f"duplicate key {key!r}")
        if self._size == self._matrix.shape[0]:
            self._grow(self._size + 1)
        self._matrix[self._size] = vector
        self._key_pos[key] = self._size
        self._keys.append(key)
        self._payloads.append(payload)
        self._size += 1

    def add_batch(
        self,
        keys: Sequence[Any],
        vectors: np.ndarray,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        payloads = payloads if payloads is not None else [None] * len(keys)
        if len(keys) and self._size + len(keys) > self._matrix.shape[0]:
            self._grow(self._size + len(keys))
        for key, vec, payload in zip(keys, vectors, payloads):
            self.add(key, vec, payload)

    def remove(self, key: Any) -> None:
        idx = self._key_pos.pop(key)
        del self._keys[idx], self._payloads[idx]
        self._matrix = np.delete(self._matrix[: self._size], idx, axis=0)
        self._size -= 1
        self.rebuilds += 1
        for moved in range(idx, self._size):
            self._key_pos[self._keys[moved]] = moved

    def get_vector(self, key: Any) -> np.ndarray:
        return self._matrix[self._key_pos[key]].copy()

    def _database(self) -> np.ndarray:
        return self._matrix[: self._size]

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        """Top-``k`` entries closest to ``query`` (largest score first)."""
        if not self._size:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        if query.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[1]}")
        scores = pairwise_scores(query, self._database(), self.metric)[0]
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [
            SearchResult(key=self._keys[i], score=float(scores[i]), payload=self._payloads[i])
            for i in top
        ]

    def search_batch(self, queries: np.ndarray, k: int = 5) -> list[list[SearchResult]]:
        return [self.search(q, k) for q in np.atleast_2d(queries)]
