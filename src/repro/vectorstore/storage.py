"""Contiguous vector storage with memory-mapped persistence.

:class:`VectorArena` is the storage layer behind every vector index: a
single 2-D array (float32-capable; float64 default for bit-exact parity
with the historical list-backed stores) that doubles in capacity on
append, so interleaved add/search streams cost O(1) amortized per add
and a search always scores against one contiguous block — no per-search
``np.vstack``.

Persistence is a plain ``.npy`` file plus a JSON sidecar
(``<prefix>.npy`` + ``<prefix>.json``): :meth:`VectorArena.load` with
``mmap=True`` maps the vectors read-only straight off the page cache, so
a million-vector corpus opens without copying and several processes
share one physical copy.  A memory-mapped arena stays zero-copy until
the first mutation, which materializes it to heap memory first
(copy-on-write growth).

Arenas pickle as their trimmed contiguous matrix (protocol-5 pickling
exports the buffer out-of-band), so they ride the process pool's
``SharedRef`` shared-memory transport unchanged.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Sequence

import numpy as np

__all__ = ["VectorArena"]

#: Sidecar format tag; bumped on incompatible layout changes.
FORMAT = "repro-arena-v1"


class VectorArena:
    """A growable contiguous ``(capacity, dim)`` vector block.

    Rows are identified by their integer position.  ``swap_remove``
    fills holes with the last row so the block stays dense; callers that
    maintain key→position maps get the moved row's old index back and
    patch exactly one entry.
    """

    __slots__ = ("dim", "dtype", "_data", "_size", "rebuilds", "mmapped")

    def __init__(
        self, dim: int, dtype: Any = np.float64, capacity: int = 0
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.dtype = np.dtype(dtype)
        self._data = np.empty((capacity, dim), dtype=self.dtype)
        self._size = 0
        #: Reallocations (capacity growth + mmap materialization).
        self.rebuilds = 0
        #: Whether the backing block is still the read-only mapped file.
        self.mmapped = False

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    def view(self) -> np.ndarray:
        """The live rows as one contiguous block (no copy)."""
        return self._data[: self._size]

    def row(self, index: int) -> np.ndarray:
        if not 0 <= index < self._size:
            raise IndexError(f"row {index} out of range (size {self._size})")
        return self._data[index]

    def _coerce(self, vector: Sequence[float]) -> np.ndarray:
        vector = np.asarray(vector, dtype=self.dtype).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        return vector

    def _materialize(self) -> None:
        """Detach from a read-only mapping before the first mutation."""
        if self.mmapped:
            self._data = np.array(self._data, dtype=self.dtype)
            self.mmapped = False
            self.rebuilds += 1

    def _grow(self, minimum: int) -> None:
        self._materialize()
        capacity = max(4, self.capacity)
        while capacity < minimum:
            capacity *= 2
        grown = np.empty((capacity, self.dim), dtype=self.dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown
        self.rebuilds += 1

    def append(self, vector: Sequence[float]) -> int:
        """Add one row; returns its position."""
        vector = self._coerce(vector)
        self._materialize()
        if self._size == self.capacity:
            self._grow(self._size + 1)
        self._data[self._size] = vector
        self._size += 1
        return self._size - 1

    def extend(self, matrix: np.ndarray) -> range:
        """Block-copy ``matrix`` rows in; returns the new positions."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=self.dtype))
        if matrix.size == 0:
            return range(self._size, self._size)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected (*, {self.dim}) rows, got {matrix.shape}")
        start = self._size
        count = matrix.shape[0]
        self._materialize()
        if start + count > self.capacity:
            self._grow(start + count)
        self._data[start : start + count] = matrix
        self._size += count
        return range(start, start + count)

    def swap_remove(self, index: int) -> int | None:
        """Remove a row by overwriting it with the last row.

        Returns the old position of the row that moved (always the last
        one), or ``None`` when the removed row *was* the last.
        """
        if not 0 <= index < self._size:
            raise IndexError(f"row {index} out of range (size {self._size})")
        self._materialize()
        last = self._size - 1
        if index != last:
            self._data[index] = self._data[last]
        self._size = last
        return last if index != last else None

    # -- persistence -----------------------------------------------------------

    def save(self, prefix: str | os.PathLike, sidecar: dict | None = None) -> None:
        """Write ``<prefix>.npy`` + ``<prefix>.json`` atomically.

        ``sidecar`` entries (keys, payloads, index parameters...) must be
        JSON-serializable; they come back verbatim from :meth:`load`.
        """
        prefix = os.fspath(prefix)
        meta = dict(sidecar or {})
        meta["format"] = FORMAT
        meta["dim"] = self.dim
        meta["dtype"] = self.dtype.name
        meta["size"] = self._size
        directory = os.path.dirname(prefix) or "."
        blob = json.dumps(meta)  # serialize before touching the filesystem
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npy.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, np.ascontiguousarray(self.view()))
            os.replace(tmp, prefix + ".npy")
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, prefix + ".json")
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(
        cls, prefix: str | os.PathLike, mmap: bool = True
    ) -> tuple["VectorArena", dict]:
        """Open a saved arena; returns ``(arena, sidecar)``.

        With ``mmap=True`` the vectors stay on disk, mapped read-only;
        the arena materializes to heap memory only if mutated.
        """
        prefix = os.fspath(prefix)
        with open(prefix + ".json") as handle:
            meta = json.load(handle)
        if meta.get("format") != FORMAT:
            raise ValueError(f"unrecognized arena format {meta.get('format')!r}")
        data = np.load(prefix + ".npy", mmap_mode="r" if mmap else None)
        if data.ndim != 2 or data.shape != (meta["size"], meta["dim"]):
            raise ValueError(
                f"arena file shape {data.shape} does not match sidecar "
                f"({meta['size']}, {meta['dim']})"
            )
        arena = cls(meta["dim"], dtype=meta["dtype"], capacity=0)
        arena._data = data
        arena._size = meta["size"]
        arena.mmapped = mmap
        sidecar = {
            k: v for k, v in meta.items()
            if k not in ("format", "dim", "dtype", "size")
        }
        return arena, sidecar

    # -- pickling (SharedRef / process-pool transport) ---------------------------

    def __getstate__(self) -> dict:
        return {
            "dim": self.dim,
            "dtype": self.dtype.name,
            "data": np.ascontiguousarray(self.view()),
        }

    def __setstate__(self, state: dict) -> None:
        self.dim = state["dim"]
        self.dtype = np.dtype(state["dtype"])
        self._data = state["data"]
        self._size = state["data"].shape[0]
        self.rebuilds = 0
        self.mmapped = False
