"""Vector similarity-search indexes (the FAISS substitute, paper [51]).

:class:`FlatIndex` performs exact nearest-neighbour search;
:class:`IVFIndex` is an inverted-file index with k-means coarse
quantization for sub-linear probing; :class:`HNSWIndex` is a graph-based
approximate index for million-scale corpora.  All support cosine,
inner-product and L2 metrics, store an arbitrary payload per vector, and
sit on one contiguous :class:`~repro.vectorstore.storage.VectorArena`
(memory-mappable ``.npy`` + JSON-sidecar persistence).

The retrieval layers pick their index through :func:`make_index`, gated
by ``REPRO_ANN`` (default **off**): off means exact :class:`FlatIndex` —
bit-identical to the historical behaviour — while ``REPRO_ANN=1`` swaps
in :class:`HNSWIndex`, whose beam candidates are reranked by the exact
metric before anything is returned.
"""

from __future__ import annotations

import os

from .flat import FlatIndex, SearchResult, live_index_stats, topk_order
from .hnsw import HNSWIndex
from .ivf import IVFIndex
from .metrics import METRICS, pairwise_scores
from .storage import VectorArena

from .. import perf

__all__ = [
    "FlatIndex",
    "IVFIndex",
    "HNSWIndex",
    "VectorArena",
    "SearchResult",
    "METRICS",
    "pairwise_scores",
    "live_index_stats",
    "topk_order",
    "ann_enabled",
    "make_index",
]


def ann_enabled() -> bool:
    """Whether ``REPRO_ANN`` selects the approximate index (default off).

    Off preserves the exact brute-force path bit-for-bit; on trades
    exactness for sub-linear search, with every returned hit still
    scored by the exact metric (ANN only shortlists candidates).
    """
    return os.environ.get("REPRO_ANN", "0").lower() in ("1", "true", "on", "yes")


def make_index(dim: int, metric: str = "cosine", **hnsw_params):
    """The retrieval layers' index factory, honouring ``REPRO_ANN``.

    Returns :class:`FlatIndex` (exact) with the gate off, else
    :class:`HNSWIndex`; ``hnsw_params`` (``M``/``ef_construction``/
    ``ef_search``/``seed``/``dtype``) apply only to the ANN index.
    """
    if ann_enabled():
        return HNSWIndex(dim, metric=metric, **hnsw_params)
    return FlatIndex(dim, metric=metric)


# Surface aggregate live-index size and ANN search-effort counters in
# perf snapshots — and, through the perf bridge, as vectorstore gauges
# on the metrics endpoint.
perf.register_stats_provider("vectorstore", live_index_stats)
