"""Vector similarity-search indexes (the FAISS substitute, paper [51]).

:class:`FlatIndex` performs exact nearest-neighbour search; :class:`IVFIndex`
is an inverted-file index with k-means coarse quantization for sub-linear
probing.  Both support cosine, inner-product and L2 metrics and store an
arbitrary payload per vector.
"""

from .flat import FlatIndex, SearchResult, live_index_stats
from .ivf import IVFIndex
from .metrics import METRICS, pairwise_scores

from .. import perf

__all__ = [
    "FlatIndex",
    "IVFIndex",
    "SearchResult",
    "METRICS",
    "pairwise_scores",
    "live_index_stats",
]

# Surface aggregate live-index size in perf snapshots — and, through the
# perf bridge, as vectorstore gauges on the metrics endpoint.
perf.register_stats_provider("vectorstore", live_index_stats)
