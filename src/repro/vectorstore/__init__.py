"""Vector similarity-search indexes (the FAISS substitute, paper [51]).

:class:`FlatIndex` performs exact nearest-neighbour search; :class:`IVFIndex`
is an inverted-file index with k-means coarse quantization for sub-linear
probing.  Both support cosine, inner-product and L2 metrics and store an
arbitrary payload per vector.
"""

from .flat import FlatIndex, SearchResult
from .ivf import IVFIndex
from .metrics import METRICS, pairwise_scores

__all__ = ["FlatIndex", "IVFIndex", "SearchResult", "METRICS", "pairwise_scores"]
